//! The frame scheduler: one driver for every way a frame runs.
//!
//! The pipeline is a small DAG of stages — read → render → composite →
//! gather — with explicit data handoffs ([`FramePlan`]). What used to be
//! six hand-rolled copies of that sequence (`run_frame`,
//! `run_frame_traced`, `run_frame_mpi`, `run_frame_mpi_opts`,
//! `run_frame_mpi_profiled`, `run_frame_mpi_ft`) is now one driver,
//! [`drive_frame`], configured along independent axes:
//!
//! * **Executor** ([`ExecChoice`]): data-parallel rayon
//!   ([`RayonExec`]) or per-rank message passing ([`RankExec`] inside a
//!   `pvr-mpisim` world).
//! * **Link mode** ([`LinkMode`]): plain blocking messages, or the
//!   fault-tolerant protocol (framed acked links, deadline receives,
//!   per-tile completeness) driven by a `FaultPlan`.
//! * **Tracing/profiling**: an [`pvr_obs::Tracer`] for the rayon
//!   executor, `RunOptions::traced()` + replay for the simulator —
//!   orthogonal to everything else.
//! * **Tag epoch** ([`FrameTags`]): which time step's message tags the
//!   frame uses, so the animation driver can keep several frames'
//!   traffic disjoint in one world. Frame 0 equals the legacy
//!   [`crate::pipeline::tags`] constants, which keeps the golden traces
//!   stable.
//!
//! The legacy entry points survive as thin wrappers; the integration
//! tests (bit-identity across executors, byte-golden profiles, fault
//! recovery) pin that the collapse changed nothing observable.

use std::collections::HashMap;
use std::fs::File;
use std::io::{Read as _, Seek, SeekFrom};
use std::ops::ControlFlow;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rayon::prelude::*;

use pvr_compositing::completeness::{CompletenessMap, TileCompleteness};
use pvr_compositing::directsend::DirectSendStats;
use pvr_compositing::{
    blend_fragments, build_schedule, ImagePartition, InsertOutcome, Schedule, TileAssembly,
};
use pvr_faults::{
    FaultPlan, InBox, OutBox, PlanInjector, RankAction, RecoveryCounters, RecoveryPolicy, Stage,
};
use pvr_formats::extent::Extent;
use pvr_formats::ELEM_SIZE;
use pvr_obs::Tracer;
use pvr_pfs::{
    window_fault_audit, IoRecovery, IoThrottle, ScatterPlan, ServerFaults, StripedStore,
};
use pvr_render::image::{Image, SubImage};
use pvr_render::raycast::{render_block, BlockDomain};
use pvr_render::Camera;

use crate::config::FrameConfig;
use crate::ft::FtError;
use crate::perfmodel::PerfModel;
use crate::pipeline::{
    decode_fragment, decode_volume, default_view, encode_fragment, geometry, rank_requests,
    read_frame_bytes, read_stage, render_opts, synthesize_stage, tags, transfer_for, FrameResult,
    IoRunStats,
};
use crate::recovery::{adopter_of, block_cost, render_loads, HealDecision, RecoveryBudget};
use crate::roles::laptop_aggregators;
use crate::timing::{FrameTiming, Stopwatch};

// ---------------------------------------------------------------------
// Stage DAG
// ---------------------------------------------------------------------

/// One stage of the frame pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageId {
    /// Collective (or independent) read of the time step's subvolumes.
    Read,
    /// Local ray-casting of each rank's block.
    Render,
    /// Direct-send fragment exchange and per-tile blending.
    Composite,
    /// Tile gather to rank 0 into the final image.
    Gather,
}

impl StageId {
    pub const ALL: [StageId; 4] = [
        StageId::Read,
        StageId::Render,
        StageId::Composite,
        StageId::Gather,
    ];

    /// Stages whose output this stage consumes.
    pub fn deps(self) -> &'static [StageId] {
        match self {
            StageId::Read => &[],
            StageId::Render => &[StageId::Read],
            StageId::Composite => &[StageId::Render],
            StageId::Gather => &[StageId::Composite],
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            StageId::Read => "read",
            StageId::Render => "render",
            StageId::Composite => "composite",
            StageId::Gather => "gather",
        }
    }

    /// The `FaultPlan` stage a rank fault at this point belongs to.
    /// Gather rides on the composite deadline machinery and has no
    /// fault index of its own — plans written against the old
    /// three-stage executor keep their meaning.
    pub fn fault_stage(self) -> Option<Stage> {
        match self {
            StageId::Read => Some(Stage::Io),
            StageId::Render => Some(Stage::Render),
            StageId::Composite => Some(Stage::Composite),
            StageId::Gather => None,
        }
    }
}

/// A validation failure of a [`FramePlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    Duplicate(StageId),
    Missing(StageId),
    /// `stage` is scheduled before a stage whose output it needs.
    DependencyOrder {
        stage: StageId,
        needs: StageId,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Duplicate(s) => write!(f, "stage {} appears twice", s.name()),
            PlanError::Missing(s) => write!(f, "stage {} is missing", s.name()),
            PlanError::DependencyOrder { stage, needs } => write!(
                f,
                "stage {} runs before its input stage {}",
                stage.name(),
                needs.name()
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// A topological order over the stage DAG: each stage appears exactly
/// once, after every stage it consumes data from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FramePlan {
    order: Vec<StageId>,
}

impl FramePlan {
    /// The full pipeline in its canonical order.
    pub fn standard() -> FramePlan {
        FramePlan {
            order: StageId::ALL.to_vec(),
        }
    }

    /// Build a plan from an explicit stage order, verifying it is a
    /// topological order of the DAG covering every stage.
    pub fn new(order: Vec<StageId>) -> Result<FramePlan, PlanError> {
        let mut seen: Vec<StageId> = Vec::with_capacity(order.len());
        for &s in &order {
            if seen.contains(&s) {
                return Err(PlanError::Duplicate(s));
            }
            for &d in s.deps() {
                if !seen.contains(&d) {
                    return Err(PlanError::DependencyOrder { stage: s, needs: d });
                }
            }
            seen.push(s);
        }
        for s in StageId::ALL {
            if !seen.contains(&s) {
                return Err(PlanError::Missing(s));
            }
        }
        Ok(FramePlan { order })
    }

    pub fn stages(&self) -> &[StageId] {
        &self.order
    }
}

/// One frame's worth of stage execution on some executor. The scheduler
/// owns the sequencing; the executor owns the stage bodies and the data
/// handoffs between them.
pub trait StageExec: Sized {
    type Out;

    /// Called once before the first stage.
    fn begin(&mut self) {}

    /// Run one stage. `Break` aborts the remaining stages (a crashed
    /// rank); [`StageExec::finish`] still runs. Async so the
    /// message-passing executor can await virtual-time events mid-stage;
    /// the rayon executor's stages complete without ever suspending.
    fn stage(&mut self, stage: StageId) -> impl std::future::Future<Output = ControlFlow<()>>;

    /// Consume the executor and produce the frame's output.
    fn finish(self) -> Self::Out;
}

/// Drive an executor through a plan. Futures from executors that never
/// suspend (rayon) resolve in one poll — `pvr_mpisim::block_on_ready`
/// runs them from sync contexts.
pub async fn execute<E: StageExec>(plan: &FramePlan, exec: E) -> E::Out {
    execute_with(plan, exec, |_, _| {}).await
}

/// [`execute`] with a hook after each completed stage — the animation
/// driver uses it to launch the next frame's I/O prefetch as soon as
/// the current frame's read hands off, without owning the stage loop.
pub async fn execute_with<E: StageExec>(
    plan: &FramePlan,
    mut exec: E,
    mut after: impl FnMut(&mut E, StageId),
) -> E::Out {
    exec.begin();
    for &s in plan.stages() {
        match exec.stage(s).await {
            ControlFlow::Continue(()) => after(&mut exec, s),
            ControlFlow::Break(()) => break,
        }
    }
    exec.finish()
}

// ---------------------------------------------------------------------
// Tag epochs
// ---------------------------------------------------------------------

/// Tags advance by this stride per time step; the six stage tags of one
/// frame live in one epoch and can never collide with another frame's.
pub const EPOCH_STRIDE: u32 = 16;

/// The message tags of one time step's frame. Frame 0 is exactly the
/// legacy [`crate::pipeline::tags`] constants, so single-frame runs —
/// including the byte-golden profiled trace — are untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTags {
    pub io_scatter: u32,
    pub fragment: u32,
    pub tile: u32,
    pub io_ack: u32,
    pub frag_ack: u32,
    pub tile_ack: u32,
    /// Recovery orchestrator: adoption requests, the late fragments
    /// they produce, their shared ack channel, and the frame-complete
    /// broadcast.
    pub adopt: u32,
    pub late: u32,
    pub rec_ack: u32,
    pub done: u32,
}

impl FrameTags {
    pub fn for_frame(frame: usize) -> FrameTags {
        let base = EPOCH_STRIDE * frame as u32;
        FrameTags {
            io_scatter: tags::IO_SCATTER + base,
            fragment: tags::FRAGMENT + base,
            tile: tags::TILE + base,
            io_ack: tags::IO_ACK + base,
            frag_ack: tags::FRAG_ACK + base,
            tile_ack: tags::TILE_ACK + base,
            adopt: tags::ADOPT + base,
            late: tags::LATE + base,
            rec_ack: tags::REC_ACK + base,
            done: tags::DONE + base,
        }
    }

    /// The frame-0 stage tag an epoch tag descends from.
    pub fn base_of(tag: u32) -> u32 {
        ((tag - 1) % EPOCH_STRIDE) + 1
    }

    /// Which time step an epoch tag belongs to.
    pub fn frame_of(tag: u32) -> usize {
        ((tag - 1) / EPOCH_STRIDE) as usize
    }

    /// Human name of any epoch tag (`"frame2/fragment"`), or `None`
    /// for tags outside the stage-tag discipline. The model checker's
    /// choice points carry raw `u32` tags; this is how its reports
    /// translate them back into pipeline stages.
    pub fn name_of(tag: u32) -> Option<String> {
        if tag == 0 {
            return None;
        }
        let base = FrameTags::base_of(tag);
        let name = tags::ALL.iter().find(|(t, _)| *t == base)?.1;
        Some(format!("frame{}/{}", FrameTags::frame_of(tag), name))
    }

    /// The tags of this frame that wildcard receives match on — the
    /// data stages, where receive order is scheduler-dependent and
    /// model checking has something to decide. Ack tags are excluded:
    /// acks are received per-source (`recv_from`) or drained after the
    /// stage completes, so they open no choice points.
    pub fn wildcard_streams(&self) -> [(u32, &'static str); 3] {
        [
            (self.io_scatter, "io-scatter"),
            (self.fragment, "fragment"),
            (self.tile, "tile"),
        ]
    }

    /// The full tag table of an animation's first `frames` time steps,
    /// for tag-discipline lint over the multi-frame tag space.
    pub fn table(frames: usize) -> Vec<(u32, String)> {
        let mut out = Vec::with_capacity(frames * tags::ALL.len());
        for t in 0..frames {
            let base = EPOCH_STRIDE * t as u32;
            for (tag, name) in tags::ALL {
                out.push((tag + base, format!("frame{t}/{name}")));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Link modes
// ---------------------------------------------------------------------

/// Everything the fault-tolerant link mode needs, with the derived
/// fault state precomputed once.
#[derive(Debug, Clone)]
pub struct ReliableCfg {
    pub plan: FaultPlan,
    pub policy: RecoveryPolicy,
    pub store: StripedStore,
    faults: ServerFaults,
    rec: IoRecovery,
}

/// How the message-passing executor moves data: plain blocking sends
/// and receives with barriers between stages (the paper's
/// bulk-synchronous frame), or the fault-tolerant protocol — framed
/// acked links, deadline receives, no barriers, per-tile completeness.
#[derive(Debug, Clone)]
pub enum LinkMode {
    Direct,
    Reliable(Box<ReliableCfg>),
}

impl LinkMode {
    pub fn reliable(plan: FaultPlan, policy: RecoveryPolicy, store: StripedStore) -> LinkMode {
        let faults = plan.server_faults(store.servers);
        let rec = policy.io_recovery();
        LinkMode::Reliable(Box::new(ReliableCfg {
            plan,
            policy,
            store,
            faults,
            rec,
        }))
    }
}

// ---------------------------------------------------------------------
// Rayon executor
// ---------------------------------------------------------------------

/// Where a rayon frame's volume data comes from.
pub enum FrameInput<'a> {
    /// Sample the synthetic field procedurally (no I/O).
    Synthetic,
    /// Read the dataset file in the Read stage.
    File(&'a Path),
    /// Bytes already fetched by a prefetch thread: per-rank on-disk-order
    /// buffers, the realized I/O stats, and how long the background read
    /// took (charged to the frame's `io` stage time even though it was
    /// hidden under earlier frames).
    Prefetched {
        bytes: Vec<Vec<u8>>,
        io: IoRunStats,
        io_secs: f64,
    },
}

/// The data-parallel executor: logical ranks, shared address space,
/// rayon inside each stage. One instance runs one frame.
pub struct RayonExec<'a> {
    cfg: &'a FrameConfig,
    tracer: &'a Tracer,
    input: Option<FrameInput<'a>>,
    throttle: Option<IoThrottle>,
    geo: crate::pipeline::RankGeometry,
    camera: Camera,
    t0: Instant,
    sw: Stopwatch,
    timing: FrameTiming,
    io: IoRunStats,
    volumes: Vec<pvr_volume::Volume>,
    subs: Vec<SubImage>,
    render_stats: pvr_render::raycast::RenderStats,
    image: Option<Image>,
    composite: Option<DirectSendStats>,
}

impl<'a> RayonExec<'a> {
    pub fn new(
        cfg: &'a FrameConfig,
        input: FrameInput<'a>,
        tracer: &'a Tracer,
        throttle: Option<IoThrottle>,
    ) -> RayonExec<'a> {
        RayonExec {
            cfg,
            tracer,
            input: Some(input),
            throttle,
            geo: geometry(cfg),
            camera: Camera::orthographic(cfg.grid, default_view(), cfg.image.0, cfg.image.1),
            t0: Instant::now(),
            sw: Stopwatch::start(),
            timing: FrameTiming::default(),
            io: IoRunStats::default(),
            volumes: Vec::new(),
            subs: Vec::new(),
            render_stats: pvr_render::raycast::RenderStats::default(),
            image: None,
            composite: None,
        }
    }
}

impl StageExec for RayonExec<'_> {
    type Out = FrameResult;

    fn begin(&mut self) {
        let cfg = self.cfg;
        if self.tracer.enabled() {
            for r in 0..cfg.nprocs {
                self.tracer.name_track(r as u32, &format!("rank {r}"));
            }
        }
        self.tracer
            .begin_args(0, "frame", pvr_obs::Args::one("ranks", cfg.nprocs as u64));
        self.t0 = Instant::now();
        self.sw = Stopwatch::start();
    }

    async fn stage(&mut self, stage: StageId) -> ControlFlow<()> {
        let cfg = self.cfg;
        match stage {
            StageId::Read => {
                self.timing.starts[0] = self.t0.elapsed().as_secs_f64();
                self.tracer.begin(0, "io");
                let mut io_secs = None;
                (self.volumes, self.io) = match self.input.take().expect("input consumed once") {
                    FrameInput::Synthetic => {
                        (synthesize_stage(cfg, &self.geo), IoRunStats::default())
                    }
                    FrameInput::File(p) => match self.throttle {
                        None => read_stage(cfg, &self.geo, p, self.tracer),
                        Some(t) => {
                            // Throttled reads bypass the per-window span
                            // machinery: the bandwidth floor applies to
                            // the stage as a whole.
                            let (bytes, io) =
                                read_frame_bytes(cfg, p, Some(t)).expect("dataset file");
                            (decode_rank_bytes(cfg, &self.geo, &bytes), io)
                        }
                    },
                    FrameInput::Prefetched {
                        bytes,
                        io,
                        io_secs: s,
                    } => {
                        io_secs = Some(s);
                        (decode_rank_bytes(cfg, &self.geo, &bytes), io)
                    }
                };
                self.tracer.end_args(
                    0,
                    "io",
                    pvr_obs::Args::one("useful_bytes", self.io.useful_bytes),
                );
                let lap = self.sw.lap();
                // A prefetched frame charges the background read's real
                // duration, not the (near-zero) in-frame decode wait.
                self.timing.io = io_secs.map_or(lap, |s| s + lap);
            }
            StageId::Render => {
                self.timing.starts[1] = self.t0.elapsed().as_secs_f64();
                self.tracer.begin(0, "render");
                let tf = transfer_for(cfg);
                let opts = render_opts(cfg);
                let geo = &self.geo;
                let camera = &self.camera;
                let tracer = self.tracer;
                let rendered: Vec<(SubImage, pvr_render::raycast::RenderStats)> = self
                    .volumes
                    .par_iter()
                    .enumerate()
                    .map(|(rank, vol)| {
                        let dom = BlockDomain {
                            grid: cfg.grid,
                            owned: geo.owned[rank],
                            stored: geo.stored[rank],
                        };
                        pvr_render::raycast::render_block_traced(
                            vol,
                            &dom,
                            camera,
                            &tf,
                            &opts,
                            tracer,
                            rank as u32,
                        )
                    })
                    .collect();
                self.timing.render = self.sw.lap();
                for (_, s) in &rendered {
                    self.render_stats.merge(s);
                }
                let rs = &self.render_stats;
                self.tracer.end_args(
                    0,
                    "render",
                    pvr_obs::Args::three(
                        "samples",
                        rs.samples,
                        "packets",
                        rs.packets,
                        "terminated_rays",
                        rs.terminated_rays,
                    ),
                );
                self.subs = rendered.into_iter().map(|(s, _)| s).collect();
                self.volumes.clear();
            }
            StageId::Composite => {
                self.timing.starts[2] = self.t0.elapsed().as_secs_f64();
                self.tracer.begin(0, "composite");
                let m = cfg.compositors();
                let partition = ImagePartition::new(cfg.image.0, cfg.image.1, m);
                let (image, composite) = pvr_compositing::composite_direct_send_traced(
                    &self.subs,
                    partition,
                    self.tracer,
                );
                self.tracer.end_args(
                    0,
                    "composite",
                    pvr_obs::Args::one("messages", composite.messages as u64),
                );
                self.timing.composite = self.sw.lap();
                self.image = Some(image);
                self.composite = Some(composite);
            }
            // Direct-send already pastes tiles into the final image; the
            // shared-address-space gather is that paste.
            StageId::Gather => {}
        }
        ControlFlow::Continue(())
    }

    fn finish(self) -> FrameResult {
        self.tracer.end(0, "frame");
        let mut timing = self.timing;
        timing.wall = self.t0.elapsed().as_secs_f64();
        // The shared address space has no per-rank stage decomposition
        // and no fault plan: the frame-level stage times alone gate.
        timing.slo = Some(crate::slo::annotate(
            self.cfg,
            &crate::slo::FrameSample {
                stage_secs: [timing.io, timing.render, timing.composite],
                per_rank: &[],
                incidents: &[],
            },
        ));
        let rs = self.render_stats;
        FrameResult {
            image: self.image.expect("composite stage ran"),
            timing,
            io: self.io,
            render_samples: rs.samples,
            render_skipped: rs.skipped_samples,
            render_packets: rs.packets,
            render_eval_lanes: rs.packet_eval_lanes,
            render_eval_slots: rs.packet_eval_slots,
            render_terminated: rs.terminated_rays,
            render_error_bound: rs.error_bound as f64,
            composite: self.composite.expect("composite stage ran"),
        }
    }
}

/// Decode per-rank on-disk-order byte buffers into volumes.
fn decode_rank_bytes(
    cfg: &FrameConfig,
    geo: &crate::pipeline::RankGeometry,
    bytes: &[Vec<u8>],
) -> Vec<pvr_volume::Volume> {
    let layout = cfg.io.layout(cfg.grid);
    bytes
        .par_iter()
        .zip(&geo.stored)
        .map(|(b, sub)| decode_volume(b, sub, layout.endian()))
        .collect()
}

// ---------------------------------------------------------------------
// Frame-invariant shared state
// ---------------------------------------------------------------------

/// Everything about a frame that is a pure function of the
/// configuration, computed once by the driver and shared read-only by
/// every rank. Each rank used to re-derive the full geometry, the
/// per-rank request table, the two-phase scatter plan, and the
/// direct-send schedule — O(n) work and memory per rank, O(n²) for the
/// world — which is what kept the simulated executor from reaching the
/// paper's 32K-rank scale.
pub struct FrameShared {
    pub(crate) stored: Vec<pvr_formats::Subvolume>,
    pub(crate) owned: Vec<pvr_formats::Subvolume>,
    pub(crate) camera: Camera,
    /// Per-rank placed-run read requests (index = rank).
    pub(crate) requests: Vec<pvr_pfs::RankRequest>,
    /// Two-phase scatter plan (collective layouts only).
    pub(crate) scatter: Option<ScatterPlan>,
    /// The direct-send schedule every rank derives identically.
    pub(crate) schedule: Schedule,
    pub(crate) partition: ImagePartition,
}

impl FrameShared {
    pub fn new(cfg: &FrameConfig) -> FrameShared {
        let geo = geometry(cfg);
        let camera = Camera::orthographic(cfg.grid, default_view(), cfg.image.0, cfg.image.1);
        let layout = cfg.io.layout(cfg.grid);
        let requests = rank_requests(layout.as_ref(), cfg.file_variable(), &geo.stored);
        let scatter = layout.collective().then(|| {
            let naggr = laptop_aggregators(cfg.nprocs);
            ScatterPlan::build(&requests, naggr, &cfg.io.hints(cfg.grid))
        });
        let partition = ImagePartition::new(cfg.image.0, cfg.image.1, cfg.compositors());
        let footprints: Vec<pvr_render::image::PixelRect> = (0..cfg.nprocs)
            .map(|r| {
                pvr_render::raycast::footprint(
                    &camera,
                    geo.owned[r].offset,
                    geo.owned[r].end(),
                    cfg.image,
                )
            })
            .collect();
        let schedule = build_schedule(&footprints, partition);
        FrameShared {
            stored: geo.stored,
            owned: geo.owned,
            camera,
            requests,
            scatter,
            schedule,
            partition,
        }
    }
}

// ---------------------------------------------------------------------
// Message-passing executor (one rank's frame)
// ---------------------------------------------------------------------

/// Window bytes a prefetch thread fetched for this rank's aggregator
/// duty: one buffer per window access this rank hosts, in plan order.
#[derive(Debug)]
pub struct PrefetchedWindows {
    pub bufs: Vec<Vec<u8>>,
    /// Wall seconds the background read took (including any throttle
    /// padding) — charged to the frame's `io` stage time.
    pub io_secs: f64,
}

/// What each rank hands back to the driver.
#[derive(Debug)]
pub struct RankOut {
    pub image: Option<Image>,
    pub completeness: Option<CompletenessMap>,
    pub timing: FrameTiming,
    /// This rank's render-kernel statistics (samples, skips, packets,
    /// lane utilization, early terminations, bounded-error bound).
    pub render: pvr_render::raycast::RenderStats,
    /// Honest wire bytes this rank sent (per fragment, the cheaper of
    /// the dense and sparse encodings).
    pub sent_bytes: u64,
    /// What the same fragments would have cost shipped dense — the
    /// schedule's prediction.
    pub sent_dense_bytes: u64,
    /// Fragments that went out sparse-encoded.
    pub sparse_messages: usize,
    pub counters: RecoveryCounters,
    pub io_failover_bytes: u64,
    pub io_unrecovered_bytes: u64,
}

impl RankOut {
    pub(crate) fn crashed(timing: FrameTiming) -> Self {
        RankOut {
            image: None,
            completeness: None,
            timing,
            render: pvr_render::raycast::RenderStats::default(),
            sent_bytes: 0,
            sent_dense_bytes: 0,
            sparse_messages: 0,
            counters: RecoveryCounters {
                crashed_ranks: 1,
                ..RecoveryCounters::default()
            },
            io_failover_bytes: 0,
            io_unrecovered_bytes: 0,
        }
    }
}

/// One adopted orphan block: the survivor's re-render (`None` when the
/// budget only allowed a skip) and the I/O quality of the re-read.
struct AdoptedBlock {
    sub: Option<SubImage>,
    quality: f64,
}

/// What the I/O stage hands the rest of the rank's frame.
struct RankIo {
    bytes: Vec<u8>,
    /// Fraction of this rank's requested bytes that arrived intact.
    quality: f64,
    failover_bytes: u64,
    unrecovered_bytes: u64,
    /// Background-read seconds of a prefetched frame (0 when live).
    prefetch_secs: f64,
}

/// One rank's frame on the message-passing executor: the unified body
/// behind both the plain and the fault-tolerant entry points. Link mode
/// selects the protocol per stage; the stage sequence itself lives only
/// in [`execute`].
pub struct RankExec<'a> {
    comm: &'a mut pvr_mpisim::Comm,
    cfg: &'a FrameConfig,
    path: &'a Path,
    links: &'a LinkMode,
    tags: FrameTags,
    /// Barrier between stages (the paper's bulk-synchronous frame).
    /// Direct mode only; the reliable protocol never blocks on a
    /// barrier a crashed rank might miss.
    barriers: bool,
    throttle: Option<IoThrottle>,
    windows: Option<PrefetchedWindows>,
    m: usize,
    // --- per-frame state, built up stage by stage ---
    sw: Stopwatch,
    t0: Instant,
    timing: FrameTiming,
    counters: RecoveryCounters,
    crashed: bool,
    /// Frame-invariant derived state shared by every rank.
    shared: Arc<FrameShared>,
    window_extents: Vec<Extent>,
    volume: Option<pvr_volume::Volume>,
    io: Option<RankIo>,
    sub: Option<SubImage>,
    rstats: pvr_render::raycast::RenderStats,
    sent: u64,
    sent_dense: u64,
    sparse_msgs: usize,
    frag_out: Option<OutBox>,
    frag_in: Option<InBox>,
    /// Direct mode: finished tiles awaiting the gather.
    tiles_direct: Vec<(usize, SubImage)>,
    /// Reliable mode: `(tile, expected_area, arrived_area, pixels)`.
    tile_reliable: Option<(usize, f64, f64, SubImage)>,
    /// Reliable mode: recovery control channel — adoption requests,
    /// the late fragments they produce, the frame-complete broadcast —
    /// all acked on one shared tag.
    rec_out: Option<OutBox>,
    rec_in: Option<InBox>,
    /// Degradation-ladder ledger for this rank's heals.
    budget: RecoveryBudget,
    /// Orphan blocks this rank adopted this frame, keyed by the dead
    /// renderer: one re-render serves every tile that needs a piece.
    adopted: HashMap<usize, AdoptedBlock>,
    /// Image fraction this rank re-rendered at the coarse rung.
    error_bound: f64,
    image: Option<Image>,
    completeness: Option<CompletenessMap>,
}

impl<'a> RankExec<'a> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        comm: &'a mut pvr_mpisim::Comm,
        cfg: &'a FrameConfig,
        path: &'a Path,
        links: &'a LinkMode,
        tags: FrameTags,
        barriers: bool,
        throttle: Option<IoThrottle>,
        windows: Option<PrefetchedWindows>,
        shared: Arc<FrameShared>,
    ) -> RankExec<'a> {
        let budget = match links {
            LinkMode::Reliable(rc) => RecoveryBudget::for_frame(cfg, &rc.policy),
            LinkMode::Direct => RecoveryBudget::new(None),
        };
        RankExec {
            comm,
            cfg,
            path,
            links,
            tags,
            barriers,
            throttle,
            windows,
            m: cfg.compositors(),
            sw: Stopwatch::start(),
            t0: Instant::now(),
            timing: FrameTiming::default(),
            counters: RecoveryCounters::default(),
            crashed: false,
            shared,
            window_extents: Vec::new(),
            volume: None,
            io: None,
            sub: None,
            rstats: pvr_render::raycast::RenderStats::default(),
            sent: 0,
            sent_dense: 0,
            sparse_msgs: 0,
            frag_out: None,
            frag_in: None,
            tiles_direct: Vec::new(),
            tile_reliable: None,
            rec_out: None,
            rec_in: None,
            budget,
            adopted: HashMap::new(),
            error_bound: 0.0,
            image: None,
            completeness: None,
        }
    }

    /// File extents of the window accesses this rank hosts as an
    /// aggregator — what a prefetch thread should read for the next
    /// frame (the scatter geometry is frame-invariant). Populated by
    /// the Read stage; empty for non-aggregators and independent I/O.
    pub fn my_window_extents(&self) -> &[Extent] {
        &self.window_extents
    }

    /// The compositor→rank placement both executors share.
    fn compositor_rank(&self, c: usize) -> usize {
        crate::roles::compositor_rank(c, self.comm.size(), self.m)
    }

    /// Fault-plan crash/straggle check at a stage boundary (reliable
    /// links only). Returns true when this rank crashes here; the span
    /// bookkeeping of the abandoned frame is already done.
    async fn crash_check(&mut self, stage: StageId, span: &'static str, mark: u64) -> bool {
        let LinkMode::Reliable(rc) = self.links else {
            return false;
        };
        let Some(fs) = stage.fault_stage() else {
            return false;
        };
        let action = rc.plan.rank_fault(self.comm.rank(), fs);
        match action {
            Some(RankAction::Crash) => {
                self.comm.mark_instant("rank.crash", mark);
                self.comm.span_end(span);
                self.comm.span_end("frame");
                if stage == StageId::Read {
                    self.timing.io = self.sw.lap();
                }
                self.crashed = true;
                true
            }
            Some(RankAction::StraggleMs(ms)) => {
                // Straggles cost simulated seconds, not wall clock: the
                // world's virtual timer parks this rank while everyone
                // else runs on.
                self.comm.sleep(Duration::from_millis(ms)).await;
                false
            }
            None => false,
        }
    }

    // --- Read stage ------------------------------------------------

    async fn stage_read(&mut self) -> ControlFlow<()> {
        self.timing.starts[0] = self.t0.elapsed().as_secs_f64();
        self.comm.span_begin("io");
        if self.crash_check(StageId::Read, "io", 0).await {
            return ControlFlow::Break(());
        }
        let layout = self.cfg.io.layout(self.cfg.grid);
        let shared = Arc::clone(&self.shared);
        let io = if let Some(sp) = &shared.scatter {
            self.window_extents = sp
                .accesses_of(self.comm.rank(), self.comm.size())
                .map(|a| a.extent)
                .collect();
            match self.links {
                LinkMode::Direct => self.scatter_direct(sp, &shared.requests).await,
                LinkMode::Reliable(_) => self.scatter_reliable(sp, &shared.requests).await,
            }
        } else {
            self.read_independent(&shared.requests).await
        };
        let rank = self.comm.rank();
        self.volume = Some(decode_volume(
            &io.bytes,
            &shared.stored[rank],
            layout.endian(),
        ));
        match self.links {
            LinkMode::Direct => {
                // Close the stage before the barrier: the span then
                // measures this rank's own progress; barrier wait time
                // accrues to the parent span.
                self.comm.span_end("io");
                if self.barriers {
                    self.comm.barrier().await;
                }
                self.timing.io = self.sw.lap() + io.prefetch_secs;
            }
            LinkMode::Reliable(_) => {
                self.timing.io = self.sw.lap() + io.prefetch_secs;
                self.comm.span_end("io");
            }
        }
        self.io = Some(io);
        ControlFlow::Continue(())
    }

    /// One window's bytes: the prefetched buffer when the animation
    /// driver fetched it ahead of time, a live (optionally throttled)
    /// file read otherwise.
    fn window_bytes(
        &mut self,
        idx: usize,
        w: Extent,
        file: &mut Option<File>,
        live_bytes: &mut u64,
    ) -> Vec<u8> {
        if let Some(pw) = &mut self.windows {
            if let Some(buf) = pw.bufs.get_mut(idx) {
                return std::mem::take(buf);
            }
        }
        let f = file.get_or_insert_with(|| File::open(self.path).expect("dataset file"));
        let mut buf = vec![0u8; w.len as usize];
        f.seek(SeekFrom::Start(w.offset)).unwrap();
        f.read_exact(&mut buf).unwrap();
        *live_bytes += w.len;
        buf
    }

    /// Plain two-phase scatter: blocking sends, counted receives. The
    /// per-rank operation order reproduces the original executor
    /// exactly — the byte-golden logical profile depends on it.
    async fn scatter_direct(
        &mut self,
        sp: &ScatterPlan,
        requests: &[pvr_pfs::RankRequest],
    ) -> RankIo {
        let rank = self.comm.rank();
        let t_read = Instant::now();
        let mut live_bytes = 0u64;
        let mut file: Option<File> = None;
        let my = self.window_extents.clone();
        for (i, w) in my.iter().enumerate() {
            self.comm.span_begin_v("io.window", w.len);
            let buf = self.window_bytes(i, *w, &mut file, &mut live_bytes);
            for p in sp.pieces_in(*w) {
                let mut msg = Vec::with_capacity(16 + p.len());
                msg.extend((p.out_byte as u64).to_le_bytes());
                msg.extend((p.len() as u64).to_le_bytes());
                msg.extend(&buf[p.src_lo..p.src_hi]);
                self.comm.send(p.rank, self.tags.io_scatter, msg).await;
            }
            self.comm.span_end("io.window");
        }
        if let Some(t) = self.throttle {
            let rem = t.remaining(live_bytes, t_read.elapsed());
            if rem > Duration::ZERO {
                self.comm.sleep(rem).await;
            }
        }

        let mut out = vec![0u8; requests[rank].out_elems * ELEM_SIZE as usize];
        for _ in 0..sp.piece_counts[rank] {
            let (_, msg) = self.comm.recv_any(self.tags.io_scatter).await;
            let dst = u64::from_le_bytes(msg[0..8].try_into().unwrap()) as usize;
            let nb = u64::from_le_bytes(msg[8..16].try_into().unwrap()) as usize;
            out[dst..dst + nb].copy_from_slice(&msg[16..16 + nb]);
        }
        RankIo {
            bytes: out,
            quality: 1.0,
            failover_bytes: 0,
            unrecovered_bytes: 0,
            prefetch_secs: self.windows.as_ref().map_or(0.0, |w| w.io_secs),
        }
    }

    /// Fault-tolerant two-phase scatter: framed acked sends, deadline
    /// receives, storage faults audited per window, holes zero-filled
    /// and reported in each piece's header.
    async fn scatter_reliable(
        &mut self,
        sp: &ScatterPlan,
        requests: &[pvr_pfs::RankRequest],
    ) -> RankIo {
        let LinkMode::Reliable(rc) = self.links else {
            unreachable!("reliable scatter needs reliable links")
        };
        let rank = self.comm.rank();
        let lp = rc.policy.link_policy();
        let mut io_out = OutBox::new(rank, self.tags.io_ack, lp);
        let mut failover_bytes = 0u64;
        let t_read = Instant::now();
        let mut live_bytes = 0u64;
        let mut file: Option<File> = None;
        let my = self.window_extents.clone();
        for (i, w) in my.iter().enumerate() {
            let audit = window_fault_audit(&rc.store, &rc.faults, &rc.rec, *w);
            self.counters.io_retries += audit.retries;
            self.counters.io_failovers += audit.failovers;
            failover_bytes += audit.failover_bytes;
            let mut buf = self.window_bytes(i, *w, &mut file, &mut live_bytes);
            for lost in &audit.unrecoverable {
                let lo = (lost.offset.max(w.offset) - w.offset) as usize;
                let hi = (lost.end().min(w.end()) - w.offset) as usize;
                if lo < hi {
                    buf[lo..hi].fill(0);
                }
            }
            for p in sp.pieces_in(*w) {
                let hole: u64 = audit
                    .unrecoverable
                    .iter()
                    .map(|e| {
                        let l = e.offset.max(p.file_lo);
                        let h = e.end().min(p.file_hi);
                        h.saturating_sub(l)
                    })
                    .sum();
                let mut msg = Vec::with_capacity(24 + p.len());
                msg.extend((p.out_byte as u64).to_le_bytes());
                msg.extend((p.len() as u64).to_le_bytes());
                msg.extend(hole.to_le_bytes());
                msg.extend(&buf[p.src_lo..p.src_hi]);
                io_out
                    .send(self.comm, p.rank, self.tags.io_scatter, msg)
                    .await;
            }
        }
        if let Some(t) = self.throttle {
            let rem = t.remaining(live_bytes, t_read.elapsed());
            if rem > Duration::ZERO {
                self.comm.sleep(rem).await;
            }
        }

        // Receive my pieces until complete or the stage deadline.
        let mut io_in = InBox::new();
        let mut out = vec![0u8; requests[rank].out_elems * ELEM_SIZE as usize];
        let mut arrived = 0u64;
        let mut holes = 0u64;
        let mut got = 0usize;
        let deadline = self.comm.now() + rc.policy.stage_deadline;
        let suspect_at = self.comm.now() + rc.policy.suspicion;
        while got < sp.piece_counts[rank] && self.comm.now() < deadline {
            io_out.poll(self.comm).await;
            if let Some((src, frame)) = self
                .comm
                .recv_any_timeout(self.tags.io_scatter, rc.policy.poll)
                .await
            {
                if let Some(body) = io_in.accept(self.comm, src, self.tags.io_ack, &frame).await {
                    let dst = u64::from_le_bytes(body[0..8].try_into().unwrap()) as usize;
                    let nb = u64::from_le_bytes(body[8..16].try_into().unwrap()) as usize;
                    let hole = u64::from_le_bytes(body[16..24].try_into().unwrap());
                    out[dst..dst + nb].copy_from_slice(&body[24..24 + nb]);
                    arrived += nb as u64;
                    holes += hole;
                    got += 1;
                }
            }
            // A silent aggregator (crashed mid-scatter) starves this
            // rank's pieces forever. Past the suspicion window, bypass
            // the two-phase exchange entirely: re-read everything this
            // rank needs straight from the file through the same
            // storage-failover audit the aggregators use — bit-identical
            // bytes, a full stage deadline earlier.
            if got < sp.piece_counts[rank] && self.comm.now() >= suspect_at {
                let (bytes, useful, unrec, fo) = self.read_runs_audited(&requests[rank]);
                out = bytes;
                arrived = useful;
                holes = unrec;
                failover_bytes += fo;
                self.counters.selfheal_bytes += useful;
                self.counters.recovery_bytes += useful;
                self.comm.mark_instant("recover.io_selfheal", useful);
                break;
            }
        }
        let drain_deadline = self.comm.now() + rc.policy.drain;
        io_out.drain(self.comm, drain_deadline).await;
        self.counters.merge(&io_out.counters);
        self.counters.merge(&io_in.counters);

        let expected = sp.piece_bytes[rank];
        let missing = expected.saturating_sub(arrived);
        let quality = if expected == 0 {
            1.0
        } else {
            1.0 - (missing + holes) as f64 / expected as f64
        };
        RankIo {
            bytes: out,
            quality,
            failover_bytes,
            unrecovered_bytes: missing + holes,
            prefetch_secs: self.windows.as_ref().map_or(0.0, |w| w.io_secs),
        }
    }

    /// Read one rank's runs straight from the file; reliable links
    /// additionally audit storage faults and zero-fill unrecoverable
    /// ranges. Returns the subvolume byte buffer plus `(useful,
    /// unrecovered, failover)` byte counts. Shared between independent
    /// I/O, the scatter self-heal, and orphan-block adoption — all
    /// three produce bit-identical bytes to a fault-free scatter.
    fn read_runs_audited(&mut self, req: &pvr_pfs::RankRequest) -> (Vec<u8>, u64, u64, u64) {
        let mut out = vec![0u8; req.out_elems * ELEM_SIZE as usize];
        let mut unrecovered = 0u64;
        let mut failover_bytes = 0u64;
        let mut useful = 0u64;
        let mut file = File::open(self.path).expect("dataset file");
        for run in &req.runs {
            let nb = run.elems * ELEM_SIZE as usize;
            useful += nb as u64;
            let audit = if let LinkMode::Reliable(rc) = self.links {
                let a = window_fault_audit(
                    &rc.store,
                    &rc.faults,
                    &rc.rec,
                    Extent::new(run.file_offset, nb as u64),
                );
                self.counters.io_retries += a.retries;
                self.counters.io_failovers += a.failovers;
                failover_bytes += a.failover_bytes;
                Some(a)
            } else {
                None
            };
            file.seek(SeekFrom::Start(run.file_offset)).unwrap();
            let dst = &mut out[run.out_start * 4..run.out_start * 4 + nb];
            file.read_exact(dst).unwrap();
            if let Some(audit) = audit {
                for lost in &audit.unrecoverable {
                    let lo = lost.offset.max(run.file_offset) - run.file_offset;
                    let hi = lost.end().min(run.file_offset + nb as u64) - run.file_offset;
                    if lo < hi {
                        dst[lo as usize..hi as usize].fill(0);
                        unrecovered += hi - lo;
                    }
                }
            }
        }
        (out, useful, unrecovered, failover_bytes)
    }

    /// Independent (HDF5-like) path: every rank reads its own runs
    /// directly.
    async fn read_independent(&mut self, requests: &[pvr_pfs::RankRequest]) -> RankIo {
        let rank = self.comm.rank();
        let t_read = Instant::now();
        let (out, useful, unrecovered, failover_bytes) = self.read_runs_audited(&requests[rank]);
        if let Some(t) = self.throttle {
            let rem = t.remaining(useful, t_read.elapsed());
            if rem > Duration::ZERO {
                self.comm.sleep(rem).await;
            }
        }
        let quality = if useful == 0 {
            1.0
        } else {
            1.0 - unrecovered as f64 / useful as f64
        };
        RankIo {
            bytes: out,
            quality,
            failover_bytes,
            unrecovered_bytes: unrecovered,
            prefetch_secs: 0.0,
        }
    }

    // --- Render stage ----------------------------------------------

    async fn stage_render(&mut self) -> ControlFlow<()> {
        self.timing.starts[1] = self.t0.elapsed().as_secs_f64();
        self.comm.span_begin("render");
        if self.crash_check(StageId::Render, "render", 1).await {
            return ControlFlow::Break(());
        }
        let rank = self.comm.rank();
        let dom = BlockDomain {
            grid: self.cfg.grid,
            owned: self.shared.owned[rank],
            stored: self.shared.stored[rank],
        };
        let tf = transfer_for(self.cfg);
        let ropts = render_opts(self.cfg);
        let volume = self.volume.take().expect("read stage ran");
        let (sub, rstats) = render_block(&volume, &dom, &self.shared.camera, &tf, &ropts);
        self.comm.mark_instant("render.samples", rstats.samples);
        if rstats.packets > 0 {
            self.comm.mark_instant("render.packets", rstats.packets);
        }
        self.rstats = rstats;
        self.sub = Some(sub);
        match self.links {
            LinkMode::Direct => {
                self.comm.span_end("render");
                if self.barriers {
                    self.comm.barrier().await;
                }
                self.timing.render = self.sw.lap();
            }
            LinkMode::Reliable(_) => {
                self.timing.render = self.sw.lap();
                self.comm.span_end("render");
            }
        }
        ControlFlow::Continue(())
    }

    // --- Recovery orchestration ------------------------------------

    /// Adopt `orphan`'s block: charge the degradation ladder, re-read
    /// the dead rank's subvolume through the storage failover path, and
    /// re-render it at the rung the budget allows. Cached — one render
    /// serves every tile that needs a piece of the block.
    fn adopt_block(&mut self, orphan: usize) -> (Option<SubImage>, f64) {
        if let Some(ab) = self.adopted.get(&orphan) {
            return (ab.sub.clone(), ab.quality);
        }
        let LinkMode::Reliable(rc) = self.links else {
            unreachable!("adoption needs reliable links")
        };
        let policy = rc.policy;
        let cfg = self.cfg;
        let shared = Arc::clone(&self.shared);
        let model = PerfModel::default();
        let est = block_cost(cfg, &model, &shared.owned[orphan]);
        let ab = match self.budget.charge(est, policy.coarse_step_factor) {
            HealDecision::Skip => AdoptedBlock {
                sub: None,
                quality: 0.0,
            },
            rung => {
                let layout = cfg.io.layout(cfg.grid);
                let (bytes, useful, unrecovered, _) =
                    self.read_runs_audited(&shared.requests[orphan]);
                self.counters.recovery_bytes += useful;
                let vol = decode_volume(&bytes, &shared.stored[orphan], layout.endian());
                let dom = BlockDomain {
                    grid: cfg.grid,
                    owned: shared.owned[orphan],
                    stored: shared.stored[orphan],
                };
                let tf = transfer_for(cfg);
                let mut ropts = render_opts(cfg);
                if rung == HealDecision::Coarse {
                    ropts.step *= policy.coarse_step_factor;
                    self.counters.approx_blocks += 1;
                    let fp = pvr_render::raycast::footprint(
                        &shared.camera,
                        shared.owned[orphan].offset,
                        shared.owned[orphan].end(),
                        cfg.image,
                    );
                    self.error_bound +=
                        fp.num_pixels() as f64 / (cfg.image.0 as f64 * cfg.image.1 as f64);
                }
                let (sub, _) = render_block(&vol, &dom, &shared.camera, &tf, &ropts);
                self.counters.adopted_blocks += 1;
                self.comm
                    .mark_instant("recover.adopted_block", orphan as u64);
                let quality = if useful == 0 {
                    1.0
                } else {
                    1.0 - unrecovered as f64 / useful as f64
                };
                AdoptedBlock {
                    sub: Some(sub),
                    quality,
                }
            }
        };
        let out = (ab.sub.clone(), ab.quality);
        self.adopted.insert(orphan, ab);
        out
    }

    /// Ranks guaranteed to be polling the recovery channel: the
    /// compositor ranks (they serve adoption while waiting for their
    /// own fragments and linger until the frame-complete broadcast)
    /// plus rank 0 (it serves through the gather).
    fn adopter_candidates(&self) -> Vec<usize> {
        let mut c: Vec<usize> = (0..self.m).map(|i| self.compositor_rank(i)).collect();
        if !c.contains(&0) {
            c.push(0);
        }
        c
    }

    /// Serve one adoption request `[orphan, tile]`: reply with a late
    /// fragment of the adopted re-render cropped to the requested tile,
    /// or an explicit refusal when the ladder is out of budget.
    async fn serve_adopt(&mut self, src: usize, body: &[u8], partition: ImagePartition) {
        let orphan = u64::from_le_bytes(body[0..8].try_into().unwrap()) as usize;
        let c = u64::from_le_bytes(body[8..16].try_into().unwrap()) as usize;
        let (sub, quality) = self.adopt_block(orphan);
        let frag = sub.and_then(|s| s.crop(&partition.tile(c)));
        let mut reply = Vec::new();
        reply.extend((orphan as u64).to_le_bytes());
        reply.extend((c as u64).to_le_bytes());
        match frag {
            Some(f) => {
                reply.extend(0u64.to_le_bytes());
                reply.extend(quality.to_le_bytes());
                reply.extend(encode_fragment(orphan, &f));
            }
            None => reply.extend(1u64.to_le_bytes()),
        }
        let rec_out = self.rec_out.as_mut().expect("recovery channel open");
        rec_out.send(self.comm, src, self.tags.late, reply).await;
    }

    /// Absorb one late-arrival reply into my open tile.
    fn accept_late(&mut self, body: &[u8], asm: &mut TileAssembly) {
        let orphan = u64::from_le_bytes(body[0..8].try_into().unwrap()) as usize;
        let c = u64::from_le_bytes(body[8..16].try_into().unwrap()) as usize;
        if c != asm.tile() {
            return;
        }
        if u64::from_le_bytes(body[16..24].try_into().unwrap()) != 0 {
            asm.refuse(orphan);
            return;
        }
        let quality = f64::from_le_bytes(body[24..32].try_into().unwrap());
        let (renderer, frag) = decode_fragment(&body[32..]);
        if asm.insert(renderer, quality, frag) == InsertOutcome::Fresh {
            self.counters.late_fragments += 1;
            self.comm
                .mark_instant("recover.late_fragment", renderer as u64);
        }
    }

    /// Drain the recovery channel: serve adoption requests addressed to
    /// me, absorb late replies into my open tile. Stray replies after
    /// the tile sealed are still acked (so the sender stops
    /// retransmitting) and dropped.
    async fn pump_recovery(
        &mut self,
        partition: ImagePartition,
        mut asm: Option<&mut TileAssembly>,
    ) {
        while let Some((src, frame)) = self.comm.try_recv_any(self.tags.adopt) {
            let rec_in = self.rec_in.as_mut().expect("recovery channel open");
            if let Some(body) = rec_in
                .accept(self.comm, src, self.tags.rec_ack, &frame)
                .await
            {
                self.serve_adopt(src, &body, partition).await;
            }
        }
        while let Some((src, frame)) = self.comm.try_recv_any(self.tags.late) {
            let rec_in = self.rec_in.as_mut().expect("recovery channel open");
            if let Some(body) = rec_in
                .accept(self.comm, src, self.tags.rec_ack, &frame)
                .await
            {
                if let Some(asm) = asm.as_deref_mut() {
                    self.accept_late(&body, asm);
                }
            }
        }
    }

    /// A renderer is suspected dead: pick its deterministic adopter
    /// (every requester computes the same seeded load-aware assignment)
    /// and ask for its fragment of my tile. Self-assignments render
    /// locally. A merely-straggling original that arrives later loses
    /// the race harmlessly: first-wins dedup keeps one copy and the
    /// re-render is deterministic, so either copy is the same pixels.
    async fn request_adoption(
        &mut self,
        orphan: usize,
        tile: usize,
        partition: ImagePartition,
        asm: &mut TileAssembly,
    ) {
        let LinkMode::Reliable(rc) = self.links else {
            return;
        };
        let seed = rc.plan.seed;
        let model = PerfModel::default();
        let loads = render_loads(self.cfg, &model, &self.shared.owned);
        let suspects = asm.missing();
        let candidates = self.adopter_candidates();
        let Some(a) = adopter_of(orphan, &suspects, &candidates, seed, &loads) else {
            return;
        };
        self.counters.hedged_renders += 1;
        self.comm
            .mark_instant("recover.adopt_request", orphan as u64);
        if a == self.comm.rank() {
            let (sub, quality) = self.adopt_block(orphan);
            match sub.and_then(|s| s.crop(&partition.tile(tile))) {
                Some(f) => {
                    if asm.insert(orphan, quality, f) == InsertOutcome::Fresh {
                        self.counters.late_fragments += 1;
                    }
                }
                None => asm.refuse(orphan),
            }
        } else {
            let mut body = Vec::with_capacity(16);
            body.extend((orphan as u64).to_le_bytes());
            body.extend((tile as u64).to_le_bytes());
            let rec_out = self.rec_out.as_mut().expect("recovery channel open");
            rec_out.send(self.comm, a, self.tags.adopt, body).await;
        }
    }

    // --- Composite stage -------------------------------------------

    /// Account one outgoing fragment under the paper's wire pricing:
    /// the cheaper of the dense and sparse encodings (mirroring what
    /// `encode_fragment` actually ships), plus the dense cost the
    /// schedule predicts.
    fn account_fragment(&mut self, frag: &SubImage) {
        let (dense, sparse) = pvr_compositing::piece_wire_bytes(frag, &frag.rect);
        self.sent_dense += dense;
        if sparse < dense {
            self.sparse_msgs += 1;
            self.sent += sparse;
        } else {
            self.sent += dense;
        }
    }

    async fn stage_composite(&mut self) -> ControlFlow<()> {
        self.timing.starts[2] = self.t0.elapsed().as_secs_f64();
        self.comm.span_begin("composite");
        if self.crash_check(StageId::Composite, "composite", 2).await {
            return ControlFlow::Break(());
        }
        let rank = self.comm.rank();
        // The schedule and partition are frame invariants computed once
        // by the driver — no per-rank rebuild.
        let shared = Arc::clone(&self.shared);
        let partition = shared.partition;
        let schedule = &shared.schedule;
        let sub = self.sub.take().expect("render stage ran");
        let quality = self.io.as_ref().map_or(1.0, |io| io.quality);

        match self.links {
            LinkMode::Direct => {
                // Send my fragments.
                for msg in schedule.messages.iter().filter(|m| m.renderer == rank) {
                    let tile = partition.tile(msg.compositor);
                    if let Some(frag) = sub.crop(&tile) {
                        let dst = self.compositor_rank(msg.compositor);
                        self.account_fragment(&frag);
                        self.comm
                            .send(dst, self.tags.fragment, encode_fragment(rank, &frag))
                            .await;
                    }
                }
                // Composite the tile I own, if any. With m <= n the map
                // c -> c*n/m is injective, so a rank owns at most one tile.
                let my_tile = (0..self.m).find(|&c| self.compositor_rank(c) == rank);
                if let Some(c) = my_tile {
                    let expected = schedule
                        .messages
                        .iter()
                        .filter(|mm| mm.compositor == c)
                        .count();
                    let tile = partition.tile(c);
                    let mut frags: Vec<(usize, SubImage)> = Vec::with_capacity(expected);
                    while frags.len() < expected {
                        let (_, data) = self.comm.recv_any(self.tags.fragment).await;
                        let (renderer, frag) = decode_fragment(&data);
                        debug_assert_eq!(frag.rect.intersect(&tile), Some(frag.rect));
                        frags.push((renderer, frag));
                    }
                    let buf = blend_fragments(tile, frags);
                    self.tiles_direct.push((c, buf));
                }
            }
            LinkMode::Reliable(rc) => {
                let policy = rc.policy;
                let lp = policy.link_policy();
                let mut frag_out = OutBox::new(rank, self.tags.frag_ack, lp);
                let mut frag_in = InBox::new();
                self.rec_out = Some(OutBox::new(rank, self.tags.rec_ack, lp));
                self.rec_in = Some(InBox::new());
                // Send my fragments through the reliable link, quality
                // attached.
                for msg in schedule.messages.iter().filter(|mm| mm.renderer == rank) {
                    let tile = partition.tile(msg.compositor);
                    if let Some(frag) = sub.crop(&tile) {
                        let dst = self.compositor_rank(msg.compositor);
                        self.account_fragment(&frag);
                        let mut body = Vec::with_capacity(8 + 48 + frag.pixels.len() * 16);
                        body.extend(quality.to_le_bytes());
                        body.extend(encode_fragment(rank, &frag));
                        frag_out
                            .send(self.comm, dst, self.tags.fragment, body)
                            .await;
                    }
                }
                let my_tile = (0..self.m).find(|&c| self.compositor_rank(c) == rank);
                if let Some(c) = my_tile {
                    let expected: Vec<(usize, f64)> = schedule
                        .messages
                        .iter()
                        .filter(|mm| mm.compositor == c)
                        .map(|mm| (mm.renderer, mm.pixels as f64))
                        .collect();
                    let tile = partition.tile(c);
                    let mut asm = TileAssembly::new(c, tile, expected);
                    let deadline = self.comm.now() + policy.stage_deadline;
                    let suspect_at = self.comm.now() + policy.suspicion;
                    let mut requested: Vec<usize> = Vec::new();
                    while !asm.settled() && self.comm.now() < deadline {
                        frag_out.poll(self.comm).await;
                        if let Some(ro) = self.rec_out.as_mut() {
                            ro.poll(self.comm).await;
                        }
                        if let Some((src, frame)) = self
                            .comm
                            .recv_any_timeout(self.tags.fragment, policy.poll)
                            .await
                        {
                            if let Some(body) = frag_in
                                .accept(self.comm, src, self.tags.frag_ack, &frame)
                                .await
                            {
                                let q = f64::from_le_bytes(body[0..8].try_into().unwrap());
                                let (renderer, frag) = decode_fragment(&body[8..]);
                                asm.insert(renderer, q, frag);
                            }
                        }
                        self.pump_recovery(partition, Some(&mut asm)).await;
                        // Past the suspicion window every renderer still
                        // missing gets one adoption request — a hedge if
                        // it is merely straggling (first-wins dedup makes
                        // the race harmless), a heal if it is dead.
                        if self.comm.now() >= suspect_at {
                            for r in asm.missing() {
                                if !requested.contains(&r) {
                                    requested.push(r);
                                    self.request_adoption(r, c, partition, &mut asm).await;
                                }
                            }
                        }
                    }
                    let expected_area = asm.expected_area();
                    let arrived_area = asm.arrived_area();
                    // Canonical blend order keeps recovered runs
                    // bit-identical: a late-adopted fragment re-blends
                    // exactly as the original would have.
                    let buf = asm.seal().clone();
                    self.tile_reliable = Some((c, expected_area, arrived_area, buf));
                }
                self.frag_out = Some(frag_out);
                self.frag_in = Some(frag_in);
            }
        }
        ControlFlow::Continue(())
    }

    // --- Gather stage ----------------------------------------------

    async fn stage_gather(&mut self) -> ControlFlow<()> {
        let rank = self.comm.rank();
        let cfg = self.cfg;
        let shared = Arc::clone(&self.shared);
        let partition = shared.partition;
        match self.links {
            LinkMode::Direct => {
                // Ship finished tiles to rank 0.
                for (c, buf) in &self.tiles_direct {
                    self.comm
                        .send(0, self.tags.tile, encode_fragment(*c, buf))
                        .await;
                }
                if rank == 0 {
                    let mut img = Image::new(cfg.image.0, cfg.image.1);
                    for _ in 0..self.m {
                        let (_, data) = self.comm.recv_any(self.tags.tile).await;
                        let (_, tile_img) = decode_fragment(&data);
                        img.paste(&tile_img);
                    }
                    self.image = Some(img);
                }
                self.comm.span_end("composite");
                if self.barriers {
                    self.comm.barrier().await;
                }
            }
            LinkMode::Reliable(rc) => {
                let policy = rc.policy;
                let lp = policy.link_policy();
                let mut tile_out = OutBox::new(rank, self.tags.tile_ack, lp);
                let mut frag_out = self.frag_out.take().expect("composite stage ran");
                // Ship my finished tile to rank 0 over the reliable link.
                if let Some((c, expected_area, arrived_area, buf)) = &self.tile_reliable {
                    let mut body = Vec::with_capacity(24 + 48 + buf.pixels.len() * 16);
                    body.extend((*c as u64).to_le_bytes());
                    body.extend(expected_area.to_le_bytes());
                    body.extend(arrived_area.to_le_bytes());
                    body.extend(encode_fragment(*c, buf));
                    tile_out.send(self.comm, 0, self.tags.tile, body).await;
                }

                // Rank 0 gathers tiles until the deadline, serving
                // adoption on the side; a tile whose compositor died is
                // rebuilt locally from adopted re-renders rather than
                // written off.
                if rank == 0 {
                    let tile_sources: Vec<Vec<(usize, f64)>> = {
                        let schedule = &shared.schedule;
                        let mut v = vec![Vec::new(); self.m];
                        for msg in &schedule.messages {
                            v[msg.compositor].push((msg.renderer, msg.pixels as f64));
                        }
                        v
                    };
                    let expected_areas: Vec<f64> = tile_sources
                        .iter()
                        .map(|s| s.iter().map(|(_, px)| *px).sum())
                        .collect();
                    let mut tile_in = InBox::new();
                    let mut img = Image::new(cfg.image.0, cfg.image.1);
                    let mut got: Vec<Option<(f64, f64)>> = vec![None; self.m];
                    let mut received = 0usize;
                    let deadline = self.comm.now() + policy.stage_deadline;
                    // The local rebuild waits two suspicion windows: a
                    // missing tile's compositor may itself be mid-
                    // adoption, which needs one suspicion round plus a
                    // re-render to finish.
                    let rebuild_at = self.comm.now() + policy.suspicion * 2;
                    let mut rebuilt = false;
                    while received < self.m && self.comm.now() < deadline {
                        frag_out.poll(self.comm).await;
                        tile_out.poll(self.comm).await;
                        if let Some(ro) = self.rec_out.as_mut() {
                            ro.poll(self.comm).await;
                        }
                        if let Some((src, frame)) = self
                            .comm
                            .recv_any_timeout(self.tags.tile, policy.poll)
                            .await
                        {
                            if let Some(body) = tile_in
                                .accept(self.comm, src, self.tags.tile_ack, &frame)
                                .await
                            {
                                let c = u64::from_le_bytes(body[0..8].try_into().unwrap()) as usize;
                                let expected = f64::from_le_bytes(body[8..16].try_into().unwrap());
                                let arrived = f64::from_le_bytes(body[16..24].try_into().unwrap());
                                let (_, tile_img) = decode_fragment(&body[24..]);
                                // First-wins: a locally rebuilt tile is
                                // already pasted and bit-identical to the
                                // real one; a late real tile is dropped.
                                if got[c].is_none() {
                                    img.paste(&tile_img);
                                    got[c] = Some((expected, arrived));
                                    received += 1;
                                }
                            }
                        }
                        self.pump_recovery(partition, None).await;
                        if !rebuilt && self.comm.now() >= rebuild_at && received < self.m {
                            rebuilt = true;
                            for c in 0..self.m {
                                if got[c].is_some() || expected_areas[c] == 0.0 {
                                    continue;
                                }
                                let tile = partition.tile(c);
                                let mut asm = TileAssembly::new(c, tile, tile_sources[c].clone());
                                for (r, _) in &tile_sources[c] {
                                    let (sub, quality) = self.adopt_block(*r);
                                    match sub.and_then(|s| s.crop(&tile)) {
                                        Some(f) => {
                                            asm.insert(*r, quality, f);
                                        }
                                        None => asm.refuse(*r),
                                    }
                                }
                                let (ea, aa) = (asm.expected_area(), asm.arrived_area());
                                img.paste(asm.seal());
                                got[c] = Some((ea, aa));
                                received += 1;
                                self.counters.adopted_tiles += 1;
                                self.comm.mark_instant("recover.tile_rebuilt", c as u64);
                            }
                        }
                    }
                    let tiles = (0..self.m)
                        .map(|c| {
                            let (expected, arrived) = got[c].unwrap_or_else(|| {
                                if expected_areas[c] > 0.0 {
                                    self.counters.degraded_tiles += 1;
                                }
                                (expected_areas[c], 0.0)
                            });
                            TileCompleteness {
                                tile: c,
                                rect: Some(partition.tile(c)),
                                expected,
                                arrived,
                            }
                        })
                        .collect();
                    self.counters.merge(&tile_in.counters);
                    if self.counters.degraded_tiles > 0 {
                        self.comm
                            .mark_instant("composite.degraded_tiles", self.counters.degraded_tiles);
                    }
                    self.image = Some(img);
                    self.completeness = Some(CompletenessMap { tiles });
                    // Frame complete: release the lingering compositors.
                    let helpers: Vec<usize> = self
                        .adopter_candidates()
                        .into_iter()
                        .filter(|r| *r != 0)
                        .collect();
                    for h in helpers {
                        let rec_out = self.rec_out.as_mut().expect("recovery channel open");
                        rec_out.send(self.comm, h, self.tags.done, Vec::new()).await;
                    }
                } else if self.tile_reliable.is_some() {
                    // Lingering compositor: my tile is shipped, but
                    // another compositor may still need me to adopt an
                    // orphan. Keep serving the recovery channel until
                    // rank 0 declares the frame complete (or the stage
                    // deadline passes — rank 0 may itself be dead).
                    let deadline = self.comm.now() + policy.stage_deadline;
                    let mut done = false;
                    while !done && self.comm.now() < deadline {
                        frag_out.poll(self.comm).await;
                        tile_out.poll(self.comm).await;
                        if let Some(ro) = self.rec_out.as_mut() {
                            ro.poll(self.comm).await;
                        }
                        if let Some((src, frame)) = self
                            .comm
                            .recv_any_timeout(self.tags.done, policy.poll)
                            .await
                        {
                            let rec_in = self.rec_in.as_mut().expect("recovery channel open");
                            if rec_in
                                .accept(self.comm, src, self.tags.rec_ack, &frame)
                                .await
                                .is_some()
                            {
                                done = true;
                            }
                        }
                        self.pump_recovery(partition, None).await;
                    }
                }

                // Grace period: finish delivering whatever is still in
                // flight, then account the casualties.
                let drain_deadline = self.comm.now() + policy.drain;
                frag_out.drain(self.comm, drain_deadline).await;
                tile_out.drain(self.comm, drain_deadline).await;
                self.counters.merge(&frag_out.counters);
                if let Some(frag_in) = &self.frag_in {
                    self.counters.merge(&frag_in.counters);
                }
                self.counters.merge(&tile_out.counters);
                if let Some(mut ro) = self.rec_out.take() {
                    ro.drain(self.comm, drain_deadline).await;
                    self.counters.merge(&ro.counters);
                }
                if let Some(ri) = self.rec_in.take() {
                    self.counters.merge(&ri.counters);
                }
                self.timing.composite = self.sw.lap();
                self.comm.span_end("composite");
            }
        }
        ControlFlow::Continue(())
    }
}

impl StageExec for RankExec<'_> {
    type Out = RankOut;

    fn begin(&mut self) {
        self.sw = Stopwatch::start();
        self.t0 = Instant::now();
        self.comm.span_begin("frame");
    }

    async fn stage(&mut self, stage: StageId) -> ControlFlow<()> {
        match stage {
            StageId::Read => self.stage_read().await,
            StageId::Render => self.stage_render().await,
            StageId::Composite => self.stage_composite().await,
            StageId::Gather => self.stage_gather().await,
        }
    }

    fn finish(mut self) -> RankOut {
        if self.crashed {
            let mut out = RankOut::crashed(self.timing);
            out.counters.merge(&self.counters);
            out.render = self.rstats;
            if let Some(io) = &self.io {
                out.io_failover_bytes = io.failover_bytes;
                out.io_unrecovered_bytes = io.unrecovered_bytes;
            }
            return out;
        }
        if matches!(self.links, LinkMode::Direct) {
            self.comm.span_end("frame");
            self.timing.composite = self.sw.lap();
        } else {
            self.comm.span_end("frame");
        }
        self.timing.error_bound = self.error_bound;
        self.timing.wall = self.t0.elapsed().as_secs_f64();
        RankOut {
            image: self.image,
            completeness: self.completeness,
            timing: self.timing,
            render: self.rstats,
            sent_bytes: self.sent,
            sent_dense_bytes: self.sent_dense,
            sparse_messages: self.sparse_msgs,
            counters: self.counters,
            io_failover_bytes: self.io.as_ref().map_or(0, |io| io.failover_bytes),
            io_unrecovered_bytes: self.io.as_ref().map_or(0, |io| io.unrecovered_bytes),
        }
    }
}

// ---------------------------------------------------------------------
// The one driver
// ---------------------------------------------------------------------

/// Executor choice for [`drive_frame`].
pub enum ExecChoice<'a> {
    /// Data-parallel in one address space, optionally span-traced.
    Rayon { tracer: &'a Tracer },
    /// Message passing: one thread per rank, with the link mode
    /// selecting plain or fault-tolerant transport.
    Mpi {
        opts: pvr_mpisim::RunOptions,
        links: LinkMode,
    },
}

/// One frame, fully configured.
pub struct Driver<'a> {
    pub plan: FramePlan,
    pub exec: ExecChoice<'a>,
    /// Always-on flight recorder the frame's verdict, incidents, and
    /// anomaly dumps are mirrored onto. The disabled recorder costs
    /// nothing; callers that want dumps pass an enabled one and drain
    /// it with [`pvr_obs::FlightRecorder::take_dumps`].
    pub flight: pvr_obs::FlightRecorder,
}

/// Everything [`drive_frame`] produces.
pub struct DriveOutput {
    pub frame: FrameResult,
    /// Per-tile completeness (reliable links only).
    pub completeness: Option<CompletenessMap>,
    /// The message trace (message-passing executor with `opts.trace`).
    pub trace: Option<pvr_mpisim::trace::TraceLog>,
    /// Event-core scheduler counters (message-passing executor on the
    /// event backend; `None` on rayon and the thread oracle).
    pub sim: Option<pvr_mpisim::SimStats>,
}

/// Expected blended area per tile, derivable by any rank (and the
/// driver) from the configuration alone — fault-independent.
pub(crate) fn expected_tile_areas(cfg: &FrameConfig, n: usize, m: usize) -> Vec<f64> {
    let partition = ImagePartition::new(cfg.image.0, cfg.image.1, m);
    let camera = Camera::orthographic(cfg.grid, default_view(), cfg.image.0, cfg.image.1);
    let decomp = pvr_volume::BlockDecomposition::new(cfg.grid, n);
    let blocks = decomp.blocks();
    let footprints: Vec<pvr_render::image::PixelRect> = (0..n)
        .map(|r| {
            pvr_render::raycast::footprint(
                &camera,
                blocks[r].sub.offset,
                blocks[r].sub.end(),
                cfg.image,
            )
        })
        .collect();
    let schedule = build_schedule(&footprints, partition);
    let mut areas = vec![0.0f64; m];
    for msg in &schedule.messages {
        areas[msg.compositor] += msg.pixels as f64;
    }
    areas
}

/// Assemble one frame's driver-side result from the per-rank outputs.
/// `reliable` selects the fault-tolerant accounting (merged recovery
/// counters, completeness, rank-0-crash degradation). `plan_incidents`
/// are the caller's located fault-plan observations (crashes,
/// suspicious straggles); per-rank counter incidents (ladder
/// activations, I/O failovers) are derived here, and the frame's SLO
/// verdict is evaluated against the perfmodel budgets and recorded in
/// the returned timing.
pub(crate) fn assemble_frame(
    cfg: &FrameConfig,
    mut results: Vec<RankOut>,
    reliable: bool,
    plan_incidents: &[crate::slo::Incident],
) -> (
    FrameResult,
    Option<CompletenessMap>,
    Vec<crate::slo::Incident>,
) {
    let m = cfg.compositors();
    let n = cfg.nprocs;
    // Per-rank stage times and located incidents, before rank 0's
    // output is consumed: the SLO gate judges the slowest rank of each
    // stage, not just the root's stopwatch.
    let per_rank: Vec<[f64; 3]> = results
        .iter()
        .map(|r| [r.timing.io, r.timing.render, r.timing.composite])
        .collect();
    let mut incidents = plan_incidents.to_vec();
    for (rank, r) in results.iter().enumerate() {
        crate::slo::counter_incidents(rank, &r.counters, &mut incidents);
    }
    let mut render = pvr_render::raycast::RenderStats::default();
    for r in &results {
        render.merge(&r.render);
    }
    let sent_bytes: u64 = results.iter().map(|r| r.sent_bytes).sum();
    let sent_dense_bytes: u64 = results.iter().map(|r| r.sent_dense_bytes).sum();
    let sparse_messages: usize = results.iter().map(|r| r.sparse_messages).sum();
    let mut recovery = RecoveryCounters::default();
    let mut failover_bytes = 0u64;
    let mut unrecovered_bytes = 0u64;
    let mut error_bound = 0.0f64;
    for r in &results {
        recovery.merge(&r.counters);
        failover_bytes += r.io_failover_bytes;
        unrecovered_bytes += r.io_unrecovered_bytes;
        error_bound += r.timing.error_bound;
    }
    let root = results.remove(0);
    let mut timing = root.timing;
    timing.recovery = recovery;
    // Coarse-rung heals may double-count overlapping footprints; the
    // bound stays a bound when clamped to the whole image.
    timing.error_bound = error_bound.min(1.0);
    timing.slo = Some(crate::slo::annotate(
        cfg,
        &crate::slo::FrameSample {
            stage_secs: [timing.io, timing.render, timing.composite],
            per_rank: &per_rank,
            incidents: &incidents,
        },
    ));

    let (image, completeness) = if reliable {
        // A crashed rank 0 cannot deliver an image: the frame degrades
        // to an empty image with zero completeness on every populated
        // tile.
        match (root.image, root.completeness) {
            (Some(img), Some(map)) => (img, Some(map)),
            _ => {
                let partition = ImagePartition::new(cfg.image.0, cfg.image.1, m);
                let expected = expected_tile_areas(cfg, n, m);
                let tiles = (0..m)
                    .map(|c| TileCompleteness {
                        tile: c,
                        rect: Some(partition.tile(c)),
                        expected: expected[c],
                        arrived: 0.0,
                    })
                    .collect();
                (
                    Image::new(cfg.image.0, cfg.image.1),
                    Some(CompletenessMap { tiles }),
                )
            }
        }
    } else {
        (root.image.expect("rank 0 holds the image"), None)
    };

    let io = if reliable {
        IoRunStats {
            retries: recovery.io_retries,
            failover_bytes,
            unrecovered_bytes,
            ..IoRunStats::default()
        }
    } else {
        IoRunStats::default()
    };

    (
        FrameResult {
            image,
            timing,
            io,
            render_samples: render.samples,
            render_skipped: render.skipped_samples,
            render_packets: render.packets,
            render_eval_lanes: render.packet_eval_lanes,
            render_eval_slots: render.packet_eval_slots,
            render_terminated: render.terminated_rays,
            render_error_bound: render.error_bound as f64,
            composite: DirectSendStats {
                messages: 0,
                bytes: sent_bytes,
                dense_bytes: sent_dense_bytes,
                sparse_messages,
                per_compositor: Vec::new(),
            },
        },
        completeness,
        incidents,
    )
}

/// Run one frame: the single implementation behind every legacy entry
/// point. `path` is required by the message-passing executor; the rayon
/// executor synthesizes block data procedurally when it is `None`.
pub fn drive_frame(
    cfg: &FrameConfig,
    path: Option<&Path>,
    driver: Driver<'_>,
) -> Result<DriveOutput, FtError> {
    let flight = driver.flight;
    flight.begin_frame();
    match driver.exec {
        ExecChoice::Rayon { tracer } => {
            let input = match path {
                Some(p) => FrameInput::File(p),
                None => FrameInput::Synthetic,
            };
            let frame = pvr_mpisim::block_on_ready(execute(
                &driver.plan,
                RayonExec::new(cfg, input, tracer, None),
            ));
            if let Some(slo) = &frame.timing.slo {
                crate::slo::record_frame_flight(&flight, slo, &[], &frame.timing.recovery);
            }
            Ok(DriveOutput {
                frame,
                completeness: None,
                trace: None,
                sim: None,
            })
        }
        ExecChoice::Mpi { opts, links } => {
            let path = path
                .expect("message-passing executor needs a dataset file")
                .to_path_buf();
            let cfg = *cfg;
            let n = cfg.nprocs;
            let reliable = matches!(links, LinkMode::Reliable(_));
            // Located incidents from the injected plan: a crash or
            // suspicious straggle attributes to its injection site
            // even when hedging kept the frame fast.
            let plan_incidents = match &links {
                LinkMode::Reliable(rc) => {
                    crate::slo::incidents_from_plan(n, &rc.plan, rc.policy.suspicion)
                }
                LinkMode::Direct => Vec::new(),
            };
            let opts = if let LinkMode::Reliable(rc) = &links {
                opts.with_injector(PlanInjector::arc(rc.plan.clone()))
            } else {
                opts
            };
            let plan = driver.plan;
            // Frame invariants computed once, shared by all n ranks:
            // without this each rank re-derives O(n) geometry/schedule
            // state and the world is O(n²) — fatal at 32K ranks.
            let shared = Arc::new(FrameShared::new(&cfg));
            let cfg_ref = &cfg;
            let path_ref = &path;
            let links_ref = &links;
            let plan_ref = &plan;
            let shared_ref = &shared;
            let out = pvr_mpisim::World::run_opts(n, opts, move |mut comm| async move {
                let exec = RankExec::new(
                    &mut comm,
                    cfg_ref,
                    path_ref,
                    links_ref,
                    FrameTags::for_frame(0),
                    !reliable,
                    None,
                    None,
                    Arc::clone(shared_ref),
                );
                execute(plan_ref, exec).await
            })
            .map_err(FtError::Runtime)?;
            let (mut frame, completeness, incidents) =
                assemble_frame(&cfg, out.results, reliable, &plan_incidents);
            if let (Some(slo), Some(trace)) = (&mut frame.timing.slo, &out.trace) {
                crate::slo::refine_summary_with_trace(slo, trace);
            }
            if let Some(slo) = &frame.timing.slo {
                crate::slo::record_frame_flight(&flight, slo, &incidents, &frame.timing.recovery);
            }
            Ok(DriveOutput {
                frame,
                completeness,
                trace: out.trace,
                sim: out.sim,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_plan_is_valid_and_orders_stages() {
        let p = FramePlan::standard();
        assert_eq!(
            p.stages(),
            &[
                StageId::Read,
                StageId::Render,
                StageId::Composite,
                StageId::Gather
            ]
        );
        assert_eq!(FramePlan::new(p.stages().to_vec()), Ok(p));
    }

    #[test]
    fn plan_validation_rejects_bad_orders() {
        assert_eq!(
            FramePlan::new(vec![
                StageId::Render,
                StageId::Read,
                StageId::Composite,
                StageId::Gather
            ]),
            Err(PlanError::DependencyOrder {
                stage: StageId::Render,
                needs: StageId::Read
            })
        );
        assert_eq!(
            FramePlan::new(vec![StageId::Read, StageId::Read]),
            Err(PlanError::Duplicate(StageId::Read))
        );
        assert_eq!(
            FramePlan::new(vec![StageId::Read, StageId::Render, StageId::Composite]),
            Err(PlanError::Missing(StageId::Gather))
        );
    }

    #[test]
    fn frame_zero_tags_equal_the_legacy_constants() {
        let t = FrameTags::for_frame(0);
        assert_eq!(t.io_scatter, tags::IO_SCATTER);
        assert_eq!(t.fragment, tags::FRAGMENT);
        assert_eq!(t.tile, tags::TILE);
        assert_eq!(t.io_ack, tags::IO_ACK);
        assert_eq!(t.frag_ack, tags::FRAG_ACK);
        assert_eq!(t.tile_ack, tags::TILE_ACK);
    }

    #[test]
    fn tag_epochs_are_disjoint_and_invertible() {
        let mut seen = std::collections::HashSet::new();
        for frame in 0..32 {
            let t = FrameTags::for_frame(frame);
            for tag in [
                t.io_scatter,
                t.fragment,
                t.tile,
                t.io_ack,
                t.frag_ack,
                t.tile_ack,
                t.adopt,
                t.late,
                t.rec_ack,
                t.done,
            ] {
                assert!(seen.insert(tag), "tag {tag} collides across frames");
                assert_eq!(FrameTags::frame_of(tag), frame);
            }
            assert_eq!(FrameTags::base_of(t.fragment), tags::FRAGMENT);
        }
        let table = FrameTags::table(4);
        assert_eq!(table.len(), 40);
        assert!(table.iter().any(|(_, n)| n == "frame3/tile"));
    }

    #[test]
    fn epoch_tags_name_back_to_pipeline_stages() {
        let t = FrameTags::for_frame(2);
        assert_eq!(FrameTags::name_of(t.fragment).unwrap(), "frame2/fragment");
        assert_eq!(FrameTags::name_of(t.tile_ack).unwrap(), "frame2/tile-ack");
        assert_eq!(
            FrameTags::name_of(tags::IO_SCATTER).unwrap(),
            "frame0/io-scatter"
        );
        assert_eq!(FrameTags::name_of(0), None);
        assert_eq!(FrameTags::name_of(t.adopt).unwrap(), "frame2/adopt");
        assert_eq!(FrameTags::name_of(t.done).unwrap(), "frame2/done");
        // 11..=16 are unassigned slots of epoch 0.
        assert_eq!(FrameTags::name_of(11), None);

        let streams = t.wildcard_streams();
        assert_eq!(streams.len(), 3);
        assert!(streams.iter().all(|(tag, _)| {
            let b = FrameTags::base_of(*tag);
            b == tags::IO_SCATTER || b == tags::FRAGMENT || b == tags::TILE
        }));
    }

    #[test]
    fn fault_stage_mapping_preserves_plan_indices() {
        assert_eq!(StageId::Read.fault_stage(), Some(Stage::Io));
        assert_eq!(StageId::Render.fault_stage(), Some(Stage::Render));
        assert_eq!(StageId::Composite.fault_stage(), Some(Stage::Composite));
        assert_eq!(StageId::Gather.fault_stage(), None);
    }
}
