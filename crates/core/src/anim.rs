//! Time-step animation: many frames through the one scheduler, with
//! optional double-buffered I/O prefetch.
//!
//! The paper's end-to-end data (Table II) shows I/O dominating the
//! frame at scale — ≥95% of the time the science consumer actually
//! waits. Its future-work section points at overlapping time steps:
//! while frame `t` renders and composites, frame `t+1`'s subvolumes can
//! already be streaming off the parallel file system. [`run_animation`]
//! does exactly that, on both executors, reusing the stage graph of
//! [`crate::scheduler::drive_frame`] unchanged:
//!
//! * **rayon** — one background [`Prefetch`] thread reads the next
//!   time step's file through the same two-phase plan
//!   ([`read_frame_bytes`]) while the current frame runs; the frame
//!   then starts from [`FrameInput::Prefetched`] bytes.
//! * **message passing** — *one* `pvr-mpisim` world spans the whole
//!   animation. Each rank walks the frames in order; message tags move
//!   up one [`crate::scheduler::EPOCH_STRIDE`] epoch per time step
//!   ([`FrameTags`]), so in-flight traffic of adjacent frames can never
//!   collide. The [`execute_with`] after-`Read` hook launches the next
//!   frame's window prefetch ([`read_extents`] over
//!   [`RankExec::my_window_extents`]) the moment the current read hands
//!   off — file reads only, no communication, so the protocol is
//!   untouched.
//!
//! Memory stays bounded: at most one prefetch is in flight per rank, so
//! the animation holds at most **2×** one time step's subvolumes (the
//! live frame plus the next frame's buffers).
//!
//! Fault plans compose per frame ([`AnimFaults`]): an [`EpochInjector`]
//! routes each epoch's traffic to that frame's own `PlanInjector`, so a
//! crash while frame `t+1` is already prefetched degrades frame `t`
//! only — the prefetched bytes belong to a healthy later epoch.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use pvr_compositing::completeness::CompletenessMap;
use pvr_faults::{FaultPlan, PlanInjector, RecoveryPolicy};
use pvr_mpisim::fault::{FaultInjector, SendFate};
use pvr_obs::{Args, Tracer};
use pvr_pfs::{read_extents, IoThrottle, Prefetch, StripedStore};

use crate::config::FrameConfig;
use crate::ft::FtError;
use crate::pipeline::{read_frame_bytes, write_dataset, FrameResult};
use crate::scheduler::{
    assemble_frame, execute, execute_with, FrameInput, FramePlan, FrameTags, LinkMode,
    PrefetchedWindows, RankExec, RankOut, RayonExec, StageId,
};

/// Which executor runs the animation.
#[derive(Clone)]
pub enum AnimExecutor {
    /// Data-parallel in one address space (optionally span-traced).
    Rayon,
    /// One message-passing world across all frames, with per-frame tag
    /// epochs.
    Mpi(pvr_mpisim::RunOptions),
}

/// Per-frame fault configuration for the message-passing executor.
/// Frame `t` runs under `plans[t]`; missing entries mean a healthy
/// frame. All frames share one recovery policy and storage model.
#[derive(Debug, Clone)]
pub struct AnimFaults {
    pub plans: Vec<FaultPlan>,
    pub policy: RecoveryPolicy,
    pub store: StripedStore,
}

/// How to run an animation. Build with [`AnimOptions::rayon`] or
/// [`AnimOptions::mpi`] and chain the modifiers.
#[derive(Clone)]
pub struct AnimOptions {
    /// Prefetch frame `t+1`'s bytes while frame `t` renders and
    /// composites. Off = strictly sequential frames (the baseline the
    /// `anim_pipeline` bench compares against).
    pub pipelined: bool,
    pub executor: AnimExecutor,
    /// Bandwidth floor applied to every dataset read, live or
    /// prefetched — models the slow store that makes I/O worth hiding.
    pub throttle: Option<IoThrottle>,
    /// Per-frame fault plans (message-passing executor only; frames
    /// run the fault-tolerant link protocol when set).
    pub faults: Option<AnimFaults>,
    /// Wall-clock span tracer (rayon executor only): frame spans per
    /// rank track, prefetch reads on their own track.
    pub tracer: Tracer,
    /// Always-on flight recorder: each frame's SLO verdict, incidents,
    /// and anomaly dumps are mirrored onto it (both executors). The
    /// default disabled recorder costs nothing.
    pub flight: pvr_obs::FlightRecorder,
    /// Worker threads for the in-frame stages (decode, render,
    /// composite) on the rayon executor; `0` means one per available
    /// core. Separate from [`AnimOptions::prefetch_threads`] so the
    /// background read can never steal render cores mid-frame (and
    /// vice versa).
    pub render_threads: usize,
    /// Worker threads available to the background prefetch read on the
    /// rayon executor; `0` means one per available core.
    pub prefetch_threads: usize,
}

impl AnimOptions {
    /// Pipelined rayon animation, untraced, unthrottled.
    pub fn rayon() -> AnimOptions {
        AnimOptions {
            pipelined: true,
            executor: AnimExecutor::Rayon,
            throttle: None,
            faults: None,
            tracer: Tracer::disabled(),
            flight: pvr_obs::FlightRecorder::disabled(),
            render_threads: 0,
            prefetch_threads: 0,
        }
    }

    /// Pipelined message-passing animation with default run options.
    pub fn mpi() -> AnimOptions {
        AnimOptions {
            executor: AnimExecutor::Mpi(pvr_mpisim::RunOptions::default()),
            ..AnimOptions::rayon()
        }
    }

    /// Disable prefetching: frames run strictly back to back.
    pub fn sequential(mut self) -> AnimOptions {
        self.pipelined = false;
        self
    }

    /// Floor every read at `bytes_per_sec`.
    pub fn throttled(mut self, bytes_per_sec: f64) -> AnimOptions {
        self.throttle = Some(IoThrottle::new(bytes_per_sec));
        self
    }

    /// Run the fault-tolerant protocol with per-frame plans.
    pub fn with_faults(mut self, faults: AnimFaults) -> AnimOptions {
        self.faults = Some(faults);
        self
    }

    /// Trace the rayon executor's spans.
    pub fn traced(mut self, tracer: &Tracer) -> AnimOptions {
        self.tracer = tracer.clone();
        self
    }

    /// Mirror per-frame verdicts and anomaly dumps onto `flight`.
    pub fn with_flight(mut self, flight: &pvr_obs::FlightRecorder) -> AnimOptions {
        self.flight = flight.clone();
        self
    }

    /// Give the frame stages and the background prefetch their own
    /// worker-thread budgets (`0` = one per available core). Pool
    /// placement changes wall clock only, never pixels — the pool-split
    /// animation test pins bit-identity against the default pools.
    pub fn pools(mut self, render: usize, prefetch: usize) -> AnimOptions {
        self.render_threads = render;
        self.prefetch_threads = prefetch;
        self
    }
}

/// One finished time step.
#[derive(Debug)]
pub struct AnimFrame {
    pub result: FrameResult,
    /// Per-tile completeness (fault-tolerant runs only).
    pub completeness: Option<CompletenessMap>,
}

/// A finished animation.
#[derive(Debug)]
pub struct AnimResult {
    pub frames: Vec<AnimFrame>,
    /// True wall-clock seconds for the whole animation.
    pub wall: f64,
}

impl AnimResult {
    /// Sum of per-stage busy time across frames — what a strictly
    /// sequential animation's wall clock would be.
    pub fn stage_sum(&self) -> f64 {
        self.frames.iter().map(|f| f.result.timing.total()).sum()
    }

    /// Summed I/O stage time across frames (includes prefetch reads,
    /// charged to the frame they fetched).
    pub fn io_sum(&self) -> f64 {
        self.frames.iter().map(|f| f.result.timing.io).sum()
    }

    /// Frames per second of actual wall clock.
    pub fn fps(&self) -> f64 {
        self.frames.len() as f64 / self.wall.max(1e-12)
    }

    /// Fraction of the summed I/O stage time that never showed up in
    /// the animation's wall clock — hidden under other frames' render
    /// and composite work. 0 for sequential runs (up to timer noise),
    /// approaching 1 when compute fully covers the reads.
    pub fn io_hidden_fraction(&self) -> f64 {
        let io = self.io_sum();
        if io <= 0.0 {
            return 0.0;
        }
        let non_io: f64 = self
            .frames
            .iter()
            .map(|f| f.result.timing.total() - f.result.timing.io)
            .sum();
        let visible_io = (self.wall - non_io).clamp(0.0, io);
        1.0 - visible_io / io
    }
}

/// Write `nframes` time steps of the synthetic dataset to `dir`, one
/// file per step (`step0000.dat`, …), advancing the field's seed per
/// step so the frames genuinely differ.
pub fn write_animation(
    dir: &Path,
    cfg: &FrameConfig,
    nframes: usize,
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(nframes);
    for t in 0..nframes {
        let mut step = *cfg;
        step.seed = cfg.seed.wrapping_add(t as u64);
        let p = dir.join(format!("step{t:04}.dat"));
        write_dataset(&p, &step)?;
        paths.push(p);
    }
    Ok(paths)
}

/// Render an animation: one frame per path, in order, bit-identical to
/// running [`crate::pipeline::run_frame`] (or the mpi/ft variants) on
/// each file independently — the animation tests pin this. Pipelining
/// changes wall clock, never pixels.
pub fn run_animation(
    cfg: &FrameConfig,
    paths: &[PathBuf],
    opts: &AnimOptions,
) -> Result<AnimResult, FtError> {
    assert!(!paths.is_empty(), "animation needs at least one frame");
    match &opts.executor {
        AnimExecutor::Rayon => {
            assert!(
                opts.faults.is_none(),
                "fault plans need the message-passing executor"
            );
            Ok(run_rayon(cfg, paths, opts))
        }
        AnimExecutor::Mpi(run_opts) => run_mpi(cfg, paths, opts, run_opts.clone()),
    }
}

fn run_rayon(cfg: &FrameConfig, paths: &[PathBuf], opts: &AnimOptions) -> AnimResult {
    let plan = FramePlan::standard();
    let tracer = &opts.tracer;
    let mut frames = Vec::with_capacity(paths.len());
    let t0 = Instant::now();

    // Two pools: in-frame stages draw from `render_pool`, background
    // reads from `prefetch_pool` (installed inside the prefetch thread,
    // where the read actually runs). With both at 0 the split is a
    // no-op; with explicit budgets the two subsystems stop competing
    // for the same cores.
    let render_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(opts.render_threads)
        .thread_name(|i| format!("pvr-render-{i}"))
        .build()
        .expect("render pool");
    let prefetch_pool = Arc::new(
        rayon::ThreadPoolBuilder::new()
            .num_threads(opts.prefetch_threads)
            .thread_name(|i| format!("pvr-prefetch-{i}"))
            .build()
            .expect("prefetch pool"),
    );

    // RayonExec::finish annotates the SLO verdict; the animation loop
    // only mirrors it onto the flight recorder, one frame per tick.
    let record = |result: &FrameResult| {
        opts.flight.begin_frame();
        if let Some(slo) = &result.timing.slo {
            crate::slo::record_frame_flight(&opts.flight, slo, &[], &result.timing.recovery);
        }
    };

    if !opts.pipelined {
        for p in paths {
            let exec = RayonExec::new(cfg, FrameInput::File(p), tracer, opts.throttle);
            let result = render_pool.install(|| pvr_mpisim::block_on_ready(execute(&plan, exec)));
            record(&result);
            frames.push(AnimFrame {
                result,
                completeness: None,
            });
        }
        return AnimResult {
            frames,
            wall: t0.elapsed().as_secs_f64(),
        };
    }

    // The prefetch thread gets its own trace track, one past the rank
    // tracks, so the overlap is visible in the Perfetto timeline.
    let pf_track = cfg.nprocs as u32;
    if tracer.enabled() {
        tracer.name_track(pf_track, "prefetch");
    }
    let spawn = |t: usize| {
        let cfg = *cfg;
        let path = paths[t].clone();
        let throttle = opts.throttle;
        let tracer = tracer.clone();
        let pool = Arc::clone(&prefetch_pool);
        Prefetch::spawn(move || {
            let started = Instant::now();
            tracer.begin_args(pf_track, "io.read", Args::one("frame", t as u64));
            let out = pool.install(|| read_frame_bytes(&cfg, &path, throttle));
            tracer.end(pf_track, "io.read");
            out.map(|(bytes, io)| (bytes, io, started.elapsed().as_secs_f64()))
        })
    };

    let mut pending = Some(spawn(0));
    for t in 0..paths.len() {
        let (bytes, io, io_secs) = pending
            .take()
            .expect("one prefetch is always in flight")
            .join()
            .expect("animation frame read failed");
        // Launch t+1's read before touching frame t: the whole frame
        // (decode, render, composite) overlaps the next read.
        if t + 1 < paths.len() {
            pending = Some(spawn(t + 1));
        }
        let input = FrameInput::Prefetched { bytes, io, io_secs };
        let exec = RayonExec::new(cfg, input, tracer, None);
        let result = render_pool.install(|| pvr_mpisim::block_on_ready(execute(&plan, exec)));
        record(&result);
        frames.push(AnimFrame {
            result,
            completeness: None,
        });
    }
    AnimResult {
        frames,
        wall: t0.elapsed().as_secs_f64(),
    }
}

/// Routes each tag epoch's traffic to that frame's own plan injector,
/// so one long-lived world runs per-frame fault plans. Tags outside
/// every configured epoch (later healthy frames) are delivered as-is.
struct EpochInjector {
    frames: Vec<PlanInjector>,
}

impl FaultInjector for EpochInjector {
    fn on_send(&self, src: usize, dst: usize, tag: u32, seq: u64, data: &mut Vec<u8>) -> SendFate {
        if tag == 0 {
            return SendFate::Deliver;
        }
        match self.frames.get(FrameTags::frame_of(tag)) {
            Some(inj) => inj.on_send(src, dst, FrameTags::base_of(tag), seq, data),
            None => SendFate::Deliver,
        }
    }
}

fn run_mpi(
    cfg: &FrameConfig,
    paths: &[PathBuf],
    opts: &AnimOptions,
    run_opts: pvr_mpisim::RunOptions,
) -> Result<AnimResult, FtError> {
    let nf = paths.len();
    let reliable = opts.faults.is_some();

    // One link mode per frame, fault state derived up front.
    let links: Vec<LinkMode> = match &opts.faults {
        None => (0..nf).map(|_| LinkMode::Direct).collect(),
        Some(f) => (0..nf)
            .map(|t| {
                let plan = f.plans.get(t).cloned().unwrap_or_else(FaultPlan::none);
                LinkMode::reliable(plan, f.policy, f.store)
            })
            .collect(),
    };
    let run_opts = match &opts.faults {
        Some(f) => run_opts.with_injector(Arc::new(EpochInjector {
            frames: f.plans.iter().cloned().map(PlanInjector::new).collect(),
        })),
        None => run_opts,
    };
    // Per-frame located incidents from the injected plans, extracted
    // before the link modes move into the world closure.
    let frame_incidents: Vec<Vec<crate::slo::Incident>> = links
        .iter()
        .map(|l| match l {
            LinkMode::Reliable(rc) => {
                crate::slo::incidents_from_plan(cfg.nprocs, &rc.plan, rc.policy.suspicion)
            }
            LinkMode::Direct => Vec::new(),
        })
        .collect();

    let cfg = *cfg;
    let paths = paths.to_vec();
    let plan = FramePlan::standard();
    let pipelined = opts.pipelined;
    let throttle = opts.throttle;
    let t0 = Instant::now();

    // Frame invariants (geometry, scatter plan, schedule) computed once
    // and shared by every rank across every frame of the animation.
    let shared = Arc::new(crate::scheduler::FrameShared::new(&cfg));
    let cfg_ref = &cfg;
    let paths_ref = &paths;
    let links_ref = &links;
    let plan_ref = &plan;
    let shared_ref = &shared;
    let out = pvr_mpisim::World::run_opts(cfg.nprocs, run_opts, move |mut comm| async move {
        let mut outs = Vec::with_capacity(nf);
        // This rank's one in-flight background read: the next frame's
        // window extents (the scatter geometry is frame-invariant).
        let mut pending: Option<Prefetch<(Vec<Vec<u8>>, f64)>> = None;
        for t in 0..nf {
            let windows = pending
                .take()
                .and_then(|pf| pf.join().ok())
                .map(|(bufs, io_secs)| PrefetchedWindows { bufs, io_secs });
            let exec = RankExec::new(
                &mut comm,
                cfg_ref,
                &paths_ref[t],
                &links_ref[t],
                FrameTags::for_frame(t),
                !reliable,
                throttle,
                windows,
                Arc::clone(shared_ref),
            );
            let rank_out = execute_with(plan_ref, exec, |e, s| {
                if pipelined && s == StageId::Read && t + 1 < nf {
                    let extents = e.my_window_extents().to_vec();
                    if !extents.is_empty() {
                        let path = paths_ref[t + 1].clone();
                        pending = Some(Prefetch::spawn(move || {
                            let started = Instant::now();
                            let bufs = read_extents(&path, &extents, throttle)?;
                            Ok((bufs, started.elapsed().as_secs_f64()))
                        }));
                    }
                }
            })
            .await;
            // A crashed rank skips its remaining stages (and never
            // spawns a prefetch), then rejoins at the next epoch's
            // tags with a live read — only its own frame degrades.
            outs.push(rank_out);
            // Reliable frames have no in-frame barriers (a crashed
            // rank might miss one), but between frames every rank —
            // crashed or not — reaches this point, so a resync here is
            // safe. Without it a crashed rank races ahead while its
            // peers wait out frame `t`'s deadlines, and the skew eats
            // into frame `t+1`'s deadline budget.
            if reliable && t + 1 < nf {
                comm.barrier().await;
            }
        }
        outs
    })
    .map_err(FtError::Runtime)?;

    // Transpose [rank][frame] → per-frame columns and assemble each
    // frame exactly as the single-frame driver would.
    let mut per_rank: Vec<_> = out.results.into_iter().map(Vec::into_iter).collect();
    let mut frames = Vec::with_capacity(nf);
    for plan_incidents in frame_incidents.iter().take(nf) {
        let col: Vec<RankOut> = per_rank
            .iter_mut()
            .map(|it| it.next().expect("every rank runs every frame"))
            .collect();
        let (result, completeness, incidents) = assemble_frame(&cfg, col, reliable, plan_incidents);
        opts.flight.begin_frame();
        if let Some(slo) = &result.timing.slo {
            crate::slo::record_frame_flight(&opts.flight, slo, &incidents, &result.timing.recovery);
        }
        frames.push(AnimFrame {
            result,
            completeness: if reliable { completeness } else { None },
        });
    }
    Ok(AnimResult {
        frames,
        wall: t0.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pvr-anim-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn write_animation_advances_the_seed_per_step() {
        let cfg = FrameConfig::small(8, 16, 4);
        let dir = tmp_dir("seeds");
        let paths = write_animation(&dir, &cfg, 3).unwrap();
        assert_eq!(paths.len(), 3);
        let a = std::fs::read(&paths[0]).unwrap();
        let b = std::fs::read(&paths[1]).unwrap();
        assert_eq!(a.len(), b.len());
        assert_ne!(a, b, "consecutive steps must differ");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rayon_pipelined_matches_sequential_bit_for_bit() {
        let cfg = FrameConfig::small(12, 24, 4);
        let dir = tmp_dir("rayon-id");
        let paths = write_animation(&dir, &cfg, 3).unwrap();
        let seq = run_animation(&cfg, &paths, &AnimOptions::rayon().sequential()).unwrap();
        let pipe = run_animation(&cfg, &paths, &AnimOptions::rayon()).unwrap();
        assert_eq!(seq.frames.len(), 3);
        for (s, p) in seq.frames.iter().zip(&pipe.frames) {
            assert_eq!(s.result.image.pixels(), p.result.image.pixels());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mpi_animation_heals_a_mid_run_crash_bit_identically() {
        use crate::config::CompositorPolicy;
        use crate::ft::laptop_store;
        use pvr_faults::{RankAction, RankFault, Stage};

        let mut cfg = FrameConfig::small(16, 24, 8);
        cfg.variable = 2;
        cfg.policy = CompositorPolicy::Fixed(4);
        let dir = tmp_dir("heal");
        let paths = write_animation(&dir, &cfg, 3).unwrap();
        let plain = run_animation(&cfg, &paths, &AnimOptions::mpi()).unwrap();

        // Rank 5 dies permanently during frame 1's composite stage; the
        // orchestrator adopts its block and the animation carries on.
        let crash = FaultPlan {
            seed: 9,
            ranks: vec![RankFault {
                rank: 5,
                stage: Stage::Composite,
                action: RankAction::Crash,
            }],
            ..FaultPlan::default()
        };
        let faults = AnimFaults {
            plans: vec![FaultPlan::none(), crash, FaultPlan::none()],
            policy: RecoveryPolicy::fast_test(),
            store: laptop_store(),
        };
        let healed = run_animation(&cfg, &paths, &AnimOptions::mpi().with_faults(faults)).unwrap();

        assert_eq!(healed.frames.len(), 3);
        for (t, (s, h)) in plain.frames.iter().zip(&healed.frames).enumerate() {
            assert_eq!(
                s.result.image.pixels(),
                h.result.image.pixels(),
                "frame {t} must heal without a pixel trace"
            );
            let c = h
                .completeness
                .as_ref()
                .expect("ft runs report completeness");
            assert!(c.fully_complete(), "frame {t} completeness");
        }
        let rec = healed.frames[1].result.timing.recovery;
        assert_eq!(rec.crashed_ranks, 1);
        assert!(rec.adopted_blocks >= 1, "frame 1 healed via adoption");
        assert_eq!(healed.frames[0].result.timing.recovery.crashed_ranks, 0);
        assert_eq!(healed.frames[2].result.timing.recovery.crashed_ranks, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn split_pools_are_bit_identical_to_shared_pools() {
        let cfg = FrameConfig::small(12, 24, 4);
        let dir = tmp_dir("pools");
        let paths = write_animation(&dir, &cfg, 2).unwrap();
        let shared = run_animation(&cfg, &paths, &AnimOptions::rayon()).unwrap();
        // Tiny asymmetric budgets force both install paths (render
        // inline on the caller, prefetch capped at 2).
        let split = run_animation(&cfg, &paths, &AnimOptions::rayon().pools(1, 2)).unwrap();
        for (s, p) in shared.frames.iter().zip(&split.frames) {
            assert_eq!(s.result.image.pixels(), p.result.image.pixels());
            assert_eq!(s.result.render_samples, p.result.render_samples);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn io_hidden_fraction_is_zero_without_io() {
        let r = AnimResult {
            frames: Vec::new(),
            wall: 1.0,
        };
        assert_eq!(r.io_hidden_fraction(), 0.0);
    }
}
