//! Frame SLO budgets and the executor-side glue around
//! [`pvr_obs::slo`].
//!
//! The pure verdict machinery (measured vs budget, incident
//! precedence, attribution) lives in `pvr-obs`; this module supplies
//! everything that needs the pipeline's own types:
//!
//! * [`stage_budgets`] derives per-stage budgets from the same
//!   calibrated perf-model predictions that already size the recovery
//!   deadlines ([`crate::recovery::effective_policy`]): the modeled
//!   I/O, render, and composite seconds times a headroom factor, with
//!   a floor so laptop-scale frames are judged against sane
//!   sub-second budgets, and a [`FrameConfig::stage_deadline_ms`]
//!   override winning outright.
//! * [`incidents_from_plan`] / [`counter_incidents`] convert fault
//!   plans and recovery counters into located [`Incident`]s, so a
//!   crash or hedged straggler attributes to its injection site even
//!   when recovery kept the wall clock fast.
//! * [`record_frame_flight`] mirrors the verdict and incidents onto
//!   the always-on [`FlightRecorder`] and fires the anomaly dump on a
//!   violation, fault, or degradation-ladder activation. Only
//!   deterministic values (ranks, stages, counts — never wall
//!   seconds) ride the flight args, so manual-clock dumps are
//!   byte-stable for golden tests.

use std::time::Duration;

use pvr_faults::{FaultPlan, RankAction, RecoveryCounters, Stage};
use pvr_obs::flight::FlightRecorder;
use pvr_obs::slo::SloInput;
pub use pvr_obs::slo::{
    evaluate, Cause, FrameSlo, Incident, IncidentKind, SloReport, Verdict, STAGE_NAMES,
};
use pvr_obs::Args;

use crate::config::FrameConfig;
use crate::perfmodel::PerfModel;

/// Nominal staging bandwidth for the I/O budget term (bytes/s) — the
/// same scale constant the recovery deadline derivation uses.
const NOMINAL_IO_BW: f64 = 1.0e9;

/// How budgets are derived from the perf model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Multiplier between a predicted stage time and the budget that
    /// declares it violated (matches the recovery deadline headroom).
    pub headroom: f64,
    /// Per-stage budget floor in seconds, plan order. Laptop-scale
    /// frames predict microsecond stages; judging them against a
    /// floor keeps scheduler noise from reading as violations.
    pub floor: [f64; 3],
    /// Fraction of a budget past which a stage is
    /// [`Verdict::AtRisk`].
    pub at_risk_frac: f64,
}

impl Default for SloPolicy {
    fn default() -> SloPolicy {
        SloPolicy {
            headroom: 3.0,
            floor: [0.25; 3],
            at_risk_frac: 0.8,
        }
    }
}

/// Per-stage budgets in seconds, plan order. Derived from the
/// calibrated perf model exactly like the recovery deadlines: modeled
/// stage seconds × headroom, floored per stage; a
/// [`FrameConfig::stage_deadline_ms`] override wins outright.
pub fn stage_budgets(cfg: &FrameConfig, policy: &SloPolicy) -> [f64; 3] {
    if let Some(ms) = cfg.stage_deadline_ms {
        return [ms as f64 / 1e3; 3];
    }
    let model = PerfModel::default();
    let io_est = cfg.variable_bytes() as f64 / NOMINAL_IO_BW;
    let (render_est, _) = model.simulate_render(cfg);
    let comp_est = model
        .simulate_composite(cfg, &model.schedule_for(cfg))
        .seconds;
    let mut budgets = [io_est, render_est, comp_est];
    for (b, floor) in budgets.iter_mut().zip(policy.floor) {
        *b = (*b * policy.headroom).max(floor);
    }
    budgets
}

/// One frame's measurements, as an executor hands them over.
#[derive(Debug, Clone, Copy)]
pub struct FrameSample<'a> {
    /// Frame-level stage seconds (the root rank's stopwatch).
    pub stage_secs: [f64; 3],
    /// Per-rank per-stage seconds; empty when the executor has no
    /// per-rank decomposition (the plain rayon path).
    pub per_rank: &'a [[f64; 3]],
    pub incidents: &'a [Incident],
}

/// Evaluate one frame against its derived budgets.
pub fn evaluate_frame(cfg: &FrameConfig, policy: &SloPolicy, sample: &FrameSample) -> SloReport {
    evaluate(&SloInput {
        budgets: stage_budgets(cfg, policy),
        at_risk_frac: policy.at_risk_frac,
        stage_secs: sample.stage_secs,
        per_rank: sample.per_rank,
        incidents: sample.incidents,
    })
}

/// [`evaluate_frame`] under the default policy, reduced to the compact
/// summary the executors embed in [`crate::timing::FrameTiming`].
pub fn annotate(cfg: &FrameConfig, sample: &FrameSample) -> FrameSlo {
    evaluate_frame(cfg, &SloPolicy::default(), sample).summary()
}

/// Fill the attributed rank from a message trace's happens-before
/// critical path when time/incident evidence could not name one.
pub fn refine_summary_with_trace(slo: &mut FrameSlo, trace: &pvr_mpisim::trace::TraceLog) {
    if slo.verdict != Verdict::Ok && slo.rank.is_none() {
        slo.rank = pvr_obs::critical_path(trace)
            .dominant_rank()
            .map(|(r, _)| r);
    }
}

/// Located incidents from an injected fault plan: every planned crash,
/// and every planned straggle long enough to trip the suspicion
/// window. Sub-suspicion straggles are left to the per-rank stage
/// times (on the message-passing executor the sleep is real and shows
/// up there).
pub fn incidents_from_plan(n: usize, plan: &FaultPlan, suspicion: Duration) -> Vec<Incident> {
    let mut out = Vec::new();
    for rank in 0..n {
        for stage in [Stage::Io, Stage::Render, Stage::Composite] {
            match plan.rank_fault(rank, stage) {
                Some(RankAction::Crash) => out.push(Incident {
                    rank,
                    stage: stage.index(),
                    kind: IncidentKind::Crash,
                }),
                Some(RankAction::StraggleMs(ms))
                    if Duration::from_millis(ms) >= suspicion && !suspicion.is_zero() =>
                {
                    out.push(Incident {
                        rank,
                        stage: stage.index(),
                        kind: IncidentKind::Straggler,
                    })
                }
                _ => {}
            }
        }
    }
    out
}

/// Located incidents from one rank's recovery counters: a coarse-rung
/// heal is a degradation-ladder activation at the render stage, a
/// replica read is a survivable I/O failover.
pub fn counter_incidents(rank: usize, c: &RecoveryCounters, out: &mut Vec<Incident>) {
    if c.approx_blocks > 0 {
        out.push(Incident {
            rank,
            stage: 1,
            kind: IncidentKind::DegradedLadder,
        });
    }
    if c.io_failovers > 0 {
        out.push(Incident {
            rank,
            stage: 0,
            kind: IncidentKind::IoFailover,
        });
    }
}

/// Flight-ring event name for an incident kind (the `<subsystem>.<event>`
/// naming convention — see `pvr-obs`'s crate docs).
pub fn flight_fault_name(kind: IncidentKind) -> &'static str {
    match kind {
        IncidentKind::Crash => "rank.crash",
        IncidentKind::Straggler => "rank.straggle",
        IncidentKind::DegradedLadder => "heal.ladder",
        IncidentKind::IoFailover => "io.failover",
    }
}

/// Why a frame's flight ring should be dumped, if at all: a crash or
/// ladder activation dumps under its own name, any other violation
/// dumps as an SLO violation. `None` for healthy and merely at-risk
/// frames.
pub fn anomaly_reason(slo: &FrameSlo, incidents: &[Incident]) -> Option<&'static str> {
    if incidents.iter().any(|i| i.kind == IncidentKind::Crash) {
        Some("rank-crash")
    } else if incidents
        .iter()
        .any(|i| i.kind == IncidentKind::DegradedLadder)
    {
        Some("degradation-ladder")
    } else if slo.verdict == Verdict::Violated {
        Some("slo-violation")
    } else {
        None
    }
}

/// Mirror one frame's verdict onto the flight recorder: incident fault
/// events on the responsible rank's track, non-zero recovery counters
/// as metrics, the verdict instant, and — on a violation, crash, or
/// ladder activation — the anomaly dump itself. Every recorded arg is
/// deterministic (ranks, stages, counts; never wall seconds), so a
/// manual-clock recorder produces byte-identical dumps across runs.
pub fn record_frame_flight(
    flight: &FlightRecorder,
    slo: &FrameSlo,
    incidents: &[Incident],
    rec: &RecoveryCounters,
) {
    if !flight.enabled() {
        return;
    }
    for inc in incidents {
        flight.fault(
            inc.rank as u32,
            flight_fault_name(inc.kind),
            Args::two("rank", inc.rank as u64, "stage", inc.stage as u64),
        );
    }
    for (name, v) in [
        ("recovery.crashed_ranks", rec.crashed_ranks),
        ("recovery.adopted_blocks", rec.adopted_blocks),
        ("recovery.approx_blocks", rec.approx_blocks),
        ("recovery.hedged_renders", rec.hedged_renders),
        ("recovery.bytes", rec.recovery_bytes),
        ("recovery.io_failovers", rec.io_failovers),
    ] {
        if v > 0 {
            flight.metric(0, name, v);
        }
    }
    let code = match slo.verdict {
        Verdict::Ok => 0,
        Verdict::AtRisk => 1,
        Verdict::Violated => 2,
    };
    let args = match (slo.stage, slo.rank) {
        (Some(s), Some(r)) => Args::three("verdict", code, "stage", s as u64, "rank", r as u64),
        (Some(s), None) => Args::two("verdict", code, "stage", s as u64),
        _ => Args::one("verdict", code),
    };
    flight.instant(0, "frame.slo", args);
    if let Some(reason) = anomaly_reason(slo, incidents) {
        flight.anomaly(reason, args);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_scale_with_frame_and_respect_floors() {
        // A tiny test frame predicts microsecond stages: every budget
        // sits at its floor.
        let cfg = FrameConfig::small(16, 24, 8);
        let small = stage_budgets(&cfg, &SloPolicy::default());
        assert_eq!(small, [0.25; 3]);

        // The paper-scale frame predicts long stages: budgets grow
        // with the prediction, with headroom applied.
        let big = FrameConfig::paper_1120(4096);
        let b = stage_budgets(&big, &SloPolicy::default());
        assert!(b[0] > 1.0, "io budget {}", b[0]);
        assert!(b[1] > 0.25, "render budget {}", b[1]);

        // The config deadline override wins outright.
        let mut cfg = FrameConfig::small(16, 24, 8);
        cfg.stage_deadline_ms = Some(2000);
        assert_eq!(stage_budgets(&cfg, &SloPolicy::default()), [2.0; 3]);
    }

    #[test]
    fn plan_incidents_locate_crashes_and_suspicious_straggles() {
        let plan = FaultPlan {
            seed: 7,
            ranks: vec![
                pvr_faults::RankFault {
                    rank: 5,
                    stage: Stage::Render,
                    action: RankAction::Crash,
                },
                pvr_faults::RankFault {
                    rank: 3,
                    stage: Stage::Composite,
                    action: RankAction::StraggleMs(1200),
                },
                pvr_faults::RankFault {
                    rank: 2,
                    stage: Stage::Io,
                    action: RankAction::StraggleMs(1),
                },
            ],
            ..FaultPlan::default()
        };
        let inc = incidents_from_plan(8, &plan, Duration::from_millis(100));
        assert_eq!(inc.len(), 2, "sub-suspicion straggle is not an incident");
        assert!(inc.contains(&Incident {
            rank: 5,
            stage: 1,
            kind: IncidentKind::Crash
        }));
        assert!(inc.contains(&Incident {
            rank: 3,
            stage: 2,
            kind: IncidentKind::Straggler
        }));
    }

    #[test]
    fn counter_incidents_locate_ladder_and_failover() {
        let mut out = Vec::new();
        let c = RecoveryCounters {
            approx_blocks: 1,
            io_failovers: 2,
            ..RecoveryCounters::default()
        };
        counter_incidents(4, &c, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].kind, IncidentKind::DegradedLadder);
        assert_eq!((out[0].rank, out[0].stage), (4, 1));
        assert_eq!(out[1].kind, IncidentKind::IoFailover);
        assert_eq!((out[1].rank, out[1].stage), (4, 0));
        counter_incidents(0, &RecoveryCounters::default(), &mut out);
        assert_eq!(out.len(), 2, "healthy counters add nothing");
    }

    #[test]
    fn frame_evaluation_attributes_an_injected_crash() {
        let cfg = FrameConfig::small(16, 24, 8);
        let incidents = [Incident {
            rank: 5,
            stage: 1,
            kind: IncidentKind::Crash,
        }];
        let slo = annotate(
            &cfg,
            &FrameSample {
                stage_secs: [0.0; 3],
                per_rank: &[],
                incidents: &incidents,
            },
        );
        assert_eq!(slo.verdict, Verdict::Violated);
        assert_eq!((slo.stage, slo.rank), (Some(1), Some(5)));
        assert_eq!(slo.cause, Some(Cause::Crash));
        assert_eq!(anomaly_reason(&slo, &incidents), Some("rank-crash"));
    }

    #[test]
    fn flight_recording_is_deterministic_and_dumps_on_violation() {
        let run = || {
            let flight = FlightRecorder::manual(32);
            flight.begin_frame();
            let slo = FrameSlo {
                verdict: Verdict::Violated,
                stage: Some(2),
                rank: Some(3),
                cause: Some(Cause::Straggler),
                budget: 0.25,
                measured: 1.2,
            };
            let incidents = [Incident {
                rank: 3,
                stage: 2,
                kind: IncidentKind::Straggler,
            }];
            let rec = RecoveryCounters {
                hedged_renders: 1,
                ..RecoveryCounters::default()
            };
            record_frame_flight(&flight, &slo, &incidents, &rec);
            let dumps = flight.take_dumps();
            assert_eq!(dumps.len(), 1);
            assert_eq!(dumps[0].reason, "slo-violation");
            dumps[0].json.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn healthy_frames_record_a_verdict_but_no_dump() {
        let flight = FlightRecorder::manual(8);
        let slo = FrameSlo {
            verdict: Verdict::Ok,
            stage: None,
            rank: None,
            cause: None,
            budget: 0.0,
            measured: 0.0,
        };
        record_frame_flight(&flight, &slo, &[], &RecoveryCounters::default());
        assert_eq!(flight.len(), 1, "just the frame.slo instant");
        assert!(flight.take_dumps().is_empty());
    }
}
