//! Frame configurations: everything needed to reproduce one data point
//! of the paper's evaluation.

use pvr_formats::layout::{
    FileLayout, Hdf5LikeLayout, NetCdf64Layout, NetCdfClassicLayout, RawLayout,
};
use pvr_pfs::CollectiveHints;
use pvr_render::raycast::Termination;

/// The five I/O modes of the paper's Figure 10 (and Figures 7 and 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoMode {
    /// Single preprocessed 32-bit variable, contiguous, default hints.
    Raw,
    /// netCDF classic record variables, default (untuned) MPI-IO hints.
    NetCdfUntuned,
    /// netCDF classic record variables, `cb_buffer_size` set to the
    /// record size — the paper's tuning.
    NetCdfTuned,
    /// 64-bit-offset netCDF: nonrecord contiguous variables.
    NetCdf64,
    /// HDF5-style chunked layout, independent per-process chunk reads.
    Hdf5,
}

impl IoMode {
    pub const ALL: [IoMode; 5] = [
        IoMode::Raw,
        IoMode::NetCdfUntuned,
        IoMode::NetCdfTuned,
        IoMode::NetCdf64,
        IoMode::Hdf5,
    ];

    pub fn name(self) -> &'static str {
        match self {
            IoMode::Raw => "raw",
            IoMode::NetCdfUntuned => "netcdf-untuned",
            IoMode::NetCdfTuned => "netcdf-tuned",
            IoMode::NetCdf64 => "netcdf-64bit",
            IoMode::Hdf5 => "hdf5",
        }
    }

    /// Number of variables stored in the file in this mode. Raw mode
    /// extracts one variable offline; all multivariate formats carry the
    /// five VH-1 variables.
    pub fn num_vars(self) -> usize {
        match self {
            IoMode::Raw => 1,
            _ => 5,
        }
    }

    /// Build the file layout for a grid in this mode.
    pub fn layout(self, grid: [usize; 3]) -> Box<dyn FileLayout> {
        match self {
            IoMode::Raw => Box::new(RawLayout::new(grid)),
            IoMode::NetCdfUntuned | IoMode::NetCdfTuned => {
                Box::new(NetCdfClassicLayout::new(grid, self.num_vars()))
            }
            IoMode::NetCdf64 => Box::new(NetCdf64Layout::new(grid, self.num_vars())),
            IoMode::Hdf5 => Box::new(Hdf5LikeLayout::new(grid, self.num_vars())),
        }
    }

    /// The MPI-IO hints this mode runs with.
    pub fn hints(self, grid: [usize; 3]) -> CollectiveHints {
        match self {
            IoMode::NetCdfTuned => {
                let l = NetCdfClassicLayout::new(grid, self.num_vars());
                CollectiveHints::tuned(l.record_bytes())
            }
            _ => CollectiveHints::default(),
        }
    }
}

/// How many compositors a frame uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompositorPolicy {
    /// Classic direct-send: one compositor per renderer (`m = n`).
    Original,
    /// The paper's improvement: `m = n` up to 1K, then 1K to 4K
    /// renderers, then 2K compositors.
    Improved,
    /// An explicit compositor count.
    Fixed(usize),
}

impl CompositorPolicy {
    pub fn compositors(self, renderers: usize) -> usize {
        match self {
            CompositorPolicy::Original => renderers,
            CompositorPolicy::Improved => pvr_compositing::improved_compositor_count(renderers),
            CompositorPolicy::Fixed(m) => m.min(renderers),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            CompositorPolicy::Original => "original",
            CompositorPolicy::Improved => "improved",
            CompositorPolicy::Fixed(_) => "fixed",
        }
    }
}

/// One frame's configuration.
#[derive(Debug, Clone, Copy)]
pub struct FrameConfig {
    /// Global grid (e.g. 1120³ scaled down for laptop runs).
    pub grid: [usize; 3],
    /// Final image size (width, height).
    pub image: (usize, usize),
    /// Number of processes (renderers).
    pub nprocs: usize,
    /// I/O mode.
    pub io: IoMode,
    /// Compositor policy.
    pub policy: CompositorPolicy,
    /// Which variable to render (X velocity = 2 in multivariate files;
    /// raw files hold just that one variable at index 0).
    pub variable: usize,
    /// Ray step in cells.
    pub step: f64,
    /// Dataset seed (synthetic supernova).
    pub seed: u64,
    /// Gradient (Phong) shading; needs a 2-cell ghost layer, which the
    /// pipeline provisions automatically.
    pub shading: bool,
    /// Render/composite fast path: macrocell empty-space skipping plus
    /// sparse subimage exchange. Bit-identical to the naive path (the
    /// property tests pin it), so it defaults on; turn off to measure
    /// the naive baseline.
    pub fast_path: bool,
    /// Rays marched in lockstep per packet (see
    /// [`pvr_render::raycast::RenderOpts::packet_width`]): `8` is the
    /// packet kernel default, `1` the scalar kernel. Bit-identical
    /// either way.
    pub packet_width: usize,
    /// Early-termination mode (see [`pvr_render::raycast::Termination`]).
    /// The default `Bitwise` gate is invisible in pixels and sample
    /// counts; `Bounded` trades a reported per-frame error bound for
    /// speed.
    pub termination: Termination,
    /// Override the fault-tolerant executor's per-stage receive
    /// deadline (milliseconds). `None` derives it from the calibrated
    /// perf model with the [`pvr_faults::RecoveryPolicy`] value as a
    /// floor — see `core::recovery::effective_policy`.
    pub stage_deadline_ms: Option<u64>,
    /// Override the per-frame recovery budget of the degradation
    /// ladder (estimated milliseconds). `None` defers to the policy
    /// (unbounded by default).
    pub frame_budget_ms: Option<u64>,
}

impl FrameConfig {
    /// A laptop-scale default mirroring the paper's setup in miniature.
    pub fn small(grid: usize, image: usize, nprocs: usize) -> Self {
        FrameConfig {
            grid: [grid; 3],
            image: (image, image),
            nprocs,
            io: IoMode::Raw,
            policy: CompositorPolicy::Original,
            variable: 0,
            step: 1.0,
            seed: 1530,
            shading: false,
            fast_path: true,
            packet_width: 8,
            termination: Termination::Bitwise,
            stage_deadline_ms: None,
            frame_budget_ms: None,
        }
    }

    /// The paper's headline configuration: 1120³ grid, 1600² image.
    pub fn paper_1120(nprocs: usize) -> Self {
        FrameConfig {
            grid: [1120; 3],
            image: (1600, 1600),
            nprocs,
            io: IoMode::Raw,
            policy: CompositorPolicy::Improved,
            variable: 0,
            step: 1.0,
            seed: 1530,
            shading: false,
            fast_path: true,
            packet_width: 8,
            termination: Termination::Bitwise,
            stage_deadline_ms: None,
            frame_budget_ms: None,
        }
    }

    /// The upsampled 2240³ step with a 2048² image (Table II, upper).
    pub fn paper_2240(nprocs: usize) -> Self {
        FrameConfig {
            grid: [2240; 3],
            image: (2048, 2048),
            ..Self::paper_1120(nprocs)
        }
    }

    /// The upsampled 4480³ step with a 4096² image (Table II, lower).
    pub fn paper_4480(nprocs: usize) -> Self {
        FrameConfig {
            grid: [4480; 3],
            image: (4096, 4096),
            ..Self::paper_1120(nprocs)
        }
    }

    /// Variable index within the file for the current mode (raw files
    /// hold a single extracted variable).
    pub fn file_variable(&self) -> usize {
        if self.io == IoMode::Raw {
            0
        } else {
            self.variable
        }
    }

    /// Bytes of one variable of the grid.
    pub fn variable_bytes(&self) -> u64 {
        self.grid.iter().product::<usize>() as u64 * pvr_formats::ELEM_SIZE
    }

    /// Compositor count for this frame (policy applied to `nprocs`).
    pub fn compositors(&self) -> usize {
        self.policy.compositors(self.nprocs)
    }

    /// Collective-read aggregator count for this frame at laptop scale.
    pub fn aggregators(&self) -> usize {
        crate::roles::laptop_aggregators(self.nprocs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_modes_have_distinct_layouts() {
        let g = [32, 32, 32];
        for mode in IoMode::ALL {
            let l = mode.layout(g);
            assert_eq!(l.grid(), g);
            assert_eq!(l.num_vars(), mode.num_vars());
        }
        assert_eq!(IoMode::Raw.num_vars(), 1);
        assert_eq!(IoMode::NetCdfTuned.num_vars(), 5);
    }

    #[test]
    fn tuned_hints_use_record_size() {
        let h = IoMode::NetCdfTuned.hints([32, 32, 32]);
        assert_eq!(h.cb_buffer_size, 32 * 32 * 4);
        let d = IoMode::NetCdfUntuned.hints([32, 32, 32]);
        assert_eq!(d.cb_buffer_size, 16 << 20);
    }

    #[test]
    fn policies() {
        assert_eq!(CompositorPolicy::Original.compositors(32768), 32768);
        assert_eq!(CompositorPolicy::Improved.compositors(32768), 2048);
        assert_eq!(CompositorPolicy::Improved.compositors(512), 512);
        assert_eq!(CompositorPolicy::Fixed(100).compositors(64), 64);
        assert_eq!(CompositorPolicy::Fixed(100).compositors(1000), 100);
    }

    #[test]
    fn paper_configs_match_paper_numbers() {
        let c = FrameConfig::paper_1120(16384);
        assert_eq!(c.variable_bytes(), 1120u64.pow(3) * 4); // 5.3 GB in the paper
        let c2 = FrameConfig::paper_4480(32768);
        assert_eq!(c2.image, (4096, 4096));
        // 4480^3 * 4 B = 335 GB of storage for the single variable...
        assert!((c2.variable_bytes() as f64 / 1e9 - 359.0).abs() < 1.0);
    }
}
