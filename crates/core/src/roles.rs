//! Rank-role arithmetic shared by every executor, model, and bench.
//!
//! On the real machine these assignments come from the job layout: MPI-IO
//! picks aggregators per pset, direct-send spreads `m` compositors over
//! the `n` renderers, and each group of 64 compute nodes shares one I/O
//! node. The repo used to recompute each of these in several places
//! (pipeline, ft, perfmodel, and a couple of bench binaries); this module
//! is now the single source of truth.

/// Aggregator count for laptop-scale collective reads: one per four
/// ranks, within `[1, 64]` (mirroring one aggregator per compute node
/// with a Blue Gene/P-style cap per pset).
pub fn laptop_aggregators(nranks: usize) -> usize {
    (nranks / 4).clamp(1, 64)
}

/// Rank hosting compositor `c` when `m` compositors are spread evenly
/// over `n` renderers: `c * n / m` (the paper's direct-send placement).
pub fn compositor_rank(c: usize, n: usize, m: usize) -> usize {
    c * n / m.max(1)
}

/// Blue Gene/P I/O-node count for an `nprocs`-rank VN-mode job: four
/// ranks per node, 64 compute nodes per I/O node, at least one.
pub fn bgp_io_nodes(nprocs: usize) -> usize {
    (nprocs / 4).div_ceil(64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregator_counts_are_clamped() {
        assert_eq!(laptop_aggregators(1), 1);
        assert_eq!(laptop_aggregators(8), 2);
        assert_eq!(laptop_aggregators(64), 16);
        assert_eq!(laptop_aggregators(1024), 64);
    }

    #[test]
    fn compositors_spread_evenly() {
        let n = 8;
        let m = 4;
        let ranks: Vec<usize> = (0..m).map(|c| compositor_rank(c, n, m)).collect();
        assert_eq!(ranks, vec![0, 2, 4, 6]);
        // m == n is the identity placement.
        assert!((0..n).all(|c| compositor_rank(c, n, n) == c));
    }

    #[test]
    fn io_nodes_match_the_machine_model() {
        assert_eq!(bgp_io_nodes(8), 1); // tiny jobs still get one
        assert_eq!(bgp_io_nodes(16384), 64);
        assert_eq!(bgp_io_nodes(32768), 128);
    }
}
