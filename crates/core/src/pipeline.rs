//! Real end-to-end execution at laptop scale.
//!
//! Two executors share every algorithmic component:
//!
//! * [`run_frame`] — data-parallel (rayon): ranks are logical; the
//!   two-phase collective read hits a real file, blocks render in
//!   parallel, direct-send compositing reduces the subimages.
//! * [`run_frame_mpi`] — message-passing (`pvr-mpisim`): ranks are
//!   threads exchanging real byte messages for both the I/O scatter
//!   phase and the compositing fragments. Produces a bit-identical
//!   image to [`run_frame`] (asserted by integration tests), because
//!   both blend the same fragments in the same visibility order.

use std::fs::File;
use std::path::Path;

use rayon::prelude::*;

use pvr_compositing::{composite_direct_send_traced, directsend::DirectSendStats, ImagePartition};
use pvr_formats::layout::FileLayout;
use pvr_formats::rw::write_file;
use pvr_formats::{Subvolume, ELEM_SIZE};
use pvr_obs::{Args, Tracer};
use pvr_pfs::sieve::per_extent_plan;
use pvr_pfs::twophase::{two_phase_execute_traced, RankRequest};
use pvr_render::image::{over, Image, SubImage};
use pvr_render::math::Vec3;
use pvr_render::raycast::{render_block, render_block_traced, BlockDomain, RenderOpts, Shading};
use pvr_render::{Camera, TransferFunction};
use pvr_volume::{BlockDecomposition, SupernovaField, Volume};

use crate::config::{FrameConfig, IoMode};
use crate::timing::{FrameTiming, Stopwatch};

/// The default viewing direction for all experiments: a mildly oblique
/// orthographic view so block footprints genuinely straddle compositor
/// tiles (an exactly axis-aligned view would make footprints align with
/// tile boundaries and understate message counts).
pub fn default_view() -> Vec3 {
    Vec3::new(0.25, -0.2, -0.95)
}

/// I/O statistics of one real frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoRunStats {
    pub useful_bytes: u64,
    pub physical_bytes: u64,
    pub accesses: usize,
    pub exchange_bytes: u64,
    /// useful / physical — the paper's data density.
    pub data_density: f64,
    /// Storage retries against faulted servers (fault-tolerant path).
    pub retries: u64,
    /// Extra bytes read from stripe replicas after primary failures.
    pub failover_bytes: u64,
    /// Requested bytes no server could provide (zero-filled in the
    /// output buffers).
    pub unrecovered_bytes: u64,
}

impl Default for IoRunStats {
    fn default() -> Self {
        IoRunStats {
            useful_bytes: 0,
            physical_bytes: 0,
            accesses: 0,
            exchange_bytes: 0,
            data_density: 1.0,
            retries: 0,
            failover_bytes: 0,
            unrecovered_bytes: 0,
        }
    }
}

/// Everything a real frame produces.
#[derive(Debug)]
pub struct FrameResult {
    pub image: Image,
    pub timing: FrameTiming,
    pub io: IoRunStats,
    /// Total scalar samples taken during rendering.
    pub render_samples: u64,
    pub composite: DirectSendStats,
}

/// Materialize the synthetic supernova dataset at `cfg.grid` resolution
/// in the on-disk format of `cfg.io`. Returns bytes written.
pub fn write_dataset(path: &Path, cfg: &FrameConfig) -> std::io::Result<u64> {
    let layout = cfg.io.layout(cfg.grid);
    let field = SupernovaField::new(cfg.seed);
    let [nx, ny, nz] = cfg.grid;
    // Raw mode stores the render variable extracted offline; the
    // multivariate formats store all five VH-1 variables.
    let render_var = cfg.variable;
    write_file(path, layout.as_ref(), |var, x, y, z| {
        let v = if cfg.io == IoMode::Raw {
            render_var
        } else {
            var
        };
        field.sample_var(
            v,
            (x as f32 + 0.5) / nx as f32,
            (y as f32 + 0.5) / ny as f32,
            (z as f32 + 0.5) / nz as f32,
        )
    })
}

/// Per-rank read geometry for one frame.
struct RankGeometry {
    /// Stored (ghost-extended) region per rank.
    stored: Vec<Subvolume>,
    /// Owned region per rank.
    owned: Vec<Subvolume>,
}

fn geometry(cfg: &FrameConfig) -> RankGeometry {
    let decomp = BlockDecomposition::new(cfg.grid, cfg.nprocs);
    let blocks = decomp.blocks();
    // Gradient shading probes one cell around each sample, so it needs
    // a second ghost layer for exact serial equivalence.
    let ghost = if cfg.shading { 2 } else { 1 };
    let stored = blocks.iter().map(|b| decomp.with_ghost(b, ghost)).collect();
    let owned = blocks.iter().map(|b| b.sub).collect();
    RankGeometry { stored, owned }
}

fn rank_requests(layout: &dyn FileLayout, var: usize, stored: &[Subvolume]) -> Vec<RankRequest> {
    stored
        .iter()
        .map(|sub| {
            let mut runs = Vec::new();
            layout.placed_runs(var, sub, &mut |r| runs.push(r));
            RankRequest {
                runs,
                out_elems: sub.num_elements(),
            }
        })
        .collect()
}

/// Decode a rank's raw bytes (on-disk order per placed runs) into a
/// volume over its stored region.
fn decode_volume(bytes: &[u8], sub: &Subvolume, endian: pvr_formats::Endian) -> Volume {
    let mut data = vec![0.0f32; sub.num_elements()];
    for (i, c) in bytes.chunks_exact(4).enumerate() {
        data[i] = endian.decode([c[0], c[1], c[2], c[3]]);
    }
    Volume::from_data(sub.shape, data)
}

/// Aggregator count used by the laptop-scale runs: a quarter of the
/// ranks, clamped to [1, 64] — mirroring BG/P's few-aggregators-per-pset
/// defaults at miniature scale.
pub fn laptop_aggregators(nranks: usize) -> usize {
    (nranks / 4).clamp(1, 64)
}

/// Run one frame for real (rayon executor). When `path` is `None`, the
/// I/O stage synthesizes block data procedurally instead of reading a
/// file (useful for render/composite-only experiments; I/O stats are
/// then zero).
pub fn run_frame(cfg: &FrameConfig, path: Option<&Path>) -> FrameResult {
    run_frame_traced(cfg, path, &Tracer::disabled())
}

/// [`run_frame`] with wall-clock span tracing. Track `r` is logical
/// rank `r`; the driver's stage structure (`frame` > `io` / `render` /
/// `composite`) lands on track 0, per-window `io.window` spans on the
/// aggregator tracks, per-block `render.block` spans on each renderer's
/// track, and per-tile `composite.tile` spans on each compositor's
/// track. Collect the result with [`Tracer::finish`] and export with
/// [`pvr_obs::perfetto::to_json`]. A disabled tracer makes this
/// identical to [`run_frame`].
pub fn run_frame_traced(cfg: &FrameConfig, path: Option<&Path>, tracer: &Tracer) -> FrameResult {
    let geo = geometry(cfg);
    let camera = Camera::orthographic(cfg.grid, default_view(), cfg.image.0, cfg.image.1);
    let tf = transfer_for(cfg);
    let opts = render_opts(cfg);
    if tracer.enabled() {
        for r in 0..cfg.nprocs {
            tracer.name_track(r as u32, &format!("rank {r}"));
        }
    }
    tracer.begin_args(0, "frame", Args::one("ranks", cfg.nprocs as u64));

    // --- Stage 1: I/O ---
    let mut sw = Stopwatch::start();
    tracer.begin(0, "io");
    let (volumes, io) = match path {
        Some(p) => read_stage(cfg, &geo, p, tracer),
        None => (synthesize_stage(cfg, &geo), IoRunStats::default()),
    };
    tracer.end_args(0, "io", Args::one("useful_bytes", io.useful_bytes));
    let t_io = sw.lap();

    // --- Stage 2: rendering (embarrassingly parallel) ---
    tracer.begin(0, "render");
    let rendered: Vec<(SubImage, u64)> = volumes
        .par_iter()
        .enumerate()
        .map(|(rank, vol)| {
            let dom = BlockDomain {
                grid: cfg.grid,
                owned: geo.owned[rank],
                stored: geo.stored[rank],
            };
            let (sub, stats) =
                render_block_traced(vol, &dom, &camera, &tf, &opts, tracer, rank as u32);
            (sub, stats.samples)
        })
        .collect();
    tracer.end(0, "render");
    let t_render = sw.lap();
    let render_samples: u64 = rendered.iter().map(|(_, s)| *s).sum();
    let subs: Vec<SubImage> = rendered.into_iter().map(|(s, _)| s).collect();

    // --- Stage 3: compositing ---
    tracer.begin(0, "composite");
    let m = cfg.policy.compositors(cfg.nprocs);
    let partition = ImagePartition::new(cfg.image.0, cfg.image.1, m);
    let (image, composite) = composite_direct_send_traced(&subs, partition, tracer);
    tracer.end_args(
        0,
        "composite",
        Args::one("messages", composite.messages as u64),
    );
    let t_composite = sw.lap();
    tracer.end(0, "frame");

    FrameResult {
        image,
        timing: FrameTiming {
            io: t_io,
            render: t_render,
            composite: t_composite,
            ..Default::default()
        },
        io,
        render_samples,
        composite,
    }
}

/// Render options for a config.
pub fn render_opts(cfg: &FrameConfig) -> RenderOpts {
    RenderOpts {
        step: cfg.step,
        shading: cfg.shading.then(Shading::default),
        ..Default::default()
    }
}

/// The transfer function for a config's variable.
pub fn transfer_for(cfg: &FrameConfig) -> TransferFunction {
    match cfg.variable {
        0 | 1 => TransferFunction::hot_density(),
        _ => TransferFunction::supernova_velocity(),
    }
}

fn synthesize_stage(cfg: &FrameConfig, geo: &RankGeometry) -> Vec<Volume> {
    let field = SupernovaField::new(cfg.seed).variable(cfg.variable);
    geo.stored
        .par_iter()
        .map(|sub| Volume::from_field_window(&field, cfg.grid, sub.offset, sub.shape))
        .collect()
}

fn read_stage(
    cfg: &FrameConfig,
    geo: &RankGeometry,
    path: &Path,
    tracer: &Tracer,
) -> (Vec<Volume>, IoRunStats) {
    let layout = cfg.io.layout(cfg.grid);
    let var = cfg.file_variable();
    let requests = rank_requests(layout.as_ref(), var, &geo.stored);

    if layout.collective() {
        let hints = cfg.io.hints(cfg.grid);
        let naggr = laptop_aggregators(cfg.nprocs);
        let mut f = File::open(path).expect("dataset file");
        let res = two_phase_execute_traced(&mut f, &requests, naggr, &hints, tracer)
            .expect("collective read");
        let stats = IoRunStats {
            useful_bytes: res.plan.useful_bytes,
            physical_bytes: res.plan.physical_bytes,
            accesses: res.plan.accesses.len(),
            exchange_bytes: res.exchange_bytes,
            data_density: res.plan.data_density(),
            ..Default::default()
        };
        let volumes: Vec<Volume> = res
            .rank_bytes
            .par_iter()
            .zip(&geo.stored)
            .map(|(bytes, sub)| decode_volume(bytes, sub, layout.endian()))
            .collect();
        (volumes, stats)
    } else {
        // HDF5-style independent chunk reads: every rank fetches the
        // whole chunks its block overlaps (no coordination).
        let per_process: Vec<Vec<pvr_formats::Extent>> = geo
            .stored
            .iter()
            .map(|sub| layout.physical_extents(var, sub))
            .collect();
        let plan = per_extent_plan(&per_process);
        let useful: u64 = requests.iter().map(|r| r.useful_bytes()).sum();
        let volumes: Vec<Volume> = geo
            .stored
            .par_iter()
            .map(|sub| {
                let mut f = File::open(path).expect("dataset file");
                let data = pvr_formats::read_subvolume(&mut f, layout.as_ref(), var, sub)
                    .expect("independent read");
                Volume::from_data(sub.shape, data)
            })
            .collect();
        let stats = IoRunStats {
            useful_bytes: useful,
            physical_bytes: plan.physical_bytes,
            accesses: plan.accesses.len(),
            exchange_bytes: 0,
            data_density: useful as f64 / plan.physical_bytes.max(1) as f64,
            ..Default::default()
        };
        (volumes, stats)
    }
}

// ---------------------------------------------------------------------
// Message-passing executor
// ---------------------------------------------------------------------

/// Tags for the message-passing frame. Public so `pvr-verify`'s tag
/// discipline checks can assert that distinct pipeline stages never
/// share a tag (wildcard receives on one stage must not be able to
/// match another stage's traffic).
pub mod tags {
    pub const IO_SCATTER: u32 = 1;
    pub const FRAGMENT: u32 = 2;
    pub const TILE: u32 = 3;
    /// Ack tags of the fault-tolerant executor (`crate::ft`): each data
    /// stage has a dedicated ack channel so wildcard receives on data
    /// tags can never match acknowledgement traffic.
    pub const IO_ACK: u32 = 4;
    pub const FRAG_ACK: u32 = 5;
    pub const TILE_ACK: u32 = 6;

    /// All stage tags, for exhaustive discipline checks.
    pub const ALL: [(u32, &str); 6] = [
        (IO_SCATTER, "io-scatter"),
        (FRAGMENT, "fragment"),
        (TILE, "tile"),
        (IO_ACK, "io-ack"),
        (FRAG_ACK, "fragment-ack"),
        (TILE_ACK, "tile-ack"),
    ];
}

/// Serialize a subimage fragment: renderer id, rect, depth, pixels.
pub(crate) fn encode_fragment(renderer: usize, s: &SubImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(40 + s.pixels.len() * 16);
    out.extend((renderer as u64).to_le_bytes());
    out.extend((s.rect.x0 as u64).to_le_bytes());
    out.extend((s.rect.y0 as u64).to_le_bytes());
    out.extend((s.rect.w as u64).to_le_bytes());
    out.extend((s.rect.h as u64).to_le_bytes());
    out.extend(s.depth.to_le_bytes());
    for p in &s.pixels {
        for c in p {
            out.extend(c.to_le_bytes());
        }
    }
    out
}

pub(crate) fn decode_fragment(data: &[u8]) -> (usize, SubImage) {
    let u = |i: usize| u64::from_le_bytes(data[i * 8..i * 8 + 8].try_into().unwrap()) as usize;
    let renderer = u(0);
    let rect = pvr_render::image::PixelRect::new(u(1), u(2), u(3), u(4));
    let depth = f64::from_le_bytes(data[40..48].try_into().unwrap());
    let mut pixels = Vec::with_capacity(rect.num_pixels());
    let body = &data[48..];
    for q in body.chunks_exact(16) {
        pixels.push([
            f32::from_le_bytes(q[0..4].try_into().unwrap()),
            f32::from_le_bytes(q[4..8].try_into().unwrap()),
            f32::from_le_bytes(q[8..12].try_into().unwrap()),
            f32::from_le_bytes(q[12..16].try_into().unwrap()),
        ]);
    }
    (
        renderer,
        SubImage {
            rect,
            pixels,
            depth,
        },
    )
}

/// Run one frame over real message passing (one thread per rank).
/// Requires a dataset file. Returns rank 0's result; the image is
/// identical to [`run_frame`]'s.
pub fn run_frame_mpi(cfg: &FrameConfig, path: &Path) -> FrameResult {
    run_frame_mpi_opts(cfg, path, pvr_mpisim::RunOptions::default())
        .unwrap_or_else(|e| panic!("mpi frame failed: {e}"))
        .0
}

/// [`run_frame_mpi`] with explicit runtime options — the entry point the
/// verification tooling uses to trace a frame's messages, perturb its
/// wildcard-match order, or replay a recorded order. Returns the frame
/// and, when `opts.trace` is set, the message trace. The composited
/// image is bit-identical across match policies because compositors
/// sort fragments by (depth, renderer) before blending.
pub fn run_frame_mpi_opts(
    cfg: &FrameConfig,
    path: &Path,
    opts: pvr_mpisim::RunOptions,
) -> Result<(FrameResult, Option<pvr_mpisim::trace::TraceLog>), pvr_mpisim::RunError> {
    let cfg = *cfg;
    let path = path.to_path_buf();
    let n = cfg.nprocs;
    let m = cfg.policy.compositors(n);
    // Compositor c is hosted by rank c*n/m (spread over the machine).
    let compositor_rank = move |c: usize| c * n / m;

    let out = pvr_mpisim::World::run_opts(n, opts, move |mut comm| {
        let rank = comm.rank();
        let geo = geometry(&cfg);
        let camera = Camera::orthographic(cfg.grid, default_view(), cfg.image.0, cfg.image.1);
        let tf = transfer_for(&cfg);
        let opts = render_opts(&cfg);
        let layout = cfg.io.layout(cfg.grid);
        let var = cfg.file_variable();
        let mut sw = Stopwatch::start();
        comm.span_begin("frame");

        // --- Stage 1: I/O. Aggregators read, scatter to owners. ---
        comm.span_begin("io");
        let requests = rank_requests(layout.as_ref(), var, &geo.stored);
        let naggr = laptop_aggregators(n);
        let my_bytes =
            mpi_collective_read(&mut comm, &cfg, layout.as_ref(), &requests, naggr, &path);
        let volume = decode_volume(&my_bytes, &geo.stored[rank], layout.endian());
        // Close the stage before the barrier: the span then measures
        // this rank's own progress, so the cross-rank imbalance factor
        // is visible; barrier wait time accrues to the parent span.
        comm.span_end("io");
        comm.barrier();
        let t_io = sw.lap();

        // --- Stage 2: render. ---
        comm.span_begin("render");
        let dom = BlockDomain {
            grid: cfg.grid,
            owned: geo.owned[rank],
            stored: geo.stored[rank],
        };
        let (sub, rstats) = render_block(&volume, &dom, &camera, &tf, &opts);
        comm.mark_instant("render.samples", rstats.samples);
        comm.span_end("render");
        comm.barrier();
        let t_render = sw.lap();

        // --- Stage 3: direct-send compositing over messages. ---
        comm.span_begin("composite");
        let partition = ImagePartition::new(cfg.image.0, cfg.image.1, m);
        // Everyone derives the same schedule from the same footprints.
        let footprints: Vec<pvr_render::image::PixelRect> = (0..n)
            .map(|r| {
                pvr_render::raycast::footprint(
                    &camera,
                    geo.owned[r].offset,
                    geo.owned[r].end(),
                    cfg.image,
                )
            })
            .collect();
        let schedule = pvr_compositing::build_schedule(&footprints, partition);

        // Send my fragments.
        let mut sent = 0u64;
        for msg in schedule.messages.iter().filter(|m| m.renderer == rank) {
            let tile = partition.tile(msg.compositor);
            if let Some(frag) = sub.crop(&tile) {
                let dst = compositor_rank(msg.compositor);
                sent += frag.wire_bytes();
                comm.send(dst, tags::FRAGMENT, encode_fragment(rank, &frag));
            }
        }

        // Composite the tile I own, if any. With m <= n the map
        // c -> c*n/m is injective, so a rank owns at most one tile.
        let my_tile = (0..m).find(|&c| compositor_rank(c) == rank);
        let mut tiles_out: Vec<(usize, SubImage)> = Vec::new();
        if let Some(c) = my_tile {
            let expected = schedule
                .messages
                .iter()
                .filter(|mm| mm.compositor == c)
                .count();
            let tile = partition.tile(c);
            let mut frags: Vec<(usize, SubImage)> = Vec::with_capacity(expected);
            while frags.len() < expected {
                let (_, data) = comm.recv_any(tags::FRAGMENT);
                let (renderer, frag) = decode_fragment(&data);
                debug_assert_eq!(frag.rect.intersect(&tile), Some(frag.rect));
                frags.push((renderer, frag));
            }
            frags.sort_by(|a, b| a.1.depth.total_cmp(&b.1.depth).then(a.0.cmp(&b.0)));
            let mut buf = SubImage::transparent(tile, 0.0);
            for (_, frag) in &frags {
                for y in frag.rect.y0..frag.rect.y1() {
                    for x in frag.rect.x0..frag.rect.x1() {
                        let idx = (y - tile.y0) * tile.w + (x - tile.x0);
                        buf.pixels[idx] = over(buf.pixels[idx], frag.get(x, y));
                    }
                }
            }
            tiles_out.push((c, buf));
        }

        // Ship finished tiles to rank 0.
        for (c, buf) in &tiles_out {
            comm.send(0, tags::TILE, encode_fragment(*c, buf));
        }
        let image = if rank == 0 {
            let mut img = Image::new(cfg.image.0, cfg.image.1);
            for _ in 0..m {
                let (_, data) = comm.recv_any(tags::TILE);
                let (_, tile_img) = decode_fragment(&data);
                img.paste(&tile_img);
            }
            Some(img)
        } else {
            None
        };
        comm.span_end("composite");
        comm.barrier();
        comm.span_end("frame");
        let t_composite = sw.lap();

        (
            image,
            FrameTiming {
                io: t_io,
                render: t_render,
                composite: t_composite,
                ..Default::default()
            },
            rstats.samples,
            sent,
        )
    });

    let out = out?;
    let trace = out.trace;
    let mut results = out.results;
    let render_samples: u64 = results.iter().map(|(_, _, s, _)| *s).sum();
    let sent_bytes: u64 = results.iter().map(|(_, _, _, b)| *b).sum();
    let (image, timing, _, _) = results.remove(0);
    Ok((
        FrameResult {
            image: image.expect("rank 0 holds the image"),
            timing,
            io: IoRunStats::default(),
            render_samples,
            composite: DirectSendStats {
                messages: 0,
                bytes: sent_bytes,
                per_compositor: Vec::new(),
            },
        },
        trace,
    ))
}

/// One fully profiled message-passing frame: the rendered frame, the
/// message trace it ran under, and the span/metric profile derived from
/// that trace.
pub struct ProfiledFrame {
    pub frame: FrameResult,
    pub trace: pvr_mpisim::trace::TraceLog,
    pub profile: pvr_obs::Profile,
}

/// Run one traced frame twice: pass 1 records the actual wildcard match
/// order, pass 2 replays its canonicalized form. The second trace is
/// therefore a deterministic function of the configuration alone —
/// thread scheduling perturbs pass 1 but the canonical replay log maps
/// every schedule in the same equivalence class to one representative,
/// so exporters downstream are byte-for-byte reproducible.
pub fn run_frame_mpi_profiled(
    cfg: &FrameConfig,
    path: &Path,
) -> Result<ProfiledFrame, pvr_mpisim::RunError> {
    use std::sync::Arc;
    let (_, t1) = run_frame_mpi_opts(cfg, path, pvr_mpisim::RunOptions::default().traced())?;
    let replay = Arc::new(pvr_mpisim::trace::ReplayLog::canonical(
        &t1.expect("traced run yields a trace"),
    ));
    let (frame, trace) = run_frame_mpi_opts(
        cfg,
        path,
        pvr_mpisim::RunOptions::default()
            .traced()
            .policy(pvr_mpisim::MatchPolicy::Replay(replay)),
    )?;
    let trace = trace.expect("traced run yields a trace");
    let profile = pvr_obs::profile_from_trace(&trace);
    Ok(ProfiledFrame {
        frame,
        trace,
        profile,
    })
}

/// A two-phase collective read over real messages: aggregators read
/// window accesses from the file and scatter each rank's pieces; every
/// rank returns its own request's bytes.
fn mpi_collective_read(
    comm: &mut pvr_mpisim::Comm,
    _cfg: &FrameConfig,
    layout: &dyn FileLayout,
    requests: &[RankRequest],
    naggr: usize,
    path: &Path,
) -> Vec<u8> {
    use pvr_formats::extent::{coalesce, Extent};
    let rank = comm.rank();
    let n = comm.size();
    let naggr = naggr.clamp(1, n);
    let aggr_rank = |j: usize| j * n / naggr;

    if layout.collective() {
        // All ranks derive the identical plan.
        let mut aggregate: Vec<Extent> = requests
            .iter()
            .flat_map(|rq| {
                rq.runs
                    .iter()
                    .map(|r| Extent::new(r.file_offset, r.elems as u64 * ELEM_SIZE))
            })
            .collect();
        coalesce(&mut aggregate);
        let hints = _cfg.io.hints(_cfg.grid);
        let plan = pvr_pfs::two_phase_plan(&aggregate, naggr, &hints);

        // Sorted runs across all ranks for the scatter.
        let mut sorted_runs: Vec<(u64, usize, usize, usize)> = Vec::new();
        for (r, rq) in requests.iter().enumerate() {
            for run in &rq.runs {
                sorted_runs.push((
                    run.file_offset,
                    run.elems * ELEM_SIZE as usize,
                    r,
                    run.out_start * ELEM_SIZE as usize,
                ));
            }
        }
        sorted_runs.sort_unstable_by_key(|t| t.0);

        // Aggregator duty: read my windows, send pieces.
        let mut piece_counts = vec![0usize; n];
        for a in &plan.accesses {
            for t in &sorted_runs {
                let (off, len, r, _) = *t;
                if off + (len as u64) <= a.extent.offset {
                    continue;
                }
                if off >= a.extent.end() {
                    break;
                }
                piece_counts[r] += 1;
            }
        }
        let mut file = File::open(path).expect("dataset file");
        use std::io::{Read, Seek, SeekFrom};
        let mut buf = Vec::new();
        for a in plan
            .accesses
            .iter()
            .filter(|a| aggr_rank(a.aggregator) == rank)
        {
            comm.span_begin_v("io.window", a.extent.len);
            buf.resize(a.extent.len as usize, 0);
            file.seek(SeekFrom::Start(a.extent.offset)).unwrap();
            file.read_exact(&mut buf).unwrap();
            let start = sorted_runs.partition_point(|t| t.0 + t.1 as u64 <= a.extent.offset);
            for t in &sorted_runs[start..] {
                let (off, len, r, out_byte) = *t;
                if off >= a.extent.end() {
                    break;
                }
                let lo = off.max(a.extent.offset);
                let hi = (off + len as u64).min(a.extent.end());
                if lo >= hi {
                    continue;
                }
                // Piece header: destination byte offset within the
                // rank's buffer.
                let nb = (hi - lo) as usize;
                let mut msg = Vec::with_capacity(16 + nb);
                msg.extend(((out_byte + (lo - off) as usize) as u64).to_le_bytes());
                msg.extend((nb as u64).to_le_bytes());
                msg.extend(&buf[(lo - a.extent.offset) as usize..(hi - a.extent.offset) as usize]);
                comm.send(r, tags::IO_SCATTER, msg);
            }
            comm.span_end("io.window");
        }

        // Receive my pieces.
        let mut out = vec![0u8; requests[rank].out_elems * ELEM_SIZE as usize];
        let expected = piece_counts[rank];
        for _ in 0..expected {
            let (_, msg) = comm.recv_any(tags::IO_SCATTER);
            let dst = u64::from_le_bytes(msg[0..8].try_into().unwrap()) as usize;
            let nb = u64::from_le_bytes(msg[8..16].try_into().unwrap()) as usize;
            out[dst..dst + nb].copy_from_slice(&msg[16..16 + nb]);
        }
        out
    } else {
        // Independent path (HDF5-like): read my own runs directly.
        let mut file = File::open(path).expect("dataset file");
        use std::io::{Read, Seek, SeekFrom};
        let mut out = vec![0u8; requests[rank].out_elems * ELEM_SIZE as usize];
        for run in &requests[rank].runs {
            let nb = run.elems * ELEM_SIZE as usize;
            file.seek(SeekFrom::Start(run.file_offset)).unwrap();
            file.read_exact(&mut out[run.out_start * 4..run.out_start * 4 + nb])
                .unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompositorPolicy;

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("pvr-core-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    #[test]
    fn frame_from_file_matches_synthetic_frame() {
        // Reading the written dataset must give the same image as
        // sampling the field directly (same bytes -> same volumes).
        let mut cfg = FrameConfig::small(24, 32, 8);
        cfg.variable = 2;
        let p = tmp("match.raw");
        write_dataset(&p, &cfg).unwrap();
        let from_file = run_frame(&cfg, Some(&p));
        let synthetic = run_frame(&cfg, None);
        let d = from_file.image.max_abs_diff(&synthetic.image);
        assert!(d < 1e-6, "diff {d}");
        assert!(from_file.io.useful_bytes > 0);
        assert!(
            (from_file.io.data_density - 1.0).abs() < 1e-9,
            "raw density"
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn all_io_modes_produce_the_same_image() {
        let mut base = FrameConfig::small(20, 24, 4);
        base.variable = 2;
        let mut reference: Option<Image> = None;
        for mode in IoMode::ALL {
            let mut cfg = base;
            cfg.io = mode;
            let p = tmp(&format!("mode.{}", mode.name()));
            write_dataset(&p, &cfg).unwrap();
            let res = run_frame(&cfg, Some(&p));
            match &reference {
                None => reference = Some(res.image),
                Some(r) => {
                    // netCDF stores big-endian f32: exact round trip.
                    let d = res.image.max_abs_diff(r);
                    assert!(d < 1e-6, "{}: diff {d}", mode.name());
                }
            }
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn io_mode_densities_are_ordered_like_figure_10() {
        let mut cfg = FrameConfig::small(32, 16, 8);
        cfg.variable = 2;
        let mut density = std::collections::HashMap::new();
        for mode in IoMode::ALL {
            let mut c = cfg;
            c.io = mode;
            let p = tmp(&format!("dens.{}", mode.name()));
            write_dataset(&p, &c).unwrap();
            let res = run_frame(&c, Some(&p));
            density.insert(mode, res.io.data_density);
            std::fs::remove_file(&p).ok();
        }
        // raw ~ 1; untuned netCDF worst; tuned strictly better than
        // untuned; netcdf-64 near raw.
        assert!(density[&IoMode::Raw] > 0.99);
        assert!(density[&IoMode::NetCdf64] > 0.9);
        assert!(density[&IoMode::NetCdfUntuned] < 0.35);
        assert!(density[&IoMode::NetCdfTuned] > density[&IoMode::NetCdfUntuned]);
        assert!(density[&IoMode::Hdf5] < 1.0 && density[&IoMode::Hdf5] > 0.3);
    }

    #[test]
    fn compositor_policy_does_not_change_the_image() {
        let mut cfg = FrameConfig::small(24, 40, 16);
        cfg.variable = 2;
        let a = run_frame(&cfg, None);
        cfg.policy = CompositorPolicy::Fixed(3);
        let b = run_frame(&cfg, None);
        let d = a.image.max_abs_diff(&b.image);
        assert!(d < 1e-5, "diff {d}");
        assert!(b.composite.messages <= a.composite.messages);
    }

    #[test]
    fn mpi_frame_matches_rayon_frame() {
        let mut cfg = FrameConfig::small(20, 24, 8);
        cfg.variable = 2;
        cfg.policy = CompositorPolicy::Fixed(4);
        let p = tmp("mpi.raw");
        write_dataset(&p, &cfg).unwrap();
        let rayon_res = run_frame(&cfg, Some(&p));
        let mpi_res = run_frame_mpi(&cfg, &p);
        let d = mpi_res.image.max_abs_diff(&rayon_res.image);
        assert!(d < 1e-6, "diff {d}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn mpi_frame_matches_for_netcdf_collective_path() {
        let mut cfg = FrameConfig::small(16, 20, 6);
        cfg.variable = 3;
        cfg.io = IoMode::NetCdfTuned;
        let p = tmp("mpi.nc");
        write_dataset(&p, &cfg).unwrap();
        let rayon_res = run_frame(&cfg, Some(&p));
        let mpi_res = run_frame_mpi(&cfg, &p);
        let d = mpi_res.image.max_abs_diff(&rayon_res.image);
        assert!(d < 1e-6, "diff {d}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn timing_stages_are_populated() {
        let cfg = FrameConfig::small(16, 16, 4);
        let res = run_frame(&cfg, None);
        assert!(res.timing.io >= 0.0);
        assert!(res.timing.render > 0.0);
        assert!(res.timing.composite > 0.0);
        assert!(res.render_samples > 0);
    }

    #[test]
    fn shaded_frame_matches_across_policies() {
        let mut cfg = FrameConfig::small(20, 24, 8);
        cfg.variable = 2;
        cfg.shading = true;
        let a = run_frame(&cfg, None);
        let mut c2 = cfg;
        c2.policy = CompositorPolicy::Fixed(3);
        let b = run_frame(&c2, None);
        let d = a.image.max_abs_diff(&b.image);
        assert!(d < 1e-5, "shaded frames differ across policies: {d}");
        // Shading changes the image versus the unshaded frame.
        let mut c3 = cfg;
        c3.shading = false;
        let c = run_frame(&c3, None);
        assert!(a.image.mean_abs_diff(&c.image) > 1e-4);
    }
}
