//! Real end-to-end execution at laptop scale.
//!
//! Two executors share every algorithmic component:
//!
//! * [`run_frame`] — data-parallel (rayon): ranks are logical; the
//!   two-phase collective read hits a real file, blocks render in
//!   parallel, direct-send compositing reduces the subimages.
//! * [`run_frame_mpi`] — message-passing (`pvr-mpisim`): ranks are
//!   threads exchanging real byte messages for both the I/O scatter
//!   phase and the compositing fragments. Produces a bit-identical
//!   image to [`run_frame`] (asserted by integration tests), because
//!   both blend the same fragments in the same visibility order.
//!
//! Both entry points (and the fault-tolerant ones in [`crate::ft`]) are
//! thin configurations of the one stage-graph driver in
//! [`crate::scheduler`]; this module keeps the shared building blocks
//! (geometry, dataset synthesis, fragment wire format, tags) and the
//! legacy API surface.

use std::fs::File;
use std::io::{Read as _, Seek, SeekFrom};
use std::path::Path;
use std::time::Instant;

use rayon::prelude::*;

use pvr_compositing::directsend::DirectSendStats;
use pvr_formats::layout::FileLayout;
use pvr_formats::rw::write_file;
use pvr_formats::{Subvolume, ELEM_SIZE};
use pvr_obs::Tracer;
use pvr_pfs::sieve::per_extent_plan;
use pvr_pfs::twophase::{two_phase_execute_traced, RankRequest};
use pvr_pfs::IoThrottle;
use pvr_render::image::{Image, SubImage};
use pvr_render::math::Vec3;
use pvr_render::raycast::{RenderOpts, Shading};
use pvr_render::TransferFunction;
use pvr_volume::{BlockDecomposition, SupernovaField, Volume};

use crate::config::{FrameConfig, IoMode};
use crate::scheduler::{drive_frame, Driver, ExecChoice, FramePlan, LinkMode};
use crate::timing::FrameTiming;

/// The default viewing direction for all experiments: a mildly oblique
/// orthographic view so block footprints genuinely straddle compositor
/// tiles (an exactly axis-aligned view would make footprints align with
/// tile boundaries and understate message counts).
pub fn default_view() -> Vec3 {
    Vec3::new(0.25, -0.2, -0.95)
}

/// I/O statistics of one real frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoRunStats {
    pub useful_bytes: u64,
    pub physical_bytes: u64,
    pub accesses: usize,
    pub exchange_bytes: u64,
    /// useful / physical — the paper's data density.
    pub data_density: f64,
    /// Storage retries against faulted servers (fault-tolerant path).
    pub retries: u64,
    /// Extra bytes read from stripe replicas after primary failures.
    pub failover_bytes: u64,
    /// Requested bytes no server could provide (zero-filled in the
    /// output buffers).
    pub unrecovered_bytes: u64,
}

impl Default for IoRunStats {
    fn default() -> Self {
        IoRunStats {
            useful_bytes: 0,
            physical_bytes: 0,
            accesses: 0,
            exchange_bytes: 0,
            data_density: 1.0,
            retries: 0,
            failover_bytes: 0,
            unrecovered_bytes: 0,
        }
    }
}

/// Everything a real frame produces.
#[derive(Debug)]
pub struct FrameResult {
    pub image: Image,
    pub timing: FrameTiming,
    pub io: IoRunStats,
    /// Total scalar samples taken during rendering.
    pub render_samples: u64,
    /// Samples proven zero-opacity by the macrocell/LUT fast path and
    /// skipped without evaluation (a subset of `render_samples`; 0 when
    /// `fast_path` is off).
    pub render_skipped: u64,
    /// Ray packets launched across all ranks (0 on the scalar kernel).
    pub render_packets: u64,
    /// Lockstep lane-utilization counters summed over ranks: lanes that
    /// evaluated a sample / lane slots in rounds with at least one
    /// evaluating lane. See [`pvr_render::raycast::RenderStats`].
    pub render_eval_lanes: u64,
    pub render_eval_slots: u64,
    /// Rays whose accumulation terminated early (saturation gates).
    pub render_terminated: u64,
    /// Max over ranks of the conservative per-pixel, per-channel error
    /// bound introduced by [`pvr_render::raycast::Termination::Bounded`]
    /// (exactly `0.0` under `Off` and `Bitwise`).
    pub render_error_bound: f64,
    pub composite: DirectSendStats,
}

impl FrameResult {
    /// Fraction of lockstep lane slots that evaluated a sample, over
    /// the whole frame (`None` when the packet kernel never ran).
    pub fn lane_utilization(&self) -> Option<f64> {
        (self.render_eval_slots > 0)
            .then(|| self.render_eval_lanes as f64 / self.render_eval_slots as f64)
    }
}

/// Materialize the synthetic supernova dataset at `cfg.grid` resolution
/// in the on-disk format of `cfg.io`. Returns bytes written.
pub fn write_dataset(path: &Path, cfg: &FrameConfig) -> std::io::Result<u64> {
    let layout = cfg.io.layout(cfg.grid);
    let field = SupernovaField::new(cfg.seed);
    let [nx, ny, nz] = cfg.grid;
    // Raw mode stores the render variable extracted offline; the
    // multivariate formats store all five VH-1 variables.
    let render_var = cfg.variable;
    write_file(path, layout.as_ref(), |var, x, y, z| {
        let v = if cfg.io == IoMode::Raw {
            render_var
        } else {
            var
        };
        field.sample_var(
            v,
            (x as f32 + 0.5) / nx as f32,
            (y as f32 + 0.5) / ny as f32,
            (z as f32 + 0.5) / nz as f32,
        )
    })
}

/// Per-rank read geometry for one frame.
pub(crate) struct RankGeometry {
    /// Stored (ghost-extended) region per rank.
    pub(crate) stored: Vec<Subvolume>,
    /// Owned region per rank.
    pub(crate) owned: Vec<Subvolume>,
}

pub(crate) fn geometry(cfg: &FrameConfig) -> RankGeometry {
    let decomp = BlockDecomposition::new(cfg.grid, cfg.nprocs);
    let blocks = decomp.blocks();
    // Gradient shading probes one cell around each sample, so it needs
    // a second ghost layer for exact serial equivalence.
    let ghost = if cfg.shading { 2 } else { 1 };
    let stored = blocks.iter().map(|b| decomp.with_ghost(b, ghost)).collect();
    let owned = blocks.iter().map(|b| b.sub).collect();
    RankGeometry { stored, owned }
}

pub(crate) fn rank_requests(
    layout: &dyn FileLayout,
    var: usize,
    stored: &[Subvolume],
) -> Vec<RankRequest> {
    stored
        .iter()
        .map(|sub| {
            let mut runs = Vec::new();
            layout.placed_runs(var, sub, &mut |r| runs.push(r));
            RankRequest {
                runs,
                out_elems: sub.num_elements(),
            }
        })
        .collect()
}

/// Decode a rank's raw bytes (on-disk order per placed runs) into a
/// volume over its stored region.
pub(crate) fn decode_volume(bytes: &[u8], sub: &Subvolume, endian: pvr_formats::Endian) -> Volume {
    let mut data = vec![0.0f32; sub.num_elements()];
    for (i, c) in bytes.chunks_exact(4).enumerate() {
        data[i] = endian.decode([c[0], c[1], c[2], c[3]]);
    }
    Volume::from_data(sub.shape, data)
}

/// Aggregator count used by the laptop-scale runs (re-exported from
/// [`crate::roles`], the single home of role-placement formulas).
pub use crate::roles::laptop_aggregators;

/// Run one frame for real (rayon executor). When `path` is `None`, the
/// I/O stage synthesizes block data procedurally instead of reading a
/// file (useful for render/composite-only experiments; I/O stats are
/// then zero).
pub fn run_frame(cfg: &FrameConfig, path: Option<&Path>) -> FrameResult {
    run_frame_traced(cfg, path, &Tracer::disabled())
}

/// [`run_frame`] with wall-clock span tracing. Track `r` is logical
/// rank `r`; the driver's stage structure (`frame` > `io` / `render` /
/// `composite`) lands on track 0, per-window `io.window` spans on the
/// aggregator tracks, per-block `render.block` spans on each renderer's
/// track, and per-tile `composite.tile` spans on each compositor's
/// track. Collect the result with [`Tracer::finish`] and export with
/// [`pvr_obs::perfetto::to_json`]. A disabled tracer makes this
/// identical to [`run_frame`].
pub fn run_frame_traced(cfg: &FrameConfig, path: Option<&Path>, tracer: &Tracer) -> FrameResult {
    drive_frame(
        cfg,
        path,
        Driver {
            plan: FramePlan::standard(),
            exec: ExecChoice::Rayon { tracer },
            flight: pvr_obs::FlightRecorder::disabled(),
        },
    )
    .expect("rayon frames cannot fail")
    .frame
}

/// Render options for a config.
pub fn render_opts(cfg: &FrameConfig) -> RenderOpts {
    RenderOpts {
        step: cfg.step,
        shading: cfg.shading.then(Shading::default),
        fast_path: cfg.fast_path,
        packet_width: cfg.packet_width,
        termination: cfg.termination,
    }
}

/// The transfer function for a config's variable.
pub fn transfer_for(cfg: &FrameConfig) -> TransferFunction {
    match cfg.variable {
        0 | 1 => TransferFunction::hot_density(),
        _ => TransferFunction::supernova_velocity(),
    }
}

pub(crate) fn synthesize_stage(cfg: &FrameConfig, geo: &RankGeometry) -> Vec<Volume> {
    let field = SupernovaField::new(cfg.seed).variable(cfg.variable);
    geo.stored
        .par_iter()
        .map(|sub| Volume::from_field_window(&field, cfg.grid, sub.offset, sub.shape))
        .collect()
}

pub(crate) fn read_stage(
    cfg: &FrameConfig,
    geo: &RankGeometry,
    path: &Path,
    tracer: &Tracer,
) -> (Vec<Volume>, IoRunStats) {
    let layout = cfg.io.layout(cfg.grid);
    let var = cfg.file_variable();
    let requests = rank_requests(layout.as_ref(), var, &geo.stored);

    if layout.collective() {
        let hints = cfg.io.hints(cfg.grid);
        let naggr = laptop_aggregators(cfg.nprocs);
        let mut f = File::open(path).expect("dataset file");
        let res = two_phase_execute_traced(&mut f, &requests, naggr, &hints, tracer)
            .expect("collective read");
        let stats = IoRunStats {
            useful_bytes: res.plan.useful_bytes,
            physical_bytes: res.plan.physical_bytes,
            accesses: res.plan.accesses.len(),
            exchange_bytes: res.exchange_bytes,
            data_density: res.plan.data_density(),
            ..Default::default()
        };
        let volumes: Vec<Volume> = res
            .rank_bytes
            .par_iter()
            .zip(&geo.stored)
            .map(|(bytes, sub)| decode_volume(bytes, sub, layout.endian()))
            .collect();
        (volumes, stats)
    } else {
        // HDF5-style independent chunk reads: every rank fetches the
        // whole chunks its block overlaps (no coordination).
        let per_process: Vec<Vec<pvr_formats::Extent>> = geo
            .stored
            .iter()
            .map(|sub| layout.physical_extents(var, sub))
            .collect();
        let plan = per_extent_plan(&per_process);
        let useful: u64 = requests.iter().map(|r| r.useful_bytes()).sum();
        let volumes: Vec<Volume> = geo
            .stored
            .par_iter()
            .map(|sub| {
                let mut f = File::open(path).expect("dataset file");
                let data = pvr_formats::read_subvolume(&mut f, layout.as_ref(), var, sub)
                    .expect("independent read");
                Volume::from_data(sub.shape, data)
            })
            .collect();
        let stats = IoRunStats {
            useful_bytes: useful,
            physical_bytes: plan.physical_bytes,
            accesses: plan.accesses.len(),
            exchange_bytes: 0,
            data_density: useful as f64 / plan.physical_bytes.max(1) as f64,
            ..Default::default()
        };
        (volumes, stats)
    }
}

/// Read one frame's per-rank byte buffers (on-disk order per placed
/// runs) without decoding them into volumes — the form a prefetch
/// thread hands to a later frame. An optional [`IoThrottle`] floors the
/// read at a bandwidth, making I/O genuinely expensive for pipelining
/// experiments.
pub(crate) fn read_frame_bytes(
    cfg: &FrameConfig,
    path: &Path,
    throttle: Option<IoThrottle>,
) -> std::io::Result<(Vec<Vec<u8>>, IoRunStats)> {
    let layout = cfg.io.layout(cfg.grid);
    let var = cfg.file_variable();
    let geo = geometry(cfg);
    let requests = rank_requests(layout.as_ref(), var, &geo.stored);
    let t0 = Instant::now();

    if layout.collective() {
        let hints = cfg.io.hints(cfg.grid);
        let naggr = laptop_aggregators(cfg.nprocs);
        let mut f = File::open(path)?;
        let disabled = Tracer::disabled();
        let res = two_phase_execute_traced(&mut f, &requests, naggr, &hints, &disabled)?;
        let stats = IoRunStats {
            useful_bytes: res.plan.useful_bytes,
            physical_bytes: res.plan.physical_bytes,
            accesses: res.plan.accesses.len(),
            exchange_bytes: res.exchange_bytes,
            data_density: res.plan.data_density(),
            ..Default::default()
        };
        if let Some(t) = throttle {
            t.pad(stats.physical_bytes, t0);
        }
        Ok((res.rank_bytes, stats))
    } else {
        let per_process: Vec<Vec<pvr_formats::Extent>> = geo
            .stored
            .iter()
            .map(|sub| layout.physical_extents(var, sub))
            .collect();
        let plan = per_extent_plan(&per_process);
        let useful: u64 = requests.iter().map(|r| r.useful_bytes()).sum();
        let mut f = File::open(path)?;
        let mut bytes = Vec::with_capacity(requests.len());
        for rq in &requests {
            let mut out = vec![0u8; rq.out_elems * ELEM_SIZE as usize];
            for run in &rq.runs {
                let nb = run.elems * ELEM_SIZE as usize;
                f.seek(SeekFrom::Start(run.file_offset))?;
                f.read_exact(&mut out[run.out_start * 4..run.out_start * 4 + nb])?;
            }
            bytes.push(out);
        }
        let stats = IoRunStats {
            useful_bytes: useful,
            physical_bytes: plan.physical_bytes,
            accesses: plan.accesses.len(),
            exchange_bytes: 0,
            data_density: useful as f64 / plan.physical_bytes.max(1) as f64,
            ..Default::default()
        };
        if let Some(t) = throttle {
            t.pad(useful, t0);
        }
        Ok((bytes, stats))
    }
}

// ---------------------------------------------------------------------
// Message-passing executor
// ---------------------------------------------------------------------

/// Tags for the message-passing frame. Public so `pvr-verify`'s tag
/// discipline checks can assert that distinct pipeline stages never
/// share a tag (wildcard receives on one stage must not be able to
/// match another stage's traffic).
pub mod tags {
    pub const IO_SCATTER: u32 = 1;
    pub const FRAGMENT: u32 = 2;
    pub const TILE: u32 = 3;
    /// Ack tags of the fault-tolerant executor (`crate::ft`): each data
    /// stage has a dedicated ack channel so wildcard receives on data
    /// tags can never match acknowledgement traffic.
    pub const IO_ACK: u32 = 4;
    pub const FRAG_ACK: u32 = 5;
    pub const TILE_ACK: u32 = 6;
    /// Recovery-orchestrator tags (`crate::scheduler`): an adoption
    /// request asking a survivor to re-render a dead rank's block, the
    /// late fragment it ships back, the shared ack channel for both,
    /// and the frame-complete broadcast that releases lingering
    /// adopters.
    pub const ADOPT: u32 = 7;
    pub const LATE: u32 = 8;
    pub const REC_ACK: u32 = 9;
    pub const DONE: u32 = 10;

    /// All stage tags, for exhaustive discipline checks.
    pub const ALL: [(u32, &str); 10] = [
        (IO_SCATTER, "io-scatter"),
        (FRAGMENT, "fragment"),
        (TILE, "tile"),
        (IO_ACK, "io-ack"),
        (FRAG_ACK, "fragment-ack"),
        (TILE_ACK, "tile-ack"),
        (ADOPT, "adopt"),
        (LATE, "late"),
        (REC_ACK, "recovery-ack"),
        (DONE, "done"),
    ];
}

/// Serialize a subimage fragment: renderer id, rect, depth, pixels.
/// Fragment wire format tags: dense rows vs run-length sparse spans.
const FRAG_DENSE: u64 = 0;
const FRAG_SPARSE: u64 = 1;

/// Encode a fragment for the message-passing exchange, choosing dense
/// or sparse (run-length spans of non-transparent pixels, see
/// [`pvr_compositing::sparse`]) per fragment by actual encoded size.
/// The sparse body round-trips bit-identically: elided pixels decode to
/// `[0.0; 4]`, which is what they were.
pub(crate) fn encode_fragment(renderer: usize, s: &SubImage) -> Vec<u8> {
    let sparse = pvr_compositing::SparseSubImage::encode(s);
    let dense_body = s.pixels.len() * 16;
    // Real encoded body sizes: per row a span count, per span a start
    // offset + length, per kept pixel four f32s.
    let sparse_body = s.rect.h * 8 + sparse.num_spans() * 16 + sparse.payload_pixels() * 16;

    let mut out = Vec::with_capacity(56 + dense_body.min(sparse_body));
    out.extend((renderer as u64).to_le_bytes());
    out.extend((s.rect.x0 as u64).to_le_bytes());
    out.extend((s.rect.y0 as u64).to_le_bytes());
    out.extend((s.rect.w as u64).to_le_bytes());
    out.extend((s.rect.h as u64).to_le_bytes());
    out.extend(s.depth.to_le_bytes());
    if sparse_body < dense_body {
        out.extend(FRAG_SPARSE.to_le_bytes());
        for row in &sparse.rows {
            out.extend((row.len() as u64).to_le_bytes());
            for span in row {
                out.extend((span.x0 as u64).to_le_bytes());
                out.extend((span.pixels.len() as u64).to_le_bytes());
                for p in &span.pixels {
                    for c in p {
                        out.extend(c.to_le_bytes());
                    }
                }
            }
        }
    } else {
        out.extend(FRAG_DENSE.to_le_bytes());
        for p in &s.pixels {
            for c in p {
                out.extend(c.to_le_bytes());
            }
        }
    }
    out
}

pub(crate) fn decode_fragment(data: &[u8]) -> (usize, SubImage) {
    let u = |i: usize| u64::from_le_bytes(data[i * 8..i * 8 + 8].try_into().unwrap()) as usize;
    let renderer = u(0);
    let rect = pvr_render::image::PixelRect::new(u(1), u(2), u(3), u(4));
    let depth = f64::from_le_bytes(data[40..48].try_into().unwrap());
    let tag = u(6) as u64;
    let body = &data[56..];
    let pix = |q: &[u8]| -> [f32; 4] {
        [
            f32::from_le_bytes(q[0..4].try_into().unwrap()),
            f32::from_le_bytes(q[4..8].try_into().unwrap()),
            f32::from_le_bytes(q[8..12].try_into().unwrap()),
            f32::from_le_bytes(q[12..16].try_into().unwrap()),
        ]
    };
    let pixels = match tag {
        FRAG_DENSE => body.chunks_exact(16).map(pix).collect(),
        FRAG_SPARSE => {
            let mut pixels = vec![[0.0f32; 4]; rect.num_pixels()];
            let mut off = 0usize;
            let word =
                |off: usize| u64::from_le_bytes(body[off..off + 8].try_into().unwrap()) as usize;
            for y in 0..rect.h {
                let nspans = word(off);
                off += 8;
                for _ in 0..nspans {
                    let x0 = word(off);
                    let len = word(off + 8);
                    off += 16;
                    for k in 0..len {
                        pixels[y * rect.w + x0 + k] = pix(&body[off..off + 16]);
                        off += 16;
                    }
                }
            }
            pixels
        }
        t => panic!("unknown fragment format tag {t}"),
    };
    (
        renderer,
        SubImage {
            rect,
            pixels,
            depth,
        },
    )
}

/// Run one frame over real message passing (one thread per rank).
/// Requires a dataset file. Returns rank 0's result; the image is
/// identical to [`run_frame`]'s.
pub fn run_frame_mpi(cfg: &FrameConfig, path: &Path) -> FrameResult {
    run_frame_mpi_opts(cfg, path, pvr_mpisim::RunOptions::default())
        .unwrap_or_else(|e| panic!("mpi frame failed: {e}"))
        .0
}

/// [`run_frame_mpi`] with explicit runtime options — the entry point the
/// verification tooling uses to trace a frame's messages, perturb its
/// wildcard-match order, or replay a recorded order. Returns the frame
/// and, when `opts.trace` is set, the message trace. The composited
/// image is bit-identical across match policies because compositors
/// sort fragments by (depth, renderer) before blending.
pub fn run_frame_mpi_opts(
    cfg: &FrameConfig,
    path: &Path,
    opts: pvr_mpisim::RunOptions,
) -> Result<(FrameResult, Option<pvr_mpisim::trace::TraceLog>), pvr_mpisim::RunError> {
    match drive_frame(
        cfg,
        Some(path),
        Driver {
            plan: FramePlan::standard(),
            exec: ExecChoice::Mpi {
                opts,
                links: LinkMode::Direct,
            },
            flight: pvr_obs::FlightRecorder::disabled(),
        },
    ) {
        Ok(out) => Ok((out.frame, out.trace)),
        Err(crate::ft::FtError::Runtime(e)) => Err(e),
        Err(crate::ft::FtError::Degraded(_)) => unreachable!("plain frames never degrade"),
    }
}

/// [`run_frame_mpi_opts`] that also surfaces the discrete-event
/// scheduler's counters (polls, messages, timer fires, virtual time,
/// peak resident tasks, wall time) — the scale sweeps and `bench_sim`
/// read these to report events/sec at 32K ranks.
pub fn run_frame_mpi_sim(
    cfg: &FrameConfig,
    path: &Path,
    opts: pvr_mpisim::RunOptions,
) -> Result<(FrameResult, Option<pvr_mpisim::SimStats>), pvr_mpisim::RunError> {
    match drive_frame(
        cfg,
        Some(path),
        Driver {
            plan: FramePlan::standard(),
            exec: ExecChoice::Mpi {
                opts,
                links: LinkMode::Direct,
            },
            flight: pvr_obs::FlightRecorder::disabled(),
        },
    ) {
        Ok(out) => Ok((out.frame, out.sim)),
        Err(crate::ft::FtError::Runtime(e)) => Err(e),
        Err(crate::ft::FtError::Degraded(_)) => unreachable!("plain frames never degrade"),
    }
}

/// One fully profiled message-passing frame: the rendered frame, the
/// message trace it ran under, and the span/metric profile derived from
/// that trace.
pub struct ProfiledFrame {
    pub frame: FrameResult,
    pub trace: pvr_mpisim::trace::TraceLog,
    pub profile: pvr_obs::Profile,
}

/// Run one traced frame twice: pass 1 records the actual wildcard match
/// order, pass 2 replays its canonicalized form. The second trace is
/// therefore a deterministic function of the configuration alone —
/// thread scheduling perturbs pass 1 but the canonical replay log maps
/// every schedule in the same equivalence class to one representative,
/// so exporters downstream are byte-for-byte reproducible.
pub fn run_frame_mpi_profiled(
    cfg: &FrameConfig,
    path: &Path,
) -> Result<ProfiledFrame, pvr_mpisim::RunError> {
    use std::sync::Arc;
    let (_, t1) = run_frame_mpi_opts(cfg, path, pvr_mpisim::RunOptions::default().traced())?;
    let replay = Arc::new(pvr_mpisim::trace::ReplayLog::canonical(
        &t1.expect("traced run yields a trace"),
    ));
    let (frame, trace) = run_frame_mpi_opts(
        cfg,
        path,
        pvr_mpisim::RunOptions::default()
            .traced()
            .policy(pvr_mpisim::MatchPolicy::Replay(replay)),
    )?;
    let trace = trace.expect("traced run yields a trace");
    let profile = pvr_obs::profile_from_trace(&trace);
    Ok(ProfiledFrame {
        frame,
        trace,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompositorPolicy;

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("pvr-core-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    #[test]
    fn frame_from_file_matches_synthetic_frame() {
        // Reading the written dataset must give the same image as
        // sampling the field directly (same bytes -> same volumes).
        let mut cfg = FrameConfig::small(24, 32, 8);
        cfg.variable = 2;
        let p = tmp("match.raw");
        write_dataset(&p, &cfg).unwrap();
        let from_file = run_frame(&cfg, Some(&p));
        let synthetic = run_frame(&cfg, None);
        let d = from_file.image.max_abs_diff(&synthetic.image);
        assert!(d < 1e-6, "diff {d}");
        assert!(from_file.io.useful_bytes > 0);
        assert!(
            (from_file.io.data_density - 1.0).abs() < 1e-9,
            "raw density"
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn all_io_modes_produce_the_same_image() {
        let mut base = FrameConfig::small(20, 24, 4);
        base.variable = 2;
        let mut reference: Option<Image> = None;
        for mode in IoMode::ALL {
            let mut cfg = base;
            cfg.io = mode;
            let p = tmp(&format!("mode.{}", mode.name()));
            write_dataset(&p, &cfg).unwrap();
            let res = run_frame(&cfg, Some(&p));
            match &reference {
                None => reference = Some(res.image),
                Some(r) => {
                    // netCDF stores big-endian f32: exact round trip.
                    let d = res.image.max_abs_diff(r);
                    assert!(d < 1e-6, "{}: diff {d}", mode.name());
                }
            }
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn io_mode_densities_are_ordered_like_figure_10() {
        let mut cfg = FrameConfig::small(32, 16, 8);
        cfg.variable = 2;
        let mut density = std::collections::HashMap::new();
        for mode in IoMode::ALL {
            let mut c = cfg;
            c.io = mode;
            let p = tmp(&format!("dens.{}", mode.name()));
            write_dataset(&p, &c).unwrap();
            let res = run_frame(&c, Some(&p));
            density.insert(mode, res.io.data_density);
            std::fs::remove_file(&p).ok();
        }
        // raw ~ 1; untuned netCDF worst; tuned strictly better than
        // untuned; netcdf-64 near raw.
        assert!(density[&IoMode::Raw] > 0.99);
        assert!(density[&IoMode::NetCdf64] > 0.9);
        assert!(density[&IoMode::NetCdfUntuned] < 0.35);
        assert!(density[&IoMode::NetCdfTuned] > density[&IoMode::NetCdfUntuned]);
        assert!(density[&IoMode::Hdf5] < 1.0 && density[&IoMode::Hdf5] > 0.3);
    }

    #[test]
    fn compositor_policy_does_not_change_the_image() {
        let mut cfg = FrameConfig::small(24, 40, 16);
        cfg.variable = 2;
        let a = run_frame(&cfg, None);
        cfg.policy = CompositorPolicy::Fixed(3);
        let b = run_frame(&cfg, None);
        let d = a.image.max_abs_diff(&b.image);
        assert!(d < 1e-5, "diff {d}");
        assert!(b.composite.messages <= a.composite.messages);
    }

    #[test]
    fn mpi_frame_matches_rayon_frame() {
        let mut cfg = FrameConfig::small(20, 24, 8);
        cfg.variable = 2;
        cfg.policy = CompositorPolicy::Fixed(4);
        let p = tmp("mpi.raw");
        write_dataset(&p, &cfg).unwrap();
        let rayon_res = run_frame(&cfg, Some(&p));
        let mpi_res = run_frame_mpi(&cfg, &p);
        let d = mpi_res.image.max_abs_diff(&rayon_res.image);
        assert!(d < 1e-6, "diff {d}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn mpi_frame_matches_for_netcdf_collective_path() {
        let mut cfg = FrameConfig::small(16, 20, 6);
        cfg.variable = 3;
        cfg.io = IoMode::NetCdfTuned;
        let p = tmp("mpi.nc");
        write_dataset(&p, &cfg).unwrap();
        let rayon_res = run_frame(&cfg, Some(&p));
        let mpi_res = run_frame_mpi(&cfg, &p);
        let d = mpi_res.image.max_abs_diff(&rayon_res.image);
        assert!(d < 1e-6, "diff {d}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn timing_stages_are_populated() {
        let cfg = FrameConfig::small(16, 16, 4);
        let res = run_frame(&cfg, None);
        assert!(res.timing.io >= 0.0);
        assert!(res.timing.render > 0.0);
        assert!(res.timing.composite > 0.0);
        assert!(res.render_samples > 0);
    }

    #[test]
    fn shaded_frame_matches_across_policies() {
        let mut cfg = FrameConfig::small(20, 24, 8);
        cfg.variable = 2;
        cfg.shading = true;
        let a = run_frame(&cfg, None);
        let mut c2 = cfg;
        c2.policy = CompositorPolicy::Fixed(3);
        let b = run_frame(&c2, None);
        let d = a.image.max_abs_diff(&b.image);
        assert!(d < 1e-5, "shaded frames differ across policies: {d}");
        // Shading changes the image versus the unshaded frame.
        let mut c3 = cfg;
        c3.shading = false;
        let c = run_frame(&c3, None);
        assert!(a.image.mean_abs_diff(&c.image) > 1e-4);
    }
}
