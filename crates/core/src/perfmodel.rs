//! Simulated execution at paper scale.
//!
//! The real pipeline cannot run 32K ranks on 1120³…4480³ grids on one
//! machine, so this module prices the *same schedules* — the collective
//! I/O access plan and the direct-send message list the real executors
//! use — on the BG/P machine model:
//!
//! * **I/O** — the two-phase planner runs for real (it only needs the
//!   aggregate extent list) and the calibrated [`StorageModel`] converts
//!   physical bytes and access counts into seconds.
//! * **Rendering** — embarrassingly parallel: total sample count (from
//!   the same geometry the real renderer uses, summarized by a coverage
//!   coefficient) divided over cores at a PPC450-calibrated sample rate,
//!   with a load-imbalance factor for the "minor deviations" the paper
//!   notes.
//! * **Compositing** — the real [`pvr_compositing::Schedule`] is
//!   converted to network flows and priced by the max-min fluid
//!   simulator plus an endpoint cost model. The endpoint model has two
//!   parts: the LogGP per-message overhead + serialization (physical),
//!   and a *small-message queue-collapse* term, quadratic in a node's
//!   message count and gated on message size. The quadratic term is
//!   phenomenological — it stands in for the documented BG MPI
//!   small-message pathologies (unexpected-message queue searching,
//!   alltoall bandwidth collapse below a few hundred bytes; Kumar &
//!   Heidelberger, Almasi et al.) that the paper blames for the original
//!   compositing blow-up — and its two constants are calibrated so the
//!   m=n scheme degrades past 1K cores the way Figure 3 shows, while the
//!   fluid and LogGP terms are first-principles.

use pvr_bgp::flowsim::{FlowSim, FlowSpec, SimParams};
use pvr_bgp::machine::{Machine, MachineConfig};
use pvr_compositing::{build_schedule, ImagePartition, Schedule};
use pvr_formats::Subvolume;
use pvr_pfs::model::StorageModel;
use pvr_pfs::sieve::per_extent_plan;
use pvr_pfs::twophase::two_phase_plan;
use pvr_render::raycast::footprint;
use pvr_render::Camera;
use pvr_volume::BlockDecomposition;

use crate::config::FrameConfig;
use crate::pipeline::default_view;
use crate::timing::FrameTiming;

/// All calibrated constants of the simulated executor.
#[derive(Debug, Clone, Copy)]
pub struct PerfModel {
    pub storage: StorageModel,
    pub net: SimParams,
    /// Ray-casting throughput of one 850 MHz PPC450 core, samples/s.
    /// Calibrated so 1120³/1600² renders in ~0.35 s on 16K cores.
    pub render_rate: f64,
    /// Max/mean per-core work ratio ("minor deviations in the curve are
    /// due to load imbalances").
    pub render_imbalance: f64,
    /// Fraction of `image_pixels x grid_depth` actually sampled (rays
    /// missing the data or terminated do not sample). Measured from the
    /// real renderer on the synthetic supernova.
    pub sample_coeff: f64,
    /// Queue-collapse cost per (message x queued message) at one node.
    pub queue_overhead: f64,
    /// Message size below which queue collapse saturates.
    pub queue_knee: f64,
    /// Cap on the knee/size ratio (keeps the term bounded for tiny
    /// payloads).
    pub queue_cap: f64,
    /// Fixed compositing setup/synchronization cost.
    pub composite_const: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        PerfModel {
            storage: StorageModel::default(),
            net: SimParams {
                batch_tolerance: 0.03,
                ..Default::default()
            },
            render_rate: 316e3,
            render_imbalance: 1.15,
            sample_coeff: 0.55,
            queue_overhead: 0.8e-6,
            queue_knee: 4096.0,
            queue_cap: 16.0,
            composite_const: 0.02,
        }
    }
}

/// Where the `m` compositor ranks live among the `n` renderer ranks —
/// a placement ablation the improved scheme raises: spreading the
/// compositors over the torus avoids concentrating incast hot spots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Compositor `c` is rank `c * n / m` (evenly spread; the default).
    Spread,
    /// Compositor `c` is rank `c` (first `m` ranks, packed into the
    /// torus corner).
    Packed,
}

impl Placement {
    pub fn compositor_rank(self, c: usize, n: usize, m: usize) -> usize {
        match self {
            Placement::Spread => crate::roles::compositor_rank(c, n, m),
            Placement::Packed => c,
        }
    }
}

/// Simulated I/O summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoSimStats {
    pub useful_bytes: u64,
    pub physical_bytes: u64,
    pub accesses: usize,
    pub data_density: f64,
    pub io_nodes: usize,
    pub aggregators: usize,
    pub seconds: f64,
    /// Application-level read bandwidth: useful bytes / seconds — the
    /// metric of Figure 7 and Table II.
    pub read_bandwidth: f64,
}

/// Simulated compositing breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompositeSimStats {
    pub compositors: usize,
    pub messages: usize,
    pub total_bytes: u64,
    /// Nominal message size `4 * pixels / m` (Figure 4's x-axis).
    pub nominal_message_bytes: u64,
    pub fluid_seconds: f64,
    pub endpoint_seconds: f64,
    pub seconds: f64,
    /// total bytes moved / composite seconds (Figure 4's y-axis).
    pub bandwidth: f64,
}

/// One simulated frame.
#[derive(Debug, Clone, Copy)]
pub struct SimFrameResult {
    pub timing: FrameTiming,
    pub io: IoSimStats,
    pub composite: CompositeSimStats,
    pub render_samples: f64,
}

impl PerfModel {
    /// Price the I/O stage: plan the collective read for real, then
    /// convert to seconds with the storage model.
    pub fn simulate_io(&self, cfg: &FrameConfig) -> IoSimStats {
        let machine = Machine::new(MachineConfig::vn(cfg.nprocs));
        let io_nodes = machine.num_io_nodes();
        let layout = cfg.io.layout(cfg.grid);
        let var = cfg.file_variable();
        let whole = Subvolume::whole(cfg.grid);

        let (useful, physical, accesses, naggr) = if layout.collective() {
            let aggregate = layout.extents(var, &whole);
            let naggr = StorageModel::default_aggregators(cfg.nprocs, io_nodes);
            let hints = cfg.io.hints(cfg.grid);
            let plan = two_phase_plan(&aggregate, naggr, &hints);
            (
                plan.useful_bytes,
                plan.physical_bytes,
                plan.accesses.len(),
                naggr,
            )
        } else {
            // Independent chunked reads: every rank is a client.
            let decomp = BlockDecomposition::new(cfg.grid, cfg.nprocs);
            let per_process: Vec<Vec<pvr_formats::Extent>> = decomp
                .blocks()
                .iter()
                .map(|b| layout.physical_extents(var, &decomp.with_ghost(b, 1)))
                .collect();
            let plan = per_extent_plan(&per_process);
            let useful: u64 = decomp
                .blocks()
                .iter()
                .map(|b| decomp.with_ghost(b, 1).bytes())
                .sum();
            // 11 tiny metadata reads per process on open (from the
            // paper's HDF5 logs).
            let accesses = plan.accesses.len() + 11 * cfg.nprocs;
            (useful, plan.physical_bytes, accesses, cfg.nprocs.min(4096))
        };

        let read = self.storage.read_time(physical, accesses, io_nodes, naggr);
        let exchange = if layout.collective() {
            self.storage.exchange_time(useful, machine.num_nodes())
        } else {
            0.0
        };
        let seconds = read + exchange;
        IoSimStats {
            useful_bytes: useful,
            physical_bytes: physical,
            accesses,
            data_density: useful as f64 / physical.max(1) as f64,
            io_nodes,
            aggregators: naggr,
            seconds,
            read_bandwidth: useful as f64 / seconds,
        }
    }

    /// Price the rendering stage.
    pub fn simulate_render(&self, cfg: &FrameConfig) -> (f64, f64) {
        let samples =
            self.sample_coeff * cfg.image.0 as f64 * cfg.image.1 as f64 * cfg.grid[2] as f64
                / cfg.step;
        let per_core = samples / cfg.nprocs as f64 * self.render_imbalance;
        (per_core / self.render_rate, samples)
    }

    /// Build the real direct-send schedule for a frame configuration.
    pub fn schedule_for(&self, cfg: &FrameConfig) -> Schedule {
        let decomp = BlockDecomposition::new(cfg.grid, cfg.nprocs);
        let camera = Camera::orthographic(cfg.grid, default_view(), cfg.image.0, cfg.image.1);
        let footprints: Vec<_> = decomp
            .blocks()
            .iter()
            .map(|b| footprint(&camera, b.sub.offset, b.sub.end(), cfg.image))
            .collect();
        let m = cfg.policy.compositors(cfg.nprocs);
        build_schedule(
            &footprints,
            ImagePartition::new(cfg.image.0, cfg.image.1, m),
        )
    }

    /// Price one bulk-synchronous message phase (rank-level messages)
    /// on the machine: fluid network time + endpoint cost (LogGP linear
    /// part and the small-message queue-collapse term; module docs).
    /// Returns `(fluid_s, endpoint_s, total_bytes)`.
    pub fn price_phase(&self, machine: &Machine, msgs: &[(usize, usize, u64)]) -> (f64, f64, u64) {
        let nodes = machine.num_nodes();
        let mut specs: Vec<FlowSpec> = Vec::with_capacity(msgs.len());
        let mut node_msgs = vec![0u64; nodes];
        let mut node_bytes = vec![0u64; nodes];
        let mut total_bytes = 0u64;
        for &(from, to, bytes) in msgs {
            let src = machine.node_of_rank(from);
            let dst = machine.node_of_rank(to);
            // Quantize flow sizes to a ~10% geometric grid: flows of
            // equal size and rate then complete in one simulation event,
            // which keeps the event count of heterogeneous direct-send
            // schedules small at a bounded (<10%) per-flow time error.
            let q = if bytes > 16 {
                let step = 1.1f64;
                let k = (bytes as f64).ln() / step.ln();
                step.powf(k.round()) as u64
            } else {
                bytes
            };
            specs.push(FlowSpec::new(src, dst, q));
            node_msgs[src] += 1;
            node_bytes[src] += bytes;
            node_msgs[dst] += 1;
            node_bytes[dst] += bytes;
            total_bytes += bytes;
        }

        let mut endpoint = 0.0f64;
        for node in 0..nodes {
            let mcount = node_msgs[node] as f64;
            if mcount == 0.0 {
                continue;
            }
            let avg_bytes = node_bytes[node] as f64 / mcount;
            let linear =
                mcount * self.net.msg_overhead + node_bytes[node] as f64 / self.net.link_bw;
            // Queue collapse engages only below the knee (avg message
            // under ~4 KB) and grows with how far below it the messages
            // sit — matching the measured cliff in the Blue Gene
            // all-to-all studies, where multi-KB messages behave and
            // sub-KB messages fall off by orders of magnitude.
            let smallness =
                ((self.queue_knee / avg_bytes.max(1.0)).min(self.queue_cap) - 1.0).max(0.0);
            let queue = mcount * mcount * self.queue_overhead * smallness;
            endpoint = endpoint.max(linear + queue);
        }

        // Fluid network time. Exact event simulation for small phases
        // (where the network can actually be the bottleneck); beyond
        // ~10K flows the max-link load bound is used — for these
        // near-symmetric direct-send patterns it is tight to within a
        // small factor, and the measured breakdowns show the endpoint
        // term dominating by 10-100x there anyway.
        let fluid = if msgs.len() > 10_000 {
            FlowSim::with_params(machine.torus(), self.net).max_link_time(&specs)
        } else {
            FlowSim::with_params(machine.torus(), self.net)
                .run(&specs)
                .net_makespan
        };
        (fluid, endpoint, total_bytes)
    }

    /// Price the compositing stage for a given schedule, with
    /// compositor ranks placed by `placement`.
    pub fn simulate_composite_placed(
        &self,
        cfg: &FrameConfig,
        schedule: &Schedule,
        placement: Placement,
    ) -> CompositeSimStats {
        let machine = Machine::new(MachineConfig::vn(cfg.nprocs));
        let n = cfg.nprocs;
        let m = schedule.partition.m();

        let msgs: Vec<(usize, usize, u64)> = schedule
            .messages
            .iter()
            .map(|msg| {
                (
                    msg.renderer,
                    placement.compositor_rank(msg.compositor, n, m),
                    msg.wire_bytes(),
                )
            })
            .collect();
        let (fluid, endpoint, total_bytes) = self.price_phase(&machine, &msgs);
        let messages = msgs.len();

        // Final-image gather into the root node.
        let image_bytes =
            (cfg.image.0 * cfg.image.1) as u64 * pvr_compositing::WIRE_BYTES_PER_PIXEL;
        let gather = image_bytes as f64 / self.net.link_bw;

        let seconds = self.composite_const + gather + fluid.max(endpoint);
        CompositeSimStats {
            compositors: m,
            messages,
            total_bytes,
            nominal_message_bytes: schedule.nominal_message_bytes(),
            fluid_seconds: fluid,
            endpoint_seconds: endpoint,
            seconds,
            bandwidth: total_bytes as f64 / seconds,
        }
    }

    /// Price the compositing stage with the default (spread) compositor
    /// placement.
    pub fn simulate_composite(&self, cfg: &FrameConfig, schedule: &Schedule) -> CompositeSimStats {
        self.simulate_composite_placed(cfg, schedule, Placement::Spread)
    }

    /// Price a multi-round compositing algorithm (binary swap or
    /// radix-k) from its per-round message lists: rounds are barriers,
    /// so the phase costs add; a final gather ships the image to root.
    pub fn simulate_rounds(
        &self,
        cfg: &FrameConfig,
        rounds: &[Vec<pvr_compositing::radixk::RoundMessage>],
    ) -> CompositeSimStats {
        let machine = Machine::new(MachineConfig::vn(cfg.nprocs));
        let mut fluid = 0.0;
        let mut endpoint = 0.0;
        let mut total_bytes = 0u64;
        let mut messages = 0usize;
        for round in rounds {
            let msgs: Vec<(usize, usize, u64)> =
                round.iter().map(|m| (m.from, m.to, m.bytes)).collect();
            let (f, e, b) = self.price_phase(&machine, &msgs);
            // Within a round network and endpoint work overlap; rounds
            // are separated by the data dependency.
            fluid += f;
            endpoint += e;
            total_bytes += b;
            messages += msgs.len();
        }
        let image_bytes =
            (cfg.image.0 * cfg.image.1) as u64 * pvr_compositing::WIRE_BYTES_PER_PIXEL;
        let gather = image_bytes as f64 / self.net.link_bw;
        let seconds = self.composite_const + gather + fluid.max(endpoint);
        CompositeSimStats {
            compositors: cfg.nprocs,
            messages,
            total_bytes,
            nominal_message_bytes: if messages > 0 {
                total_bytes / messages as u64
            } else {
                0
            },
            fluid_seconds: fluid,
            endpoint_seconds: endpoint,
            seconds,
            bandwidth: if seconds > 0.0 {
                total_bytes as f64 / seconds
            } else {
                0.0
            },
        }
    }

    /// Simulate a complete frame.
    pub fn simulate(&self, cfg: &FrameConfig) -> SimFrameResult {
        let io = self.simulate_io(cfg);
        let (render_s, samples) = self.simulate_render(cfg);
        let schedule = self.schedule_for(cfg);
        let composite = self.simulate_composite(cfg, &schedule);
        SimFrameResult {
            timing: FrameTiming {
                io: io.seconds,
                render: render_s,
                composite: composite.seconds,
                ..Default::default()
            },
            io,
            composite,
            render_samples: samples,
        }
    }

    /// The theoretical peak aggregate bandwidth for `n` concurrently
    /// communicating cores exchanging messages of `bytes` — the "peak"
    /// reference line of Figure 4.
    pub fn peak_aggregate_bandwidth(&self, n: usize, bytes: u64) -> f64 {
        let eff = bytes as f64 / (bytes as f64 + self.net.msg_overhead * self.net.link_bw);
        n as f64 * self.net.link_bw * eff
    }
}

/// Simulate one frame with the default calibrated model.
pub fn simulate_frame(cfg: &FrameConfig) -> SimFrameResult {
    PerfModel::default().simulate(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompositorPolicy, IoMode};

    #[test]
    fn best_frame_time_near_paper_at_16k() {
        // Paper: best all-inclusive frame 5.9 s at 16K cores;
        // vis-only 0.6 s.
        let cfg = FrameConfig::paper_1120(16384);
        let r = simulate_frame(&cfg);
        let total = r.timing.total();
        assert!(total > 4.0 && total < 9.0, "total {total}");
        let vis = r.timing.vis_only();
        assert!(vis > 0.2 && vis < 1.2, "vis-only {vis}");
    }

    #[test]
    fn render_scales_linearly() {
        let m = PerfModel::default();
        let (t64, _) = m.simulate_render(&FrameConfig::paper_1120(64));
        let (t16k, _) = m.simulate_render(&FrameConfig::paper_1120(16384));
        let ratio = t64 / t16k;
        assert!((ratio - 256.0).abs() < 1.0, "ratio {ratio}");
        assert!(t64 > 50.0 && t64 < 150.0, "t64 {t64}");
    }

    #[test]
    fn original_composite_blows_up_beyond_1k() {
        // Figure 3: original compositing roughly constant to 1K cores,
        // then rises sharply; improved stays low.
        let model = PerfModel::default();
        let t = |n: usize, policy: CompositorPolicy| {
            let mut cfg = FrameConfig::paper_1120(n);
            cfg.policy = policy;
            let sched = model.schedule_for(&cfg);
            model.simulate_composite(&cfg, &sched).seconds
        };
        let orig_256 = t(256, CompositorPolicy::Original);
        let orig_1k = t(1024, CompositorPolicy::Original);
        let orig_32k = t(32768, CompositorPolicy::Original);
        let impr_32k = t(32768, CompositorPolicy::Improved);
        // Flat-ish region.
        assert!(orig_1k < orig_256 * 4.0, "256: {orig_256}, 1K: {orig_1k}");
        // Blow-up and the paper's ~30x improvement at 32K.
        let ratio = orig_32k / impr_32k;
        assert!(orig_32k > 1.0, "original at 32K only {orig_32k}s");
        assert!(ratio > 10.0 && ratio < 100.0, "improvement ratio {ratio}");
    }

    #[test]
    fn io_dominates_at_scale() {
        // Figure 6 / Table II: >= 90% of frame time is I/O at large
        // data and core counts.
        let r = simulate_frame(&FrameConfig::paper_2240(8192));
        assert!(
            r.timing.io_percent() > 90.0,
            "%io {}",
            r.timing.io_percent()
        );
        let r = simulate_frame(&FrameConfig::paper_4480(32768));
        assert!(
            r.timing.io_percent() > 90.0,
            "%io {}",
            r.timing.io_percent()
        );
    }

    #[test]
    fn table2_read_bandwidths() {
        // The six Table II cells, within modeling tolerance (~25%).
        let cases = [
            (FrameConfig::paper_2240(8192), 0.87),
            (FrameConfig::paper_2240(16384), 1.02),
            (FrameConfig::paper_2240(32768), 1.26),
            (FrameConfig::paper_4480(8192), 1.13),
            (FrameConfig::paper_4480(16384), 1.30),
            (FrameConfig::paper_4480(32768), 1.63),
        ];
        for (cfg, paper_gbs) in cases {
            let io = PerfModel::default().simulate_io(&cfg);
            let got = io.read_bandwidth / 1e9;
            let err = (got - paper_gbs).abs() / paper_gbs;
            assert!(
                err < 0.25,
                "{:?} cores {}: {got:.2} vs {paper_gbs} GB/s",
                cfg.grid,
                cfg.nprocs
            );
        }
    }

    #[test]
    fn netcdf_modes_are_slower_than_raw() {
        // Figure 7 ordering at 2K cores.
        let model = PerfModel::default();
        let bw = |mode: IoMode| {
            let mut cfg = FrameConfig::paper_1120(2048);
            cfg.io = mode;
            model.simulate_io(&cfg).read_bandwidth
        };
        let raw = bw(IoMode::Raw);
        let untuned = bw(IoMode::NetCdfUntuned);
        let tuned = bw(IoMode::NetCdfTuned);
        assert!(raw / untuned > 2.5, "raw/untuned {}", raw / untuned);
        assert!(tuned / untuned > 1.5, "tuned/untuned {}", tuned / untuned);
        assert!(raw > tuned, "raw {raw} vs tuned {tuned}");
    }

    #[test]
    fn composite_bandwidth_below_peak() {
        let model = PerfModel::default();
        for n in [256usize, 4096, 32768] {
            let mut cfg = FrameConfig::paper_1120(n);
            cfg.policy = CompositorPolicy::Original;
            let sched = model.schedule_for(&cfg);
            let c = model.simulate_composite(&cfg, &sched);
            let peak = model.peak_aggregate_bandwidth(n, c.nominal_message_bytes);
            assert!(c.bandwidth < peak, "n={n}: {} !< {peak}", c.bandwidth);
        }
    }

    #[test]
    fn frame_improvement_from_compositor_limiting() {
        // Paper: frame time decreases ~24% at 32K by limiting
        // compositors.
        let mut orig = FrameConfig::paper_1120(32768);
        orig.policy = CompositorPolicy::Original;
        let mut impr = orig;
        impr.policy = CompositorPolicy::Improved;
        let t_orig = simulate_frame(&orig).timing.total();
        let t_impr = simulate_frame(&impr).timing.total();
        let gain = (t_orig - t_impr) / t_orig;
        assert!(gain > 0.10 && gain < 0.60, "gain {gain}");
    }
}
