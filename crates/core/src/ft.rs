//! Fault-tolerant end-to-end execution.
//!
//! [`run_frame_mpi_ft`] is the same stage-graph frame as
//! [`crate::pipeline::run_frame_mpi`] — one driver,
//! [`crate::scheduler::drive_frame`] — configured for a hostile
//! machine: every receive has a deadline, every data message travels
//! through the `pvr-faults` link layer (checksummed frames, positive
//! acks, bounded exponential-backoff retransmission, duplicate
//! suppression), storage reads retry and fail over to stripe replicas,
//! and the compositing stage produces a per-tile [`CompletenessMap`]
//! instead of silently hanging on missing input.
//!
//! The contract, verified by the integration tests and the
//! `fault_sweep` benchmark:
//!
//! * **Transient faults heal exactly.** If every injected fault is
//!   survivable (dropped attempts < retry budget, stragglers < stage
//!   deadline, down servers covered by replicas), the frame is
//!   bit-identical to the fault-free run and completeness is 1.0 —
//!   retransmitted frames carry identical bodies and compositors blend
//!   in a canonical (depth, renderer) order, so recovery leaves no
//!   pixel trace.
//! * **Permanent faults degrade, never hang.** Crashed ranks, dead
//!   links, and unreplicated server loss surface as completeness < 1.0
//!   with the missing area attributed to specific tiles, and the run
//!   terminates within its stage deadlines — no barrier is ever posted
//!   and no receive is untimed, so the mpisim deadlock detector and
//!   watchdog stay quiet.
//! * **Everything replays.** All fault behaviour derives from
//!   `(seed, FaultPlan)`; a run with the same plan and policy produces
//!   the same image and the same completeness map.

use std::path::Path;
use std::time::{Duration, Instant};

use rayon::prelude::*;

use pvr_compositing::completeness::CompletenessMap;
use pvr_compositing::{composite_direct_send_degraded, ImagePartition};
use pvr_faults::{FaultPlan, RankAction, RecoveryCounters, RecoveryPolicy, Stage};
use pvr_obs::FlightRecorder;
use pvr_pfs::StripedStore;
use pvr_render::image::{Image, SubImage};
use pvr_render::raycast::{render_block, BlockDomain};
use pvr_render::Camera;

use crate::config::FrameConfig;
use crate::perfmodel::PerfModel;
use crate::pipeline::{
    decode_volume, default_view, geometry, read_frame_bytes, render_opts, transfer_for, FrameResult,
};
use crate::recovery::{
    adopter_of, block_cost, effective_policy, render_loads, HealDecision, RecoveryBudget,
};
use crate::scheduler::{drive_frame, Driver, ExecChoice, FramePlan, LinkMode};
use crate::timing::{FrameTiming, Stopwatch};

/// A striped-store description matched to laptop-scale test files: 8
/// servers with 64 KiB stripes, so even a few-megabyte dataset spreads
/// across every server and per-server faults have distinct footprints.
/// (The default [`StripedStore`] models ANL's 4 MiB stripes, which
/// would put an entire small test file on server 0.)
pub fn laptop_store() -> StripedStore {
    StripedStore {
        servers: 8,
        stripe_unit: 64 << 10,
        server_bw: 370.0e6,
        request_overhead: 0.5e-3,
    }
}

/// A frame that completed (possibly with degraded content).
#[derive(Debug)]
pub struct FtFrameResult {
    pub frame: FrameResult,
    /// Per-tile fraction of expected composited area that arrived.
    pub completeness: CompletenessMap,
}

/// A frame that completed but lost content permanently.
#[derive(Debug)]
pub struct DegradedFrame {
    pub image: Image,
    pub completeness: CompletenessMap,
    pub counters: RecoveryCounters,
    pub timing: FrameTiming,
}

/// Why a fault-tolerant frame did not produce a pristine image.
#[derive(Debug)]
pub enum FtError {
    /// The world itself failed (deadlock report or watchdog stall) —
    /// under the ft protocol this indicates a bug, and the recovery
    /// proptests assert it never happens.
    Runtime(pvr_mpisim::RunError),
    /// The frame completed with completeness < 1.0 (strict mode only).
    Degraded(Box<DegradedFrame>),
}

impl std::fmt::Display for FtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtError::Runtime(e) => write!(f, "runtime failure: {e}"),
            FtError::Degraded(d) => write!(
                f,
                "degraded frame: completeness {:.4}, {} tile(s) incomplete",
                d.completeness.frame_fraction(),
                d.completeness
                    .tiles
                    .iter()
                    .filter(|t| t.fraction() < 1.0)
                    .count()
            ),
        }
    }
}

impl std::error::Error for FtError {}

/// Run one fault-tolerant frame with default store and runtime options.
pub fn run_frame_mpi_ft(
    cfg: &FrameConfig,
    path: &Path,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
) -> Result<FtFrameResult, FtError> {
    run_frame_mpi_ft_opts(
        cfg,
        path,
        plan,
        policy,
        &laptop_store(),
        pvr_mpisim::RunOptions::default(),
    )
    .map(|(r, _)| r)
}

/// Strict variant: a frame whose completeness is less than 1.0 becomes
/// a typed [`FtError::Degraded`] carrying the partial image and the
/// recovery record, instead of a success.
pub fn run_frame_mpi_ft_strict(
    cfg: &FrameConfig,
    path: &Path,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
) -> Result<FtFrameResult, FtError> {
    let res = run_frame_mpi_ft(cfg, path, plan, policy)?;
    if res.completeness.fully_complete() {
        Ok(res)
    } else {
        Err(FtError::Degraded(Box::new(DegradedFrame {
            completeness: res.completeness,
            counters: res.frame.timing.recovery,
            timing: res.frame.timing,
            image: res.frame.image,
        })))
    }
}

/// Full-control variant: explicit store model and [`RunOptions`]
/// (tracing, match policy, watchdog). The plan's link faults are
/// installed as the transport injector automatically.
///
/// [`RunOptions`]: pvr_mpisim::RunOptions
pub fn run_frame_mpi_ft_opts(
    cfg: &FrameConfig,
    path: &Path,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    store: &StripedStore,
    opts: pvr_mpisim::RunOptions,
) -> Result<(FtFrameResult, Option<pvr_mpisim::trace::TraceLog>), FtError> {
    run_frame_mpi_ft_obs(
        cfg,
        path,
        plan,
        policy,
        store,
        opts,
        &FlightRecorder::disabled(),
    )
}

/// [`run_frame_mpi_ft_opts`] with an attached flight recorder: the
/// frame's SLO verdict, located incidents, and — on a violation,
/// crash, or degradation-ladder activation — the anomaly dump land on
/// `flight` for the caller to drain.
pub fn run_frame_mpi_ft_obs(
    cfg: &FrameConfig,
    path: &Path,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    store: &StripedStore,
    opts: pvr_mpisim::RunOptions,
    flight: &FlightRecorder,
) -> Result<(FtFrameResult, Option<pvr_mpisim::trace::TraceLog>), FtError> {
    // Receive deadlines, the suspicion threshold, and the frame budget
    // are derived from the calibrated perf model (config overrides
    // win); the caller's policy acts as a floor.
    let policy = effective_policy(cfg, policy);
    let out = drive_frame(
        cfg,
        Some(path),
        Driver {
            plan: FramePlan::standard(),
            exec: ExecChoice::Mpi {
                opts,
                links: LinkMode::reliable(plan.clone(), policy, *store),
            },
            flight: flight.clone(),
        },
    )?;
    Ok((
        FtFrameResult {
            frame: out.frame,
            completeness: out
                .completeness
                .expect("reliable frames carry completeness"),
        },
        out.trace,
    ))
}

/// Fault-tolerant frame on the data-parallel executor: the shared
/// address space has no links to drop, so the plan's rank faults are
/// what matters — a crashed rank loses its rendered block before
/// compositing. The same recovery orchestrator heals it: the
/// deterministic seeded load-aware assignment ([`adopter_of`]) picks a
/// surviving adopter, the degradation ladder ([`RecoveryBudget`])
/// charges the re-render's modeled cost and picks the rung (full heal →
/// bit-identical pixels; coarse heal → approximate pixels with the
/// error bound recorded in [`FrameTiming::error_bound`]; skip → the
/// hole shows up in the completeness map). Stragglers past the derived
/// suspicion window fire a hedged duplicate whose loss to first-wins
/// dedup is a no-op — counted, never blended. Everything replays from
/// `(seed, plan, config)`.
pub fn run_frame_rayon_ft(
    cfg: &FrameConfig,
    path: &Path,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
) -> Result<FtFrameResult, FtError> {
    run_frame_rayon_ft_obs(cfg, path, plan, policy, &FlightRecorder::disabled())
}

/// [`run_frame_rayon_ft`] with an attached flight recorder. Every
/// flight arg on this path is deterministic for a fixed `(seed, plan,
/// config)` — planned ranks, stages, and counter values, never wall
/// seconds — so a manual-clock recorder yields byte-identical anomaly
/// dumps, which is what the golden-file test pins.
pub fn run_frame_rayon_ft_obs(
    cfg: &FrameConfig,
    path: &Path,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    flight: &FlightRecorder,
) -> Result<FtFrameResult, FtError> {
    let policy = effective_policy(cfg, policy);
    flight.begin_frame();
    flight.instant(
        0,
        "frame.begin",
        pvr_obs::Args::two("ranks", cfg.nprocs as u64, "seed", plan.seed),
    );
    let t0 = Instant::now();
    let mut sw = Stopwatch::start();
    let mut timing = FrameTiming::default();
    let mut counters = RecoveryCounters::default();
    let n = cfg.nprocs;
    let geo = geometry(cfg);
    let layout = cfg.io.layout(cfg.grid);
    let endian = layout.endian();
    let (bytes, io) = read_frame_bytes(cfg, path, None).expect("dataset file");
    timing.io = sw.lap();

    // A crash at any stage loses the rank's block before compositing.
    const STAGES: [Stage; 3] = [Stage::Io, Stage::Render, Stage::Composite];
    let lost: Vec<usize> = (0..n)
        .filter(|&r| {
            STAGES
                .iter()
                .any(|&s| matches!(plan.rank_fault(r, s), Some(RankAction::Crash)))
        })
        .collect();
    counters.crashed_ranks = lost.len() as u64;
    // Located SLO incidents: planned crashes and suspicious straggles
    // up front, ladder activations as the rungs are chosen below.
    let mut incidents = crate::slo::incidents_from_plan(n, plan, policy.suspicion);

    // Orphan adoption: assign each lost block to a survivor and let the
    // ladder pick the rung. Greedy-balanced: each adoption bumps the
    // adopter's load before the next assignment.
    let model = PerfModel::default();
    let mut loads = render_loads(cfg, &model, &geo.owned);
    let mut budget = RecoveryBudget::for_frame(cfg, &policy);
    let survivors: Vec<usize> = (0..n).filter(|r| !lost.contains(r)).collect();
    let mut decision: Vec<Option<HealDecision>> = vec![None; n];
    let mut error_bound = 0.0f64;
    let image_px = cfg.image.0 as f64 * cfg.image.1 as f64;
    let camera = Camera::orthographic(cfg.grid, default_view(), cfg.image.0, cfg.image.1);
    for &orphan in &lost {
        let Some(adopter) = adopter_of(orphan, &lost, &survivors, plan.seed, &loads) else {
            decision[orphan] = Some(HealDecision::Skip);
            incidents.push(crate::slo::Incident {
                rank: orphan,
                stage: 1,
                kind: crate::slo::IncidentKind::DegradedLadder,
            });
            continue;
        };
        let est = block_cost(cfg, &model, &geo.owned[orphan]);
        let d = budget.charge(est, policy.coarse_step_factor);
        if d != HealDecision::Full {
            incidents.push(crate::slo::Incident {
                rank: orphan,
                stage: 1,
                kind: crate::slo::IncidentKind::DegradedLadder,
            });
        }
        if d != HealDecision::Skip {
            counters.adopted_blocks += 1;
            counters.recovery_bytes += bytes[orphan].len() as u64;
            loads[adopter] += est;
        }
        if d == HealDecision::Coarse {
            counters.approx_blocks += 1;
            let fp = pvr_render::raycast::footprint(
                &camera,
                geo.owned[orphan].offset,
                geo.owned[orphan].end(),
                cfg.image,
            );
            error_bound += fp.num_pixels() as f64 / image_px;
        }
        decision[orphan] = Some(d);
    }
    // Straggler hedging: a straggle past the suspicion window fires a
    // speculative duplicate render; first-wins dedup discards whichever
    // copy loses the race, so the hedge is counted and invisible.
    for r in 0..n {
        for s in STAGES {
            if let Some(RankAction::StraggleMs(ms)) = plan.rank_fault(r, s) {
                if Duration::from_millis(ms) >= policy.suspicion {
                    counters.hedged_renders += 1;
                }
            }
        }
    }

    // Render survivors and heals, each at the rung the ledger chose.
    let decision = &decision;
    let rendered: Vec<(SubImage, pvr_render::raycast::RenderStats, Option<f64>)> = (0..n)
        .into_par_iter()
        .map(|r| {
            let dom = BlockDomain {
                grid: cfg.grid,
                owned: geo.owned[r],
                stored: geo.stored[r],
            };
            match decision[r] {
                Some(HealDecision::Skip) => {
                    let fp = pvr_render::raycast::footprint(
                        &camera,
                        geo.owned[r].offset,
                        geo.owned[r].end(),
                        cfg.image,
                    );
                    (SubImage::transparent(fp, 0.0), Default::default(), None)
                }
                d => {
                    let tf = transfer_for(cfg);
                    let mut ropts = render_opts(cfg);
                    if d == Some(HealDecision::Coarse) {
                        ropts.step *= policy.coarse_step_factor;
                    }
                    let vol = decode_volume(&bytes[r], &geo.stored[r], endian);
                    let (sub, st) = render_block(&vol, &dom, &camera, &tf, &ropts);
                    (sub, st, Some(1.0))
                }
            }
        })
        .collect();
    timing.render = sw.lap();

    let mut render = pvr_render::raycast::RenderStats::default();
    for (_, st, _) in &rendered {
        render.merge(st);
    }
    let present: Vec<Option<f64>> = rendered.iter().map(|(_, _, q)| *q).collect();
    let subs: Vec<SubImage> = rendered.into_iter().map(|(s, _, _)| s).collect();

    let partition = ImagePartition::new(cfg.image.0, cfg.image.1, cfg.compositors());
    let (image, stats, completeness) = composite_direct_send_degraded(&subs, partition, &present);
    timing.composite = sw.lap();
    timing.recovery = counters;
    timing.error_bound = error_bound.min(1.0);
    timing.wall = t0.elapsed().as_secs_f64();
    // There is no per-rank stage decomposition in the shared address
    // space: the located incidents carry the attribution (a hedged
    // straggler never shows in the wall clock, but still violates).
    timing.slo = Some(crate::slo::annotate(
        cfg,
        &crate::slo::FrameSample {
            stage_secs: [timing.io, timing.render, timing.composite],
            per_rank: &[],
            incidents: &incidents,
        },
    ));
    if let Some(slo) = &timing.slo {
        crate::slo::record_frame_flight(flight, slo, &incidents, &counters);
    }
    Ok(FtFrameResult {
        frame: FrameResult {
            image,
            timing,
            io,
            render_samples: render.samples,
            render_skipped: render.skipped_samples,
            render_packets: render.packets,
            render_eval_lanes: render.packet_eval_lanes,
            render_eval_slots: render.packet_eval_slots,
            render_terminated: render.terminated_rays,
            render_error_bound: render.error_bound as f64,
            composite: stats,
        },
        completeness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompositorPolicy;
    use crate::pipeline::{run_frame_mpi, tags, write_dataset};
    use pvr_faults::{LinkAction, LinkFault, Pat, RankAction, RankFault, Stage};

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("pvr-ft-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    fn test_cfg() -> FrameConfig {
        let mut cfg = FrameConfig::small(16, 24, 8);
        cfg.variable = 2;
        cfg.policy = CompositorPolicy::Fixed(4);
        cfg
    }

    #[test]
    fn healthy_plan_matches_plain_mpi_bit_for_bit() {
        let cfg = test_cfg();
        let p = tmp("healthy.raw");
        write_dataset(&p, &cfg).unwrap();
        let plain = run_frame_mpi(&cfg, &p);
        let ft =
            run_frame_mpi_ft(&cfg, &p, &FaultPlan::none(), &RecoveryPolicy::fast_test()).unwrap();
        assert_eq!(plain.image.pixels(), ft.frame.image.pixels());
        assert!(ft.completeness.fully_complete());
        // Spurious retransmits can happen under scheduler load (an ack
        // arriving just after its timeout) and are harmless — but
        // nothing may be lost, degraded, or crashed on a healthy plan.
        let rec = ft.frame.timing.recovery;
        assert_eq!(rec.timeouts, 0);
        assert_eq!(rec.corrupt_dropped, 0);
        assert_eq!(rec.degraded_tiles, 0);
        assert_eq!(rec.crashed_ranks, 0);
        assert_eq!(rec.io_retries, 0);
        assert_eq!(rec.io_failovers, 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn transient_drops_recover_bit_identically_with_retries() {
        let cfg = test_cfg();
        let p = tmp("transient.raw");
        write_dataset(&p, &cfg).unwrap();
        let plain = run_frame_mpi(&cfg, &p);
        let plan = FaultPlan {
            seed: 5,
            links: vec![
                LinkFault {
                    src: Pat::Is(1),
                    dst: Pat::Any,
                    tag: Some(tags::FRAGMENT),
                    action: LinkAction::DropFirst(2),
                },
                LinkFault {
                    src: Pat::Any,
                    dst: Pat::Is(2),
                    tag: Some(tags::IO_SCATTER),
                    action: LinkAction::DropFirst(1),
                },
            ],
            ranks: vec![RankFault {
                rank: 3,
                stage: Stage::Render,
                action: RankAction::StraggleMs(30),
            }],
            ..FaultPlan::default()
        };
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &RecoveryPolicy::fast_test()).unwrap();
        assert_eq!(
            plain.image.pixels(),
            ft.frame.image.pixels(),
            "transient faults must heal without a pixel trace"
        );
        assert!(ft.completeness.fully_complete());
        assert!(ft.frame.timing.recovery.retries > 0, "recovery did work");
        assert_eq!(ft.frame.timing.recovery.timeouts, 0);
        std::fs::remove_file(&p).ok();
    }

    fn crash_plan(rank: usize, stage: Stage, seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ranks: vec![RankFault {
                rank,
                stage,
                action: RankAction::Crash,
            }],
            ..FaultPlan::default()
        }
    }

    #[test]
    fn crashed_renderer_heals_bit_identically_via_adoption() {
        let cfg = test_cfg();
        let p = tmp("crash.raw");
        write_dataset(&p, &cfg).unwrap();
        let plain = run_frame_mpi(&cfg, &p);
        let plan = crash_plan(5, Stage::Composite, 9);
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &RecoveryPolicy::fast_test()).unwrap();
        assert_eq!(
            plain.image.pixels(),
            ft.frame.image.pixels(),
            "a single crashed renderer must heal without a pixel trace"
        );
        assert!(ft.completeness.fully_complete());
        let rec = ft.frame.timing.recovery;
        assert_eq!(rec.crashed_ranks, 1);
        assert!(rec.adopted_blocks >= 1, "a survivor adopted the block");
        assert!(
            rec.late_fragments >= 1,
            "the heal travelled as late fragments"
        );
        assert!(rec.recovery_bytes > 0);
        assert_eq!(rec.degraded_tiles, 0);
        assert_eq!(ft.frame.timing.error_bound, 0.0, "full heal has no error");
        // Strict mode accepts the healed frame.
        run_frame_mpi_ft_strict(&cfg, &p, &plan, &RecoveryPolicy::fast_test())
            .expect("healed frame passes strict mode");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn crashed_compositor_tile_is_rebuilt_by_rank0() {
        let cfg = test_cfg();
        let p = tmp("crash-comp.raw");
        write_dataset(&p, &cfg).unwrap();
        let plain = run_frame_mpi(&cfg, &p);
        // Rank 6 owns a tile under Fixed(4) on 8 ranks (c*8/4 = 0,2,4,6).
        let plan = crash_plan(6, Stage::Composite, 11);
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &RecoveryPolicy::fast_test()).unwrap();
        assert_eq!(
            plain.image.pixels(),
            ft.frame.image.pixels(),
            "a dead compositor's tile is rebuilt at the root, bit-identically"
        );
        assert!(ft.completeness.fully_complete());
        let rec = ft.frame.timing.recovery;
        assert_eq!(rec.crashed_ranks, 1);
        assert!(rec.adopted_tiles >= 1, "rank 0 rebuilt the orphan tile");
        assert!(rec.adopted_blocks >= 1);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn straggler_is_hedged_and_the_frame_does_not_wait_for_it() {
        let cfg = test_cfg();
        let p = tmp("straggle.raw");
        write_dataset(&p, &cfg).unwrap();
        let plain = run_frame_mpi(&cfg, &p);
        let plan = FaultPlan {
            seed: 4,
            ranks: vec![RankFault {
                rank: 3,
                stage: Stage::Composite,
                action: RankAction::StraggleMs(1200),
            }],
            ..FaultPlan::default()
        };
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &RecoveryPolicy::fast_test()).unwrap();
        assert_eq!(
            plain.image.pixels(),
            ft.frame.image.pixels(),
            "hedged duplicate renders are deterministic: the race cannot show"
        );
        assert!(ft.completeness.fully_complete());
        let rec = ft.frame.timing.recovery;
        assert!(rec.hedged_renders >= 1, "suspicion fired a hedge");
        assert!(
            ft.frame.timing.wall < 1.2,
            "the frame must not wait out the {}s straggle (wall {}s)",
            1.2,
            ft.frame.timing.wall
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn degradation_ladder_steps_coarse_then_skip_on_a_shrinking_budget() {
        let cfg = test_cfg();
        let p = tmp("ladder.raw");
        write_dataset(&p, &cfg).unwrap();
        let plan = crash_plan(5, Stage::Composite, 9);
        let model = crate::perfmodel::PerfModel::default();
        let owned: Vec<_> = crate::pipeline::geometry(&cfg).owned;
        let est = crate::recovery::block_cost(&cfg, &model, &owned[5]);
        assert!(est > 0.0);

        // Budget in (est/4, est): only the coarse rung fits. The frame
        // stays complete but reports an explicit error bound.
        let mut policy = RecoveryPolicy::fast_test();
        policy.frame_budget = Some(est * 0.5);
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &policy).unwrap();
        assert!(ft.completeness.fully_complete());
        let rec = ft.frame.timing.recovery;
        assert!(rec.approx_blocks >= 1, "coarse rung taken");
        assert!(
            ft.frame.timing.error_bound > 0.0,
            "coarse heal reports its error bound"
        );

        // Budget below est/4: the ladder refuses; the hole is explicit
        // in the completeness map and the frame still terminates.
        let mut policy = RecoveryPolicy::fast_test();
        policy.frame_budget = Some(est * 0.1);
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &policy).unwrap();
        assert!(!ft.completeness.fully_complete());
        assert_eq!(ft.frame.timing.recovery.approx_blocks, 0);
        assert_eq!(ft.frame.timing.error_bound, 0.0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn rayon_ft_heals_crashes_and_walks_the_same_ladder() {
        let cfg = test_cfg();
        let p = tmp("rayon-ft.raw");
        write_dataset(&p, &cfg).unwrap();
        let plain = run_frame_mpi(&cfg, &p);
        let plan = crash_plan(5, Stage::Render, 13);

        // Unbounded budget: full heal, bit-identical.
        let ft = run_frame_rayon_ft(&cfg, &p, &plan, &RecoveryPolicy::fast_test()).unwrap();
        assert_eq!(plain.image.pixels(), ft.frame.image.pixels());
        assert!(ft.completeness.fully_complete());
        assert_eq!(ft.frame.timing.recovery.crashed_ranks, 1);
        assert_eq!(ft.frame.timing.recovery.adopted_blocks, 1);

        // Coarse budget: complete with an error bound.
        let model = crate::perfmodel::PerfModel::default();
        let owned: Vec<_> = crate::pipeline::geometry(&cfg).owned;
        let est = crate::recovery::block_cost(&cfg, &model, &owned[5]);
        let mut policy = RecoveryPolicy::fast_test();
        policy.frame_budget = Some(est * 0.5);
        let ft = run_frame_rayon_ft(&cfg, &p, &plan, &policy).unwrap();
        assert!(ft.completeness.fully_complete());
        assert_eq!(ft.frame.timing.recovery.approx_blocks, 1);
        assert!(ft.frame.timing.error_bound > 0.0);

        // No budget: the block is skipped and completeness says so.
        policy.frame_budget = Some(0.0);
        let ft = run_frame_rayon_ft(&cfg, &p, &plan, &policy).unwrap();
        assert!(!ft.completeness.fully_complete());
        assert_eq!(ft.frame.timing.recovery.adopted_blocks, 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn down_server_with_failover_is_invisible_down_without_is_not() {
        let cfg = test_cfg();
        let p = tmp("server.raw");
        write_dataset(&p, &cfg).unwrap();
        let plain = run_frame_mpi(&cfg, &p);
        let plan = FaultPlan {
            seed: 3,
            servers: vec![pvr_faults::ServerFault {
                server: 0,
                action: pvr_faults::ServerAction::Down,
            }],
            ..FaultPlan::default()
        };
        // With failover: bit-identical, replica bytes accounted.
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &RecoveryPolicy::fast_test()).unwrap();
        assert_eq!(plain.image.pixels(), ft.frame.image.pixels());
        assert!(ft.completeness.fully_complete());
        assert!(ft.frame.io.failover_bytes > 0);
        assert!(ft.frame.io.retries > 0);
        assert_eq!(ft.frame.io.unrecovered_bytes, 0);
        // Without failover: data is lost, completeness drops, run ends.
        let mut policy = RecoveryPolicy::fast_test();
        policy.io_failover = false;
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &policy).unwrap();
        assert!(ft.frame.io.unrecovered_bytes > 0);
        assert!(!ft.completeness.fully_complete());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn rank0_crash_yields_empty_frame_with_zero_completeness() {
        let cfg = test_cfg();
        let p = tmp("root.raw");
        write_dataset(&p, &cfg).unwrap();
        let plan = FaultPlan {
            seed: 1,
            ranks: vec![RankFault {
                rank: 0,
                stage: Stage::Io,
                action: RankAction::Crash,
            }],
            ..FaultPlan::default()
        };
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &RecoveryPolicy::fast_test()).unwrap();
        assert!(ft.frame.image.pixels().iter().all(|px| *px == [0.0; 4]));
        assert!(ft.completeness.frame_fraction() < 1.0);
        assert!(ft.frame.timing.recovery.crashed_ranks >= 1);
        std::fs::remove_file(&p).ok();
    }
}
