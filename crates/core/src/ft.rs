//! Fault-tolerant end-to-end execution.
//!
//! [`run_frame_mpi_ft`] is the same stage-graph frame as
//! [`crate::pipeline::run_frame_mpi`] — one driver,
//! [`crate::scheduler::drive_frame`] — configured for a hostile
//! machine: every receive has a deadline, every data message travels
//! through the `pvr-faults` link layer (checksummed frames, positive
//! acks, bounded exponential-backoff retransmission, duplicate
//! suppression), storage reads retry and fail over to stripe replicas,
//! and the compositing stage produces a per-tile [`CompletenessMap`]
//! instead of silently hanging on missing input.
//!
//! The contract, verified by the integration tests and the
//! `fault_sweep` benchmark:
//!
//! * **Transient faults heal exactly.** If every injected fault is
//!   survivable (dropped attempts < retry budget, stragglers < stage
//!   deadline, down servers covered by replicas), the frame is
//!   bit-identical to the fault-free run and completeness is 1.0 —
//!   retransmitted frames carry identical bodies and compositors blend
//!   in a canonical (depth, renderer) order, so recovery leaves no
//!   pixel trace.
//! * **Permanent faults degrade, never hang.** Crashed ranks, dead
//!   links, and unreplicated server loss surface as completeness < 1.0
//!   with the missing area attributed to specific tiles, and the run
//!   terminates within its stage deadlines — no barrier is ever posted
//!   and no receive is untimed, so the mpisim deadlock detector and
//!   watchdog stay quiet.
//! * **Everything replays.** All fault behaviour derives from
//!   `(seed, FaultPlan)`; a run with the same plan and policy produces
//!   the same image and the same completeness map.

use std::path::Path;

use pvr_compositing::completeness::CompletenessMap;
use pvr_faults::{FaultPlan, RecoveryCounters, RecoveryPolicy};
use pvr_pfs::StripedStore;
use pvr_render::image::Image;

use crate::config::FrameConfig;
use crate::pipeline::FrameResult;
use crate::scheduler::{drive_frame, Driver, ExecChoice, FramePlan, LinkMode};
use crate::timing::FrameTiming;

/// A striped-store description matched to laptop-scale test files: 8
/// servers with 64 KiB stripes, so even a few-megabyte dataset spreads
/// across every server and per-server faults have distinct footprints.
/// (The default [`StripedStore`] models ANL's 4 MiB stripes, which
/// would put an entire small test file on server 0.)
pub fn laptop_store() -> StripedStore {
    StripedStore {
        servers: 8,
        stripe_unit: 64 << 10,
        server_bw: 370.0e6,
        request_overhead: 0.5e-3,
    }
}

/// A frame that completed (possibly with degraded content).
#[derive(Debug)]
pub struct FtFrameResult {
    pub frame: FrameResult,
    /// Per-tile fraction of expected composited area that arrived.
    pub completeness: CompletenessMap,
}

/// A frame that completed but lost content permanently.
#[derive(Debug)]
pub struct DegradedFrame {
    pub image: Image,
    pub completeness: CompletenessMap,
    pub counters: RecoveryCounters,
    pub timing: FrameTiming,
}

/// Why a fault-tolerant frame did not produce a pristine image.
#[derive(Debug)]
pub enum FtError {
    /// The world itself failed (deadlock report or watchdog stall) —
    /// under the ft protocol this indicates a bug, and the recovery
    /// proptests assert it never happens.
    Runtime(pvr_mpisim::RunError),
    /// The frame completed with completeness < 1.0 (strict mode only).
    Degraded(Box<DegradedFrame>),
}

impl std::fmt::Display for FtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtError::Runtime(e) => write!(f, "runtime failure: {e}"),
            FtError::Degraded(d) => write!(
                f,
                "degraded frame: completeness {:.4}, {} tile(s) incomplete",
                d.completeness.frame_fraction(),
                d.completeness
                    .tiles
                    .iter()
                    .filter(|t| t.fraction() < 1.0)
                    .count()
            ),
        }
    }
}

impl std::error::Error for FtError {}

/// Run one fault-tolerant frame with default store and runtime options.
pub fn run_frame_mpi_ft(
    cfg: &FrameConfig,
    path: &Path,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
) -> Result<FtFrameResult, FtError> {
    run_frame_mpi_ft_opts(
        cfg,
        path,
        plan,
        policy,
        &laptop_store(),
        pvr_mpisim::RunOptions::default(),
    )
    .map(|(r, _)| r)
}

/// Strict variant: a frame whose completeness is less than 1.0 becomes
/// a typed [`FtError::Degraded`] carrying the partial image and the
/// recovery record, instead of a success.
pub fn run_frame_mpi_ft_strict(
    cfg: &FrameConfig,
    path: &Path,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
) -> Result<FtFrameResult, FtError> {
    let res = run_frame_mpi_ft(cfg, path, plan, policy)?;
    if res.completeness.fully_complete() {
        Ok(res)
    } else {
        Err(FtError::Degraded(Box::new(DegradedFrame {
            completeness: res.completeness,
            counters: res.frame.timing.recovery,
            timing: res.frame.timing,
            image: res.frame.image,
        })))
    }
}

/// Full-control variant: explicit store model and [`RunOptions`]
/// (tracing, match policy, watchdog). The plan's link faults are
/// installed as the transport injector automatically.
///
/// [`RunOptions`]: pvr_mpisim::RunOptions
pub fn run_frame_mpi_ft_opts(
    cfg: &FrameConfig,
    path: &Path,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    store: &StripedStore,
    opts: pvr_mpisim::RunOptions,
) -> Result<(FtFrameResult, Option<pvr_mpisim::trace::TraceLog>), FtError> {
    let out = drive_frame(
        cfg,
        Some(path),
        Driver {
            plan: FramePlan::standard(),
            exec: ExecChoice::Mpi {
                opts,
                links: LinkMode::reliable(plan.clone(), *policy, *store),
            },
        },
    )?;
    Ok((
        FtFrameResult {
            frame: out.frame,
            completeness: out
                .completeness
                .expect("reliable frames carry completeness"),
        },
        out.trace,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompositorPolicy;
    use crate::pipeline::{run_frame_mpi, tags, write_dataset};
    use pvr_faults::{LinkAction, LinkFault, Pat, RankAction, RankFault, Stage};

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("pvr-ft-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    fn test_cfg() -> FrameConfig {
        let mut cfg = FrameConfig::small(16, 24, 8);
        cfg.variable = 2;
        cfg.policy = CompositorPolicy::Fixed(4);
        cfg
    }

    #[test]
    fn healthy_plan_matches_plain_mpi_bit_for_bit() {
        let cfg = test_cfg();
        let p = tmp("healthy.raw");
        write_dataset(&p, &cfg).unwrap();
        let plain = run_frame_mpi(&cfg, &p);
        let ft =
            run_frame_mpi_ft(&cfg, &p, &FaultPlan::none(), &RecoveryPolicy::fast_test()).unwrap();
        assert_eq!(plain.image.pixels(), ft.frame.image.pixels());
        assert!(ft.completeness.fully_complete());
        // Spurious retransmits can happen under scheduler load (an ack
        // arriving just after its timeout) and are harmless — but
        // nothing may be lost, degraded, or crashed on a healthy plan.
        let rec = ft.frame.timing.recovery;
        assert_eq!(rec.timeouts, 0);
        assert_eq!(rec.corrupt_dropped, 0);
        assert_eq!(rec.degraded_tiles, 0);
        assert_eq!(rec.crashed_ranks, 0);
        assert_eq!(rec.io_retries, 0);
        assert_eq!(rec.io_failovers, 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn transient_drops_recover_bit_identically_with_retries() {
        let cfg = test_cfg();
        let p = tmp("transient.raw");
        write_dataset(&p, &cfg).unwrap();
        let plain = run_frame_mpi(&cfg, &p);
        let plan = FaultPlan {
            seed: 5,
            links: vec![
                LinkFault {
                    src: Pat::Is(1),
                    dst: Pat::Any,
                    tag: Some(tags::FRAGMENT),
                    action: LinkAction::DropFirst(2),
                },
                LinkFault {
                    src: Pat::Any,
                    dst: Pat::Is(2),
                    tag: Some(tags::IO_SCATTER),
                    action: LinkAction::DropFirst(1),
                },
            ],
            ranks: vec![RankFault {
                rank: 3,
                stage: Stage::Render,
                action: RankAction::StraggleMs(30),
            }],
            ..FaultPlan::default()
        };
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &RecoveryPolicy::fast_test()).unwrap();
        assert_eq!(
            plain.image.pixels(),
            ft.frame.image.pixels(),
            "transient faults must heal without a pixel trace"
        );
        assert!(ft.completeness.fully_complete());
        assert!(ft.frame.timing.recovery.retries > 0, "recovery did work");
        assert_eq!(ft.frame.timing.recovery.timeouts, 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn crashed_renderer_degrades_its_tiles_and_terminates() {
        let cfg = test_cfg();
        let p = tmp("crash.raw");
        write_dataset(&p, &cfg).unwrap();
        let plan = FaultPlan {
            seed: 9,
            ranks: vec![RankFault {
                rank: 5,
                stage: Stage::Composite,
                action: RankAction::Crash,
            }],
            ..FaultPlan::default()
        };
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &RecoveryPolicy::fast_test()).unwrap();
        assert!(!ft.completeness.fully_complete());
        assert!(ft.completeness.frame_fraction() < 1.0);
        assert!(ft.completeness.frame_fraction() > 0.0);
        assert_eq!(ft.frame.timing.recovery.crashed_ranks, 1);
        // Strict mode surfaces the same run as a typed error.
        match run_frame_mpi_ft_strict(&cfg, &p, &plan, &RecoveryPolicy::fast_test()) {
            Err(FtError::Degraded(d)) => {
                assert!(d.completeness.frame_fraction() < 1.0);
                assert_eq!(d.counters.crashed_ranks, 1);
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn down_server_with_failover_is_invisible_down_without_is_not() {
        let cfg = test_cfg();
        let p = tmp("server.raw");
        write_dataset(&p, &cfg).unwrap();
        let plain = run_frame_mpi(&cfg, &p);
        let plan = FaultPlan {
            seed: 3,
            servers: vec![pvr_faults::ServerFault {
                server: 0,
                action: pvr_faults::ServerAction::Down,
            }],
            ..FaultPlan::default()
        };
        // With failover: bit-identical, replica bytes accounted.
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &RecoveryPolicy::fast_test()).unwrap();
        assert_eq!(plain.image.pixels(), ft.frame.image.pixels());
        assert!(ft.completeness.fully_complete());
        assert!(ft.frame.io.failover_bytes > 0);
        assert!(ft.frame.io.retries > 0);
        assert_eq!(ft.frame.io.unrecovered_bytes, 0);
        // Without failover: data is lost, completeness drops, run ends.
        let mut policy = RecoveryPolicy::fast_test();
        policy.io_failover = false;
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &policy).unwrap();
        assert!(ft.frame.io.unrecovered_bytes > 0);
        assert!(!ft.completeness.fully_complete());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn rank0_crash_yields_empty_frame_with_zero_completeness() {
        let cfg = test_cfg();
        let p = tmp("root.raw");
        write_dataset(&p, &cfg).unwrap();
        let plan = FaultPlan {
            seed: 1,
            ranks: vec![RankFault {
                rank: 0,
                stage: Stage::Io,
                action: RankAction::Crash,
            }],
            ..FaultPlan::default()
        };
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &RecoveryPolicy::fast_test()).unwrap();
        assert!(ft.frame.image.pixels().iter().all(|px| *px == [0.0; 4]));
        assert!(ft.completeness.frame_fraction() < 1.0);
        assert!(ft.frame.timing.recovery.crashed_ranks >= 1);
        std::fs::remove_file(&p).ok();
    }
}
