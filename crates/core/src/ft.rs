//! Fault-tolerant end-to-end execution.
//!
//! [`run_frame_mpi_ft`] is [`crate::pipeline::run_frame_mpi`] rebuilt
//! for a hostile machine: every receive has a deadline, every data
//! message travels through the `pvr-faults` link layer (checksummed
//! frames, positive acks, bounded exponential-backoff retransmission,
//! duplicate suppression), storage reads retry and fail over to stripe
//! replicas, and the compositing stage produces a per-tile
//! [`CompletenessMap`] instead of silently hanging on missing input.
//!
//! The contract, verified by the integration tests and the
//! `fault_sweep` benchmark:
//!
//! * **Transient faults heal exactly.** If every injected fault is
//!   survivable (dropped attempts < retry budget, stragglers < stage
//!   deadline, down servers covered by replicas), the frame is
//!   bit-identical to the fault-free run and completeness is 1.0 —
//!   retransmitted frames carry identical bodies and compositors blend
//!   in a canonical (depth, renderer) order, so recovery leaves no
//!   pixel trace.
//! * **Permanent faults degrade, never hang.** Crashed ranks, dead
//!   links, and unreplicated server loss surface as completeness < 1.0
//!   with the missing area attributed to specific tiles, and the run
//!   terminates within its stage deadlines — no barrier is ever posted
//!   and no receive is untimed, so the mpisim deadlock detector and
//!   watchdog stay quiet.
//! * **Everything replays.** All fault behaviour derives from
//!   `(seed, FaultPlan)`; a run with the same plan and policy produces
//!   the same image and the same completeness map.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::time::Instant;

use pvr_compositing::completeness::{CompletenessMap, TileCompleteness};
use pvr_compositing::ImagePartition;
use pvr_faults::{
    FaultPlan, InBox, OutBox, PlanInjector, RankAction, RecoveryCounters, RecoveryPolicy, Stage,
};
use pvr_formats::extent::{coalesce, Extent};
use pvr_formats::ELEM_SIZE;
use pvr_pfs::{window_fault_audit, IoRecovery, ServerFaults, StripedStore};
use pvr_render::image::{over, Image, SubImage};
use pvr_render::raycast::{render_block, BlockDomain};
use pvr_render::Camera;

use pvr_compositing::directsend::DirectSendStats;

use crate::config::FrameConfig;
use crate::pipeline::{
    default_view, laptop_aggregators, render_opts, tags, transfer_for, FrameResult, IoRunStats,
};
use crate::timing::{FrameTiming, Stopwatch};

/// A striped-store description matched to laptop-scale test files: 8
/// servers with 64 KiB stripes, so even a few-megabyte dataset spreads
/// across every server and per-server faults have distinct footprints.
/// (The default [`StripedStore`] models ANL's 4 MiB stripes, which
/// would put an entire small test file on server 0.)
pub fn laptop_store() -> StripedStore {
    StripedStore {
        servers: 8,
        stripe_unit: 64 << 10,
        server_bw: 370.0e6,
        request_overhead: 0.5e-3,
    }
}

/// A frame that completed (possibly with degraded content).
#[derive(Debug)]
pub struct FtFrameResult {
    pub frame: FrameResult,
    /// Per-tile fraction of expected composited area that arrived.
    pub completeness: CompletenessMap,
}

/// A frame that completed but lost content permanently.
#[derive(Debug)]
pub struct DegradedFrame {
    pub image: Image,
    pub completeness: CompletenessMap,
    pub counters: RecoveryCounters,
    pub timing: FrameTiming,
}

/// Why a fault-tolerant frame did not produce a pristine image.
#[derive(Debug)]
pub enum FtError {
    /// The world itself failed (deadlock report or watchdog stall) —
    /// under the ft protocol this indicates a bug, and the recovery
    /// proptests assert it never happens.
    Runtime(pvr_mpisim::RunError),
    /// The frame completed with completeness < 1.0 (strict mode only).
    Degraded(Box<DegradedFrame>),
}

impl std::fmt::Display for FtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtError::Runtime(e) => write!(f, "runtime failure: {e}"),
            FtError::Degraded(d) => write!(
                f,
                "degraded frame: completeness {:.4}, {} tile(s) incomplete",
                d.completeness.frame_fraction(),
                d.completeness
                    .tiles
                    .iter()
                    .filter(|t| t.fraction() < 1.0)
                    .count()
            ),
        }
    }
}

impl std::error::Error for FtError {}

/// What each rank hands back to the driver.
struct RankOut {
    image: Option<Image>,
    completeness: Option<CompletenessMap>,
    timing: FrameTiming,
    samples: u64,
    sent_bytes: u64,
    counters: RecoveryCounters,
    io_failover_bytes: u64,
    io_unrecovered_bytes: u64,
}

impl RankOut {
    fn crashed(timing: FrameTiming) -> Self {
        RankOut {
            image: None,
            completeness: None,
            timing,
            samples: 0,
            sent_bytes: 0,
            counters: RecoveryCounters {
                crashed_ranks: 1,
                ..RecoveryCounters::default()
            },
            io_failover_bytes: 0,
            io_unrecovered_bytes: 0,
        }
    }
}

/// Run one fault-tolerant frame with default store and runtime options.
pub fn run_frame_mpi_ft(
    cfg: &FrameConfig,
    path: &Path,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
) -> Result<FtFrameResult, FtError> {
    run_frame_mpi_ft_opts(
        cfg,
        path,
        plan,
        policy,
        &laptop_store(),
        pvr_mpisim::RunOptions::default(),
    )
    .map(|(r, _)| r)
}

/// Strict variant: a frame whose completeness is less than 1.0 becomes
/// a typed [`FtError::Degraded`] carrying the partial image and the
/// recovery record, instead of a success.
pub fn run_frame_mpi_ft_strict(
    cfg: &FrameConfig,
    path: &Path,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
) -> Result<FtFrameResult, FtError> {
    let res = run_frame_mpi_ft(cfg, path, plan, policy)?;
    if res.completeness.fully_complete() {
        Ok(res)
    } else {
        Err(FtError::Degraded(Box::new(DegradedFrame {
            completeness: res.completeness,
            counters: res.frame.timing.recovery,
            timing: res.frame.timing,
            image: res.frame.image,
        })))
    }
}

/// Full-control variant: explicit store model and [`RunOptions`]
/// (tracing, match policy, watchdog). The plan's link faults are
/// installed as the transport injector automatically.
///
/// [`RunOptions`]: pvr_mpisim::RunOptions
pub fn run_frame_mpi_ft_opts(
    cfg: &FrameConfig,
    path: &Path,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    store: &StripedStore,
    opts: pvr_mpisim::RunOptions,
) -> Result<(FtFrameResult, Option<pvr_mpisim::trace::TraceLog>), FtError> {
    let cfg = *cfg;
    let path = path.to_path_buf();
    let plan = plan.clone();
    let policy = *policy;
    let store = *store;
    let n = cfg.nprocs;
    let m = cfg.policy.compositors(n);
    let compositor_rank = move |c: usize| c * n / m;
    let faults = plan.server_faults(store.servers);
    let rec = policy.io_recovery();

    let opts = opts.with_injector(PlanInjector::arc(plan.clone()));
    let out = pvr_mpisim::World::run_opts(n, opts, move |mut comm| {
        rank_frame(
            &mut comm,
            &cfg,
            &path,
            &plan,
            &policy,
            &store,
            &faults,
            &rec,
            m,
            &compositor_rank,
        )
    })
    .map_err(FtError::Runtime)?;

    let trace = out.trace;
    let mut results = out.results;
    let render_samples: u64 = results.iter().map(|r| r.samples).sum();
    let sent_bytes: u64 = results.iter().map(|r| r.sent_bytes).sum();
    let mut recovery = RecoveryCounters::default();
    let mut failover_bytes = 0u64;
    let mut unrecovered_bytes = 0u64;
    for r in &results {
        recovery.merge(&r.counters);
        failover_bytes += r.io_failover_bytes;
        unrecovered_bytes += r.io_unrecovered_bytes;
    }
    let root = results.remove(0);
    let mut timing = root.timing;
    timing.recovery = recovery;

    // A crashed rank 0 cannot deliver an image: the frame degrades to
    // an empty image with zero completeness on every populated tile.
    let (image, completeness) = match (root.image, root.completeness) {
        (Some(img), Some(map)) => (img, map),
        _ => {
            let partition = ImagePartition::new(cfg.image.0, cfg.image.1, m);
            let expected = expected_tile_areas(&cfg, n, m);
            let tiles = (0..m)
                .map(|c| TileCompleteness {
                    tile: c,
                    rect: Some(partition.tile(c)),
                    expected: expected[c],
                    arrived: 0.0,
                })
                .collect();
            (
                Image::new(cfg.image.0, cfg.image.1),
                CompletenessMap { tiles },
            )
        }
    };

    Ok((
        FtFrameResult {
            frame: FrameResult {
                image,
                timing,
                io: IoRunStats {
                    retries: recovery.io_retries,
                    failover_bytes,
                    unrecovered_bytes,
                    ..IoRunStats::default()
                },
                render_samples,
                composite: DirectSendStats {
                    messages: 0,
                    bytes: sent_bytes,
                    per_compositor: Vec::new(),
                },
            },
            completeness,
        },
        trace,
    ))
}

/// Expected blended area per tile, derivable by any rank (and the
/// driver) from the configuration alone — fault-independent.
fn expected_tile_areas(cfg: &FrameConfig, n: usize, m: usize) -> Vec<f64> {
    let partition = ImagePartition::new(cfg.image.0, cfg.image.1, m);
    let camera = Camera::orthographic(cfg.grid, default_view(), cfg.image.0, cfg.image.1);
    let decomp = pvr_volume::BlockDecomposition::new(cfg.grid, n);
    let blocks = decomp.blocks();
    let footprints: Vec<pvr_render::image::PixelRect> = (0..n)
        .map(|r| {
            pvr_render::raycast::footprint(
                &camera,
                blocks[r].sub.offset,
                blocks[r].sub.end(),
                cfg.image,
            )
        })
        .collect();
    let schedule = pvr_compositing::build_schedule(&footprints, partition);
    let mut areas = vec![0.0f64; m];
    for msg in &schedule.messages {
        areas[msg.compositor] += msg.pixels as f64;
    }
    areas
}

fn apply_straggle(action: Option<RankAction>) -> bool {
    match action {
        Some(RankAction::Crash) => true,
        Some(RankAction::StraggleMs(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            false
        }
        None => false,
    }
}

/// One rank's fault-tolerant frame. No barriers, no untimed receives.
#[allow(clippy::too_many_arguments)]
fn rank_frame(
    comm: &mut pvr_mpisim::Comm,
    cfg: &FrameConfig,
    path: &Path,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    store: &StripedStore,
    faults: &ServerFaults,
    rec: &IoRecovery,
    m: usize,
    compositor_rank: &(dyn Fn(usize) -> usize + Sync),
) -> RankOut {
    let rank = comm.rank();
    let n = comm.size();
    let geo_decomp = pvr_volume::BlockDecomposition::new(cfg.grid, n);
    let blocks = geo_decomp.blocks();
    let ghost = if cfg.shading { 2 } else { 1 };
    let stored: Vec<pvr_formats::Subvolume> = blocks
        .iter()
        .map(|b| geo_decomp.with_ghost(b, ghost))
        .collect();
    let owned: Vec<pvr_formats::Subvolume> = blocks.iter().map(|b| b.sub).collect();
    let camera = Camera::orthographic(cfg.grid, default_view(), cfg.image.0, cfg.image.1);
    let tf = transfer_for(cfg);
    let ropts = render_opts(cfg);
    let layout = cfg.io.layout(cfg.grid);
    let var = cfg.file_variable();
    let lp = policy.link_policy();
    let mut counters = RecoveryCounters::default();
    let mut sw = Stopwatch::start();
    let mut timing = FrameTiming::default();
    comm.span_begin("frame");

    // --- Stage 1: I/O (deadline-bounded scatter over framed links) ---
    comm.span_begin("io");
    if apply_straggle(plan.rank_fault(rank, Stage::Io)) {
        comm.mark_instant("rank.crash", 0);
        comm.span_end("io");
        comm.span_end("frame");
        timing.io = sw.lap();
        return RankOut::crashed(timing);
    }
    let requests: Vec<pvr_pfs::twophase::RankRequest> = stored
        .iter()
        .map(|sub| {
            let mut runs = Vec::new();
            layout.placed_runs(var, sub, &mut |r| runs.push(r));
            pvr_pfs::twophase::RankRequest {
                runs,
                out_elems: sub.num_elements(),
            }
        })
        .collect();
    let naggr = laptop_aggregators(n).clamp(1, n);
    let io = ft_collective_read(
        comm,
        cfg,
        layout.as_ref(),
        &requests,
        naggr,
        path,
        policy,
        store,
        faults,
        rec,
        &mut counters,
        &lp,
    );
    let volume = {
        let sub = &stored[rank];
        let mut data = vec![0.0f32; sub.num_elements()];
        for (i, c) in io.bytes.chunks_exact(4).enumerate() {
            data[i] = layout.endian().decode([c[0], c[1], c[2], c[3]]);
        }
        pvr_volume::Volume::from_data(sub.shape, data)
    };
    timing.io = sw.lap();
    comm.span_end("io");

    // --- Stage 2: render ---
    comm.span_begin("render");
    if apply_straggle(plan.rank_fault(rank, Stage::Render)) {
        comm.mark_instant("rank.crash", 1);
        comm.span_end("render");
        comm.span_end("frame");
        let mut out = RankOut::crashed(timing);
        out.counters.merge(&counters);
        out.io_failover_bytes = io.failover_bytes;
        out.io_unrecovered_bytes = io.unrecovered_bytes;
        return out;
    }
    let dom = BlockDomain {
        grid: cfg.grid,
        owned: owned[rank],
        stored: stored[rank],
    };
    let (sub, rstats) = render_block(&volume, &dom, &camera, &tf, &ropts);
    comm.mark_instant("render.samples", rstats.samples);
    timing.render = sw.lap();
    comm.span_end("render");

    // --- Stage 3: compositing (deadline mode) ---
    comm.span_begin("composite");
    if apply_straggle(plan.rank_fault(rank, Stage::Composite)) {
        comm.mark_instant("rank.crash", 2);
        comm.span_end("composite");
        comm.span_end("frame");
        let mut out = RankOut::crashed(timing);
        out.counters.merge(&counters);
        out.io_failover_bytes = io.failover_bytes;
        out.io_unrecovered_bytes = io.unrecovered_bytes;
        out.samples = rstats.samples;
        return out;
    }
    let partition = ImagePartition::new(cfg.image.0, cfg.image.1, m);
    let footprints: Vec<pvr_render::image::PixelRect> = (0..n)
        .map(|r| {
            pvr_render::raycast::footprint(&camera, owned[r].offset, owned[r].end(), cfg.image)
        })
        .collect();
    let schedule = pvr_compositing::build_schedule(&footprints, partition);

    // Send my fragments through the reliable link, quality attached.
    let mut frag_out = OutBox::new(rank, tags::FRAG_ACK, lp);
    let mut frag_in = InBox::new();
    let mut sent = 0u64;
    for msg in schedule.messages.iter().filter(|mm| mm.renderer == rank) {
        let tile = partition.tile(msg.compositor);
        if let Some(frag) = sub.crop(&tile) {
            let dst = compositor_rank(msg.compositor);
            sent += frag.wire_bytes();
            let mut body = Vec::with_capacity(8 + 48 + frag.pixels.len() * 16);
            body.extend(io.quality.to_le_bytes());
            body.extend(crate::pipeline::encode_fragment(rank, &frag));
            frag_out.send(comm, dst, tags::FRAGMENT, body);
        }
    }

    // Composite the tile I own (c -> c*n/m is injective for m <= n).
    let my_tile = (0..m).find(|&c| compositor_rank(c) == rank);
    let mut tile_out = OutBox::new(rank, tags::TILE_ACK, lp);
    let mut tile_payload: Option<(usize, f64, f64, SubImage)> = None;
    if let Some(c) = my_tile {
        let expected_msgs: Vec<(usize, usize)> = schedule
            .messages
            .iter()
            .filter(|mm| mm.compositor == c)
            .map(|mm| (mm.renderer, mm.pixels))
            .collect();
        let expected_area: f64 = expected_msgs.iter().map(|(_, px)| *px as f64).sum();
        let tile = partition.tile(c);
        let mut frags: Vec<(usize, f64, SubImage)> = Vec::with_capacity(expected_msgs.len());
        let deadline = Instant::now() + policy.stage_deadline;
        while frags.len() < expected_msgs.len() && Instant::now() < deadline {
            frag_out.poll(comm);
            if let Some((src, frame)) = comm.recv_any_timeout(tags::FRAGMENT, policy.poll) {
                if let Some(body) = frag_in.accept(comm, src, tags::FRAG_ACK, &frame) {
                    let quality = f64::from_le_bytes(body[0..8].try_into().unwrap());
                    let (renderer, frag) = crate::pipeline::decode_fragment(&body[8..]);
                    frags.push((renderer, quality, frag));
                }
            }
        }
        let arrived_area: f64 = frags
            .iter()
            .map(|(r, q, _)| {
                let px = expected_msgs
                    .iter()
                    .find(|(er, _)| er == r)
                    .map(|(_, px)| *px as f64)
                    .unwrap_or(0.0);
                px * q.clamp(0.0, 1.0)
            })
            .sum();
        // Canonical blend order keeps recovered runs bit-identical.
        frags.sort_by(|a, b| a.2.depth.total_cmp(&b.2.depth).then(a.0.cmp(&b.0)));
        let mut buf = SubImage::transparent(tile, 0.0);
        for (_, _, frag) in &frags {
            for y in frag.rect.y0..frag.rect.y1() {
                for x in frag.rect.x0..frag.rect.x1() {
                    let idx = (y - tile.y0) * tile.w + (x - tile.x0);
                    buf.pixels[idx] = over(buf.pixels[idx], frag.get(x, y));
                }
            }
        }
        tile_payload = Some((c, expected_area, arrived_area, buf));
    }

    // Ship my finished tile to rank 0 over the reliable link.
    if let Some((c, expected_area, arrived_area, buf)) = &tile_payload {
        let mut body = Vec::with_capacity(24 + 48 + buf.pixels.len() * 16);
        body.extend((*c as u64).to_le_bytes());
        body.extend(expected_area.to_le_bytes());
        body.extend(arrived_area.to_le_bytes());
        body.extend(crate::pipeline::encode_fragment(*c, buf));
        tile_out.send(comm, 0, tags::TILE, body);
    }

    // Rank 0 gathers tiles until the deadline; absentees become
    // zero-completeness entries.
    let mut image = None;
    let mut completeness = None;
    if rank == 0 {
        let expected_areas = {
            let mut areas = vec![0.0f64; m];
            for msg in &schedule.messages {
                areas[msg.compositor] += msg.pixels as f64;
            }
            areas
        };
        let mut tile_in = InBox::new();
        let mut img = Image::new(cfg.image.0, cfg.image.1);
        let mut got: Vec<Option<(f64, f64)>> = vec![None; m];
        let mut received = 0usize;
        let deadline = Instant::now() + policy.stage_deadline;
        while received < m && Instant::now() < deadline {
            frag_out.poll(comm);
            tile_out.poll(comm);
            if let Some((src, frame)) = comm.recv_any_timeout(tags::TILE, policy.poll) {
                if let Some(body) = tile_in.accept(comm, src, tags::TILE_ACK, &frame) {
                    let c = u64::from_le_bytes(body[0..8].try_into().unwrap()) as usize;
                    let expected = f64::from_le_bytes(body[8..16].try_into().unwrap());
                    let arrived = f64::from_le_bytes(body[16..24].try_into().unwrap());
                    let (_, tile_img) = crate::pipeline::decode_fragment(&body[24..]);
                    img.paste(&tile_img);
                    if got[c].is_none() {
                        got[c] = Some((expected, arrived));
                        received += 1;
                    }
                }
            }
        }
        let tiles = (0..m)
            .map(|c| {
                let (expected, arrived) = got[c].unwrap_or_else(|| {
                    if expected_areas[c] > 0.0 {
                        counters.degraded_tiles += 1;
                    }
                    (expected_areas[c], 0.0)
                });
                TileCompleteness {
                    tile: c,
                    rect: Some(partition.tile(c)),
                    expected,
                    arrived,
                }
            })
            .collect();
        counters.merge(&tile_in.counters);
        if counters.degraded_tiles > 0 {
            comm.mark_instant("composite.degraded_tiles", counters.degraded_tiles);
        }
        image = Some(img);
        completeness = Some(CompletenessMap { tiles });
    }

    // Grace period: finish delivering whatever is still in flight, then
    // account the casualties.
    let drain_deadline = Instant::now() + policy.drain;
    frag_out.drain(comm, drain_deadline);
    tile_out.drain(comm, drain_deadline);
    counters.merge(&frag_out.counters);
    counters.merge(&frag_in.counters);
    counters.merge(&tile_out.counters);
    timing.composite = sw.lap();
    comm.span_end("composite");
    comm.span_end("frame");

    RankOut {
        image,
        completeness,
        timing,
        samples: rstats.samples,
        sent_bytes: sent,
        counters,
        io_failover_bytes: io.failover_bytes,
        io_unrecovered_bytes: io.unrecovered_bytes,
    }
}

/// What the I/O stage hands the rest of the rank's frame.
struct FtIoResult {
    bytes: Vec<u8>,
    /// Fraction of this rank's requested bytes that arrived intact.
    quality: f64,
    failover_bytes: u64,
    unrecovered_bytes: u64,
}

/// Deadline-bounded two-phase collective read over framed links, with
/// storage faults audited per window. Every rank derives the identical
/// plan and per-rank piece counts, so the expected message set is
/// fault-independent; what actually arrives before the deadline
/// determines the rank's data quality.
#[allow(clippy::too_many_arguments)]
fn ft_collective_read(
    comm: &mut pvr_mpisim::Comm,
    cfg: &FrameConfig,
    layout: &dyn pvr_formats::layout::FileLayout,
    requests: &[pvr_pfs::twophase::RankRequest],
    naggr: usize,
    path: &Path,
    policy: &RecoveryPolicy,
    store: &StripedStore,
    faults: &ServerFaults,
    rec: &IoRecovery,
    counters: &mut RecoveryCounters,
    lp: &pvr_faults::LinkPolicy,
) -> FtIoResult {
    let rank = comm.rank();
    let n = comm.size();

    if !layout.collective() {
        // Independent path: local reads, storage faults still apply.
        let mut out = vec![0u8; requests[rank].out_elems * ELEM_SIZE as usize];
        let mut unrecovered = 0u64;
        let mut failover_bytes = 0u64;
        let mut useful = 0u64;
        let mut file = File::open(path).expect("dataset file");
        for run in &requests[rank].runs {
            let nb = run.elems * ELEM_SIZE as usize;
            useful += nb as u64;
            let audit =
                window_fault_audit(store, faults, rec, Extent::new(run.file_offset, nb as u64));
            counters.io_retries += audit.retries;
            counters.io_failovers += audit.failovers;
            failover_bytes += audit.failover_bytes;
            file.seek(SeekFrom::Start(run.file_offset)).unwrap();
            let dst = &mut out[run.out_start * 4..run.out_start * 4 + nb];
            file.read_exact(dst).unwrap();
            for lost in &audit.unrecoverable {
                let lo = lost.offset.max(run.file_offset) - run.file_offset;
                let hi = lost.end().min(run.file_offset + nb as u64) - run.file_offset;
                if lo < hi {
                    dst[lo as usize..hi as usize].fill(0);
                    unrecovered += hi - lo;
                }
            }
        }
        let quality = if useful == 0 {
            1.0
        } else {
            1.0 - unrecovered as f64 / useful as f64
        };
        return FtIoResult {
            bytes: out,
            quality,
            failover_bytes,
            unrecovered_bytes: unrecovered,
        };
    }

    let aggr_rank = |j: usize| j * n / naggr;

    // Identical plan on every rank.
    let mut aggregate: Vec<Extent> = requests
        .iter()
        .flat_map(|rq| {
            rq.runs
                .iter()
                .map(|r| Extent::new(r.file_offset, r.elems as u64 * ELEM_SIZE))
        })
        .collect();
    coalesce(&mut aggregate);
    let hints = cfg.io.hints(cfg.grid);
    let plan = pvr_pfs::two_phase_plan(&aggregate, naggr, &hints);

    let mut sorted_runs: Vec<(u64, usize, usize, usize)> = Vec::new();
    for (r, rq) in requests.iter().enumerate() {
        for run in &rq.runs {
            sorted_runs.push((
                run.file_offset,
                run.elems * ELEM_SIZE as usize,
                r,
                run.out_start * ELEM_SIZE as usize,
            ));
        }
    }
    sorted_runs.sort_unstable_by_key(|t| t.0);

    // Fault-independent expectations: pieces and bytes per rank.
    let mut piece_counts = vec![0usize; n];
    let mut piece_bytes = vec![0u64; n];
    for a in &plan.accesses {
        let start = sorted_runs.partition_point(|t| t.0 + t.1 as u64 <= a.extent.offset);
        for t in &sorted_runs[start..] {
            let (off, len, r, _) = *t;
            if off >= a.extent.end() {
                break;
            }
            let lo = off.max(a.extent.offset);
            let hi = (off + len as u64).min(a.extent.end());
            if lo < hi {
                piece_counts[r] += 1;
                piece_bytes[r] += hi - lo;
            }
        }
    }

    // Aggregator duty: window reads audited against the fault state,
    // unrecoverable ranges zero-filled and reported as holes.
    let mut io_out = OutBox::new(rank, tags::IO_ACK, *lp);
    let mut failover_bytes = 0u64;
    let my_accesses: Vec<_> = plan
        .accesses
        .iter()
        .filter(|a| aggr_rank(a.aggregator) == rank)
        .collect();
    if !my_accesses.is_empty() {
        let mut file = File::open(path).expect("dataset file");
        let mut buf = Vec::new();
        for a in my_accesses {
            let audit = window_fault_audit(store, faults, rec, a.extent);
            counters.io_retries += audit.retries;
            counters.io_failovers += audit.failovers;
            failover_bytes += audit.failover_bytes;
            buf.resize(a.extent.len as usize, 0);
            file.seek(SeekFrom::Start(a.extent.offset)).unwrap();
            file.read_exact(&mut buf).unwrap();
            for lost in &audit.unrecoverable {
                let lo = (lost.offset.max(a.extent.offset) - a.extent.offset) as usize;
                let hi = (lost.end().min(a.extent.end()) - a.extent.offset) as usize;
                if lo < hi {
                    buf[lo..hi].fill(0);
                }
            }
            let start = sorted_runs.partition_point(|t| t.0 + t.1 as u64 <= a.extent.offset);
            for t in &sorted_runs[start..] {
                let (off, len, r, out_byte) = *t;
                if off >= a.extent.end() {
                    break;
                }
                let lo = off.max(a.extent.offset);
                let hi = (off + len as u64).min(a.extent.end());
                if lo >= hi {
                    continue;
                }
                let nb = (hi - lo) as usize;
                let hole: u64 = audit
                    .unrecoverable
                    .iter()
                    .map(|e| {
                        let l = e.offset.max(lo);
                        let h = e.end().min(hi);
                        h.saturating_sub(l)
                    })
                    .sum();
                let mut msg = Vec::with_capacity(24 + nb);
                msg.extend(((out_byte + (lo - off) as usize) as u64).to_le_bytes());
                msg.extend((nb as u64).to_le_bytes());
                msg.extend(hole.to_le_bytes());
                msg.extend(&buf[(lo - a.extent.offset) as usize..(hi - a.extent.offset) as usize]);
                io_out.send(comm, r, tags::IO_SCATTER, msg);
            }
        }
    }

    // Receive my pieces until complete or the stage deadline.
    let mut io_in = InBox::new();
    let mut out = vec![0u8; requests[rank].out_elems * ELEM_SIZE as usize];
    let mut arrived = 0u64;
    let mut holes = 0u64;
    let mut got = 0usize;
    let deadline = Instant::now() + policy.stage_deadline;
    while got < piece_counts[rank] && Instant::now() < deadline {
        io_out.poll(comm);
        if let Some((src, frame)) = comm.recv_any_timeout(tags::IO_SCATTER, policy.poll) {
            if let Some(body) = io_in.accept(comm, src, tags::IO_ACK, &frame) {
                let dst = u64::from_le_bytes(body[0..8].try_into().unwrap()) as usize;
                let nb = u64::from_le_bytes(body[8..16].try_into().unwrap()) as usize;
                let hole = u64::from_le_bytes(body[16..24].try_into().unwrap());
                out[dst..dst + nb].copy_from_slice(&body[24..24 + nb]);
                arrived += nb as u64;
                holes += hole;
                got += 1;
            }
        }
    }
    io_out.drain(comm, Instant::now() + policy.drain);
    counters.merge(&io_out.counters);
    counters.merge(&io_in.counters);

    let expected = piece_bytes[rank];
    let missing = expected.saturating_sub(arrived);
    let quality = if expected == 0 {
        1.0
    } else {
        1.0 - (missing + holes) as f64 / expected as f64
    };
    FtIoResult {
        bytes: out,
        quality,
        failover_bytes,
        unrecovered_bytes: missing + holes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompositorPolicy;
    use crate::pipeline::{run_frame_mpi, write_dataset};
    use pvr_faults::{LinkAction, LinkFault, Pat, RankFault};

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("pvr-ft-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    fn test_cfg() -> FrameConfig {
        let mut cfg = FrameConfig::small(16, 24, 8);
        cfg.variable = 2;
        cfg.policy = CompositorPolicy::Fixed(4);
        cfg
    }

    #[test]
    fn healthy_plan_matches_plain_mpi_bit_for_bit() {
        let cfg = test_cfg();
        let p = tmp("healthy.raw");
        write_dataset(&p, &cfg).unwrap();
        let plain = run_frame_mpi(&cfg, &p);
        let ft =
            run_frame_mpi_ft(&cfg, &p, &FaultPlan::none(), &RecoveryPolicy::fast_test()).unwrap();
        assert_eq!(plain.image.pixels(), ft.frame.image.pixels());
        assert!(ft.completeness.fully_complete());
        // Spurious retransmits can happen under scheduler load (an ack
        // arriving just after its timeout) and are harmless — but
        // nothing may be lost, degraded, or crashed on a healthy plan.
        let rec = ft.frame.timing.recovery;
        assert_eq!(rec.timeouts, 0);
        assert_eq!(rec.corrupt_dropped, 0);
        assert_eq!(rec.degraded_tiles, 0);
        assert_eq!(rec.crashed_ranks, 0);
        assert_eq!(rec.io_retries, 0);
        assert_eq!(rec.io_failovers, 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn transient_drops_recover_bit_identically_with_retries() {
        let cfg = test_cfg();
        let p = tmp("transient.raw");
        write_dataset(&p, &cfg).unwrap();
        let plain = run_frame_mpi(&cfg, &p);
        let plan = FaultPlan {
            seed: 5,
            links: vec![
                LinkFault {
                    src: Pat::Is(1),
                    dst: Pat::Any,
                    tag: Some(tags::FRAGMENT),
                    action: LinkAction::DropFirst(2),
                },
                LinkFault {
                    src: Pat::Any,
                    dst: Pat::Is(2),
                    tag: Some(tags::IO_SCATTER),
                    action: LinkAction::DropFirst(1),
                },
            ],
            ranks: vec![RankFault {
                rank: 3,
                stage: Stage::Render,
                action: RankAction::StraggleMs(30),
            }],
            ..FaultPlan::default()
        };
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &RecoveryPolicy::fast_test()).unwrap();
        assert_eq!(
            plain.image.pixels(),
            ft.frame.image.pixels(),
            "transient faults must heal without a pixel trace"
        );
        assert!(ft.completeness.fully_complete());
        assert!(ft.frame.timing.recovery.retries > 0, "recovery did work");
        assert_eq!(ft.frame.timing.recovery.timeouts, 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn crashed_renderer_degrades_its_tiles_and_terminates() {
        let cfg = test_cfg();
        let p = tmp("crash.raw");
        write_dataset(&p, &cfg).unwrap();
        let plan = FaultPlan {
            seed: 9,
            ranks: vec![RankFault {
                rank: 5,
                stage: Stage::Composite,
                action: RankAction::Crash,
            }],
            ..FaultPlan::default()
        };
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &RecoveryPolicy::fast_test()).unwrap();
        assert!(!ft.completeness.fully_complete());
        assert!(ft.completeness.frame_fraction() < 1.0);
        assert!(ft.completeness.frame_fraction() > 0.0);
        assert_eq!(ft.frame.timing.recovery.crashed_ranks, 1);
        // Strict mode surfaces the same run as a typed error.
        match run_frame_mpi_ft_strict(&cfg, &p, &plan, &RecoveryPolicy::fast_test()) {
            Err(FtError::Degraded(d)) => {
                assert!(d.completeness.frame_fraction() < 1.0);
                assert_eq!(d.counters.crashed_ranks, 1);
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn down_server_with_failover_is_invisible_down_without_is_not() {
        let cfg = test_cfg();
        let p = tmp("server.raw");
        write_dataset(&p, &cfg).unwrap();
        let plain = run_frame_mpi(&cfg, &p);
        let plan = FaultPlan {
            seed: 3,
            servers: vec![pvr_faults::ServerFault {
                server: 0,
                action: pvr_faults::ServerAction::Down,
            }],
            ..FaultPlan::default()
        };
        // With failover: bit-identical, replica bytes accounted.
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &RecoveryPolicy::fast_test()).unwrap();
        assert_eq!(plain.image.pixels(), ft.frame.image.pixels());
        assert!(ft.completeness.fully_complete());
        assert!(ft.frame.io.failover_bytes > 0);
        assert!(ft.frame.io.retries > 0);
        assert_eq!(ft.frame.io.unrecovered_bytes, 0);
        // Without failover: data is lost, completeness drops, run ends.
        let mut policy = RecoveryPolicy::fast_test();
        policy.io_failover = false;
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &policy).unwrap();
        assert!(ft.frame.io.unrecovered_bytes > 0);
        assert!(!ft.completeness.fully_complete());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn rank0_crash_yields_empty_frame_with_zero_completeness() {
        let cfg = test_cfg();
        let p = tmp("root.raw");
        write_dataset(&p, &cfg).unwrap();
        let plan = FaultPlan {
            seed: 1,
            ranks: vec![RankFault {
                rank: 0,
                stage: Stage::Io,
                action: RankAction::Crash,
            }],
            ..FaultPlan::default()
        };
        let ft = run_frame_mpi_ft(&cfg, &p, &plan, &RecoveryPolicy::fast_test()).unwrap();
        assert!(ft.frame.image.pixels().iter().all(|px| *px == [0.0; 4]));
        assert!(ft.completeness.frame_fraction() < 1.0);
        assert!(ft.frame.timing.recovery.crashed_ranks >= 1);
        std::fs::remove_file(&p).ok();
    }
}
