//! Frame-level differential: the discrete-event core against the
//! thread-per-rank oracle (`Backend::Thread`) on the *real* pipeline.
//!
//! The trace-level equivalence (vector clocks, wildcard replay, fault
//! events) is property-tested inside `pvr-mpisim`; this test closes
//! the loop at the frame level — for every world size up to the
//! satellite's n ≤ 16 floor, one end-to-end direct-send frame must
//! come out byte-identical on both executors, with the same render
//! and exchange statistics. `pvr-bench` always enables `thread-exec`,
//! so this runs in every workspace-wide `cargo test`.

use std::path::PathBuf;

use pvr_core::pipeline::run_frame_mpi_sim;
use pvr_core::{write_dataset, FrameConfig};
use pvr_mpisim::{Backend, RunOptions};

fn dataset(cfg: &FrameConfig) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pvr-backend-diff-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    let p = d.join("diff.raw");
    if !p.exists() {
        write_dataset(&p, cfg).unwrap();
    }
    p
}

#[test]
fn frames_are_byte_identical_across_backends() {
    for n in [2usize, 3, 5, 8, 12, 16] {
        let cfg = FrameConfig::small(16, 24, n);
        let path = dataset(&cfg);
        let run = |backend: Backend| {
            run_frame_mpi_sim(&cfg, &path, RunOptions::default().with_backend(backend))
                .unwrap_or_else(|e| panic!("n={n} {backend:?} frame failed: {e}"))
        };
        let (event, event_sim) = run(Backend::Event);
        let (thread, thread_sim) = run(Backend::Thread);
        assert!(
            event_sim.is_some() && thread_sim.is_none(),
            "scheduler stats come from the event core only"
        );
        assert_eq!(
            event.image.pixels(),
            thread.image.pixels(),
            "n={n}: frame bytes diverge across backends"
        );
        assert_eq!(
            event.render_samples, thread.render_samples,
            "n={n}: render work diverges across backends"
        );
        assert_eq!(
            event.composite.bytes, thread.composite.bytes,
            "n={n}: exchange bytes diverge across backends"
        );
        assert_eq!(
            event.composite.messages, thread.composite.messages,
            "n={n}: exchange message counts diverge across backends"
        );
    }
}
