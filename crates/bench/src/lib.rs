//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper: it prints the series as CSV to stdout (and a copy under
//! `results/`), followed by a `# check:` block stating the qualitative
//! properties the paper reports and whether this run reproduced them.
//!
//! Run them all with `cargo run -p pvr-bench --release --bin <name>`;
//! see DESIGN.md §4 for the experiment index.

use std::io::Write;
use std::path::PathBuf;

/// The process-count sweep of the paper's Figures 3, 6 and 7
/// (64 … 32K cores, powers of two).
pub const CORE_SWEEP: [usize; 10] = [64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768];

/// The large-size sweep of Table II.
pub const LARGE_SWEEP: [usize; 3] = [8192, 16384, 32768];

/// Directory where regenerators drop their CSV/PGM artifacts.
pub fn out_dir() -> PathBuf {
    let d = std::env::var("PVR_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(d);
    std::fs::create_dir_all(&p).ok();
    p
}

/// A tiny CSV emitter that tees to stdout and `results/<name>.csv`.
pub struct CsvOut {
    file: std::fs::File,
}

impl CsvOut {
    pub fn create(name: &str, header: &str) -> CsvOut {
        let path = out_dir().join(format!("{name}.csv"));
        let mut file = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("create {}: {e}", path.display()));
        println!("{header}");
        writeln!(file, "{header}").unwrap();
        CsvOut { file }
    }

    pub fn row(&mut self, row: &str) {
        println!("{row}");
        writeln!(self.file, "{row}").unwrap();
    }
}

/// Tee a complete, pre-rendered CSV table (e.g. from
/// `pvr_obs::csvout::pivot_csv`) to stdout and `results/<name>.csv`.
pub fn emit_csv(name: &str, table: &str) -> PathBuf {
    let path = out_dir().join(format!("{name}.csv"));
    print!("{table}");
    std::fs::write(&path, table).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    path
}

/// Emit a qualitative check line (the regenerators' self-validation).
pub fn check(name: &str, ok: bool, detail: &str) {
    println!(
        "# check: {name}: {} ({detail})",
        if ok { "PASS" } else { "FAIL" }
    );
}

/// Write a binary artifact (e.g. a PGM access map) under `results/`.
pub fn write_artifact(name: &str, bytes: &[u8]) -> PathBuf {
    let path = out_dir().join(name);
    std::fs::write(&path, bytes).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("# artifact: {}", path.display());
    path
}

/// Write a benchmark trajectory as `results/BENCH_<bench>.json` — the
/// one artifact shape `perf_gate` knows how to compare. The file name
/// is derived from [`Trajectory::bench`], so a bin cannot write its
/// trajectory under a name the gate will not find.
pub fn write_trajectory(t: &pvr_obs::bench::Trajectory) -> PathBuf {
    write_artifact(&format!("BENCH_{}.json", t.bench), t.to_json().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_out_writes_file() {
        std::env::set_var(
            "PVR_RESULTS_DIR",
            std::env::temp_dir().join("pvr-bench-test"),
        );
        let mut c = CsvOut::create("unit", "a,b");
        c.row("1,2");
        let content = std::fs::read_to_string(out_dir().join("unit.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    fn trajectories_round_trip_through_the_artifact_file() {
        std::env::set_var(
            "PVR_RESULTS_DIR",
            std::env::temp_dir().join("pvr-bench-test"),
        );
        use pvr_obs::bench::Trajectory;
        let mut t = Trajectory::new("unit_rt");
        t.exact("count", 42.0)
            .rel("rate", 1.5e6, 0.3)
            .info("wall_secs", 0.25)
            .table("cases", &["case", "ok"], vec![vec!["a".into(), "1".into()]]);
        let path = write_trajectory(&t);
        assert_eq!(path.file_name().unwrap(), "BENCH_unit_rt.json");
        let back = Trajectory::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(t, back);
    }
}
