//! Figure 3 — total and component frame time vs. core count.
//!
//! "Total frame time as well as individual components I/O, rendering,
//! and compositing times plotted on a log-log scale. Two versions of
//! compositing time are shown; the total frame time includes the
//! faster, improved compositing. The file is raw data format, 1120³,
//! and the image size is 1600²."
//!
//! Reproduced shapes: rendering is linear (slope -1); raw I/O falls
//! then flattens as the storage fabric saturates; original (m = n)
//! compositing is flat to ~1K cores and blows up beyond; the improved
//! policy removes the blow-up. The best total frame time lands at 16K
//! cores, as in the paper (5.9 s there).

use pvr_bench::{check, CsvOut, CORE_SWEEP};
use pvr_core::{CompositorPolicy, FrameConfig, PerfModel};

fn main() {
    let model = PerfModel::default();
    let mut csv = CsvOut::create(
        "fig3_scaling",
        "cores,total_s,raw_io_s,render_s,composite_original_s,composite_improved_s",
    );

    let mut totals = Vec::new();
    let mut orig = Vec::new();
    let mut impr = Vec::new();
    let mut renders = Vec::new();
    for &n in &CORE_SWEEP {
        let mut cfg = FrameConfig::paper_1120(n);
        cfg.policy = CompositorPolicy::Improved;
        let r = model.simulate(&cfg);

        let mut cfg_o = cfg;
        cfg_o.policy = CompositorPolicy::Original;
        let sched_o = model.schedule_for(&cfg_o);
        let comp_o = model.simulate_composite(&cfg_o, &sched_o);

        csv.row(&format!(
            "{n},{:.3},{:.3},{:.3},{:.3},{:.3}",
            r.timing.total(),
            r.timing.io,
            r.timing.render,
            comp_o.seconds,
            r.timing.composite,
        ));
        totals.push((n, r.timing.total()));
        orig.push((n, comp_o.seconds));
        impr.push((n, r.timing.composite));
        renders.push((n, r.timing.render));
    }

    // --- Qualitative checks against the paper. ---
    let best = totals
        .iter()
        .cloned()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    check(
        "best total frame time at large scale (paper: 5.9 s at 16K)",
        best.0 >= 8192 && best.1 > 3.0 && best.1 < 10.0,
        &format!("best {:.2} s at {} cores", best.1, best.0),
    );
    let r64 = renders[0].1;
    let r32k = renders.last().unwrap().1;
    let slope = (r64 / r32k).log2() / ((32768f64 / 64.0).log2());
    check(
        "rendering is embarrassingly parallel (log-log slope ~ -1)",
        (slope - 1.0).abs() < 0.05,
        &format!("slope {slope:.3}"),
    );
    let o1k = orig.iter().find(|(n, _)| *n == 1024).unwrap().1;
    let o256 = orig.iter().find(|(n, _)| *n == 256).unwrap().1;
    let o32k = orig.last().unwrap().1;
    let i32k = impr.last().unwrap().1;
    check(
        "original compositing flat through 1K cores",
        o1k < 3.0 * o256,
        &format!("256: {o256:.3} s, 1K: {o1k:.3} s"),
    );
    check(
        "original compositing blows up beyond 1K (paper: ~30x at 32K)",
        o32k / i32k > 10.0,
        &format!(
            "32K original {o32k:.2} s vs improved {i32k:.3} s = {:.0}x",
            o32k / i32k
        ),
    );
    let io32k = totals.last().unwrap();
    check(
        "compositing exceeds rendering beyond 8K cores with m = n",
        orig.iter().filter(|(n, _)| *n > 8192).all(|(n, t)| {
            let render = renders.iter().find(|(rn, _)| rn == n).unwrap().1;
            *t > render
        }),
        &format!("at 32K: composite {o32k:.2} s vs render {r32k:.3} s"),
    );
    let _ = io32k;
}
