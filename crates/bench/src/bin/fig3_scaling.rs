//! Figure 3 — total and component frame time vs. core count.
//!
//! "Total frame time as well as individual components I/O, rendering,
//! and compositing times plotted on a log-log scale. Two versions of
//! compositing time are shown; the total frame time includes the
//! faster, improved compositing. The file is raw data format, 1120³,
//! and the image size is 1600²."
//!
//! Reproduced shapes: rendering is linear (slope -1); raw I/O falls
//! then flattens as the storage fabric saturates; original (m = n)
//! compositing is flat to ~1K cores and blows up beyond; the improved
//! policy removes the blow-up. The best total frame time lands at 16K
//! cores, as in the paper (5.9 s there).
//!
//! Series are recorded into a `pvr_obs::Registry` as milliseconds and
//! pivoted into the CSV table by the shared exporter; the checks read
//! the same snapshot the table is rendered from.

use pvr_bench::{check, emit_csv, CORE_SWEEP};
use pvr_core::{CompositorPolicy, FrameConfig, PerfModel};
use pvr_obs::csvout::pivot_csv;
use pvr_obs::{Registry, Snapshot};

fn ms(seconds: f64) -> i64 {
    (seconds * 1000.0).round() as i64
}

fn col(snap: &Snapshot, name: &str, n: usize) -> f64 {
    snap.get(name, &format!("cores={n}")).unwrap() as f64 / 1000.0
}

fn main() {
    let model = PerfModel::default();
    let reg = Registry::new();

    for &n in &CORE_SWEEP {
        let mut cfg = FrameConfig::paper_1120(n);
        cfg.policy = CompositorPolicy::Improved;
        let r = model.simulate(&cfg);

        let mut cfg_o = cfg;
        cfg_o.policy = CompositorPolicy::Original;
        let sched_o = model.schedule_for(&cfg_o);
        let comp_o = model.simulate_composite(&cfg_o, &sched_o);

        let label = format!("cores={n}");
        reg.gauge_set("total_s", &label, ms(r.timing.total()));
        reg.gauge_set("raw_io_s", &label, ms(r.timing.io));
        reg.gauge_set("render_s", &label, ms(r.timing.render));
        reg.gauge_set("composite_original_s", &label, ms(comp_o.seconds));
        reg.gauge_set("composite_improved_s", &label, ms(r.timing.composite));
    }

    let snap = reg.snapshot();
    emit_csv(
        "fig3_scaling",
        &pivot_csv(
            &snap,
            "cores",
            &[
                ("total_s", 3),
                ("raw_io_s", 3),
                ("render_s", 3),
                ("composite_original_s", 3),
                ("composite_improved_s", 3),
            ],
        ),
    );

    // --- Qualitative checks against the paper, read off the snapshot. ---
    let best = CORE_SWEEP
        .iter()
        .map(|&n| (n, col(&snap, "total_s", n)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    check(
        "best total frame time at large scale (paper: 5.9 s at 16K)",
        best.0 >= 8192 && best.1 > 3.0 && best.1 < 10.0,
        &format!("best {:.2} s at {} cores", best.1, best.0),
    );
    let r64 = col(&snap, "render_s", 64);
    let r32k = col(&snap, "render_s", 32768);
    let slope = (r64 / r32k).log2() / ((32768f64 / 64.0).log2());
    check(
        "rendering is embarrassingly parallel (log-log slope ~ -1)",
        (slope - 1.0).abs() < 0.05,
        &format!("slope {slope:.3}"),
    );
    let o1k = col(&snap, "composite_original_s", 1024);
    let o256 = col(&snap, "composite_original_s", 256);
    let o32k = col(&snap, "composite_original_s", 32768);
    let i32k = col(&snap, "composite_improved_s", 32768);
    check(
        "original compositing flat through 1K cores",
        o1k < 3.0 * o256,
        &format!("256: {o256:.3} s, 1K: {o1k:.3} s"),
    );
    check(
        "original compositing blows up beyond 1K (paper: ~30x at 32K)",
        o32k / i32k > 10.0,
        &format!(
            "32K original {o32k:.2} s vs improved {i32k:.3} s = {:.0}x",
            o32k / i32k
        ),
    );
    check(
        "compositing exceeds rendering beyond 8K cores with m = n",
        CORE_SWEEP
            .iter()
            .filter(|&&n| n > 8192)
            .all(|&n| col(&snap, "composite_original_s", n) > col(&snap, "render_s", n)),
        &format!("at 32K: composite {o32k:.2} s vs render {r32k:.3} s"),
    );
}
