//! `render_bench` — the fast-path and ray-packet microbenchmark.
//!
//! Renders one 128³ supernova block (the paper's per-process block size
//! at 1120³ / 8³ processes is comparable) four ways:
//!
//! * **naive** — no macrocells, scalar kernel, no termination;
//! * **fast** — macrocell/LUT empty-space skipping, scalar kernel
//!   (`packet_width: 1`, `Termination::Off`) — the counters pinned in
//!   the trajectory;
//! * **prev-fast** — the previous release's fast path, emulated by
//!   nudging `step` off `1.0` so the unit-step classification stays
//!   cold (`packet_width: 1`, `Termination::Off`). This is the honest
//!   baseline `packet_speedup` is measured against;
//! * **packet** — the 8-wide lockstep packet kernel with the default
//!   bitwise termination gate.
//!
//! All four must produce **bit-identical** images; the packet kernel's
//! deterministic counters (packets launched, lane-utilization
//! numerator/denominator, skips) are exact-gated. Timed comparisons are
//! interleaved round-robin within one process (best-of-N per kernel),
//! the only protocol that yields stable ratios on noisy machines; the
//! ratios still ride wide relative bands and the wall clocks are
//! info-only.
//!
//! A bounded-termination render (`RenderOpts::bounded`) checks the
//! reported per-pixel error bound against the actual deviation from the
//! exact image, and a best-case thread-scaling harness (independent
//! block renders fanned over the shim pool at 1 vs all cores) reports
//! `scaling_efficiency`.
//!
//! Writes `results/BENCH_render.json` and a `render_bench.csv` summary.
//! `--ci` runs a single timed round and exits nonzero if any
//! correctness gate fails; `--packets` prints the packet-kernel detail
//! section.

use std::time::Instant;

use pvr_bench::{check, write_trajectory, CsvOut};
use pvr_core::{run_frame, FrameConfig};
use pvr_obs::bench::Trajectory;
use pvr_obs::Registry;
use pvr_render::raycast::{RenderOpts, RenderStats, Termination};
use pvr_render::{render_block_with_grid, BlockDomain, Camera, Image, TransferFunction, Vec3};
use pvr_volume::{MacrocellGrid, SupernovaField, Volume};
use rayon::ThreadPoolBuilder;

const BLOCK: usize = 128;

fn block_volume() -> Volume {
    // X velocity of the synthetic supernova — the variable and transfer
    // function of the paper's Figure 1.
    let f = SupernovaField::new(1530).variable(2);
    Volume::from_field(&f, [BLOCK; 3])
}

struct Kernel {
    name: &'static str,
    opts: RenderOpts,
    /// Whether the macrocell grid is handed to the kernel.
    grid: bool,
}

struct Measured {
    best: f64,
    stats: RenderStats,
    image: Image,
}

/// Time every kernel interleaved round-robin: one render of each per
/// round, best-of-`iters` per kernel. Interleaving shares any machine
/// slowdown across all kernels, so the *ratios* stay meaningful even
/// when the absolute clocks are noisy.
fn bench_kernels(
    volume: &Volume,
    grid: &MacrocellGrid,
    cam: &Camera,
    tf: &TransferFunction,
    kernels: &[Kernel],
    iters: usize,
) -> Vec<Measured> {
    let dom = BlockDomain::whole(volume.dims());
    let (w, h) = cam.image_size();
    let render = |k: &Kernel| {
        let g = k.grid.then_some(grid);
        let (sub, stats) = render_block_with_grid(volume, g, &dom, cam, tf, &k.opts);
        let mut img = Image::new(w, h);
        img.paste(&sub);
        (img, stats)
    };
    // One warm-up render of each, kept as the reference image/stats.
    let mut out: Vec<Measured> = kernels
        .iter()
        .map(|k| {
            let (image, stats) = render(k);
            Measured {
                best: f64::INFINITY,
                stats,
                image,
            }
        })
        .collect();
    for _ in 0..iters {
        for (k, m) in kernels.iter().zip(&mut out) {
            let t = Instant::now();
            let (img, _) = render(k);
            m.best = m.best.min(t.elapsed().as_secs_f64());
            std::hint::black_box(img);
        }
    }
    out
}

fn bits_equal(a: &Image, b: &Image) -> bool {
    a.pixels()
        .iter()
        .zip(b.pixels())
        .all(|(p, q)| (0..4).all(|c| p[c].to_bits() == q[c].to_bits()))
}

/// Best-case thread scaling: fan `2 × cores` independent copies of the
/// packet-kernel block render over the shim pool at one thread and at
/// all cores. No shared state, no compositing — an upper bound on what
/// thread scaling can ever deliver on this machine, which is exactly
/// what makes shortfalls in the full pipeline attributable.
fn best_case_scaling(
    volume: &Volume,
    grid: &MacrocellGrid,
    cam: &Camera,
    tf: &TransferFunction,
    opts: &RenderOpts,
) -> (usize, f64, f64) {
    use rayon::prelude::*;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let dom = BlockDomain::whole(volume.dims());
    let tasks = 2 * threads;
    let run = |cap: usize| {
        let pool = ThreadPoolBuilder::new()
            .num_threads(cap)
            .build()
            .expect("scaling pool");
        let t = Instant::now();
        pool.install(|| {
            (0..tasks).into_par_iter().for_each(|_| {
                let (sub, _) = render_block_with_grid(volume, Some(grid), &dom, cam, tf, opts);
                std::hint::black_box(sub);
            });
        });
        t.elapsed().as_secs_f64()
    };
    // Warm-up (page in everything), then one pass per pool size.
    run(threads);
    let t1 = run(1);
    let tn = run(threads);
    let speedup = t1 / tn.max(1e-12);
    (threads, speedup, speedup / threads as f64)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ci = args.iter().any(|a| a == "--ci");
    let packets_detail = args.iter().any(|a| a == "--packets");
    let iters = if ci { 1 } else { 5 };

    // --- Kernels: one 128^3 block, four ways, interleaved. -----------
    let volume = block_volume();
    let cam = Camera::orthographic([BLOCK; 3], Vec3::new(0.3, -0.2, 0.93), 256, 256);
    let tf = TransferFunction::supernova_velocity();
    let kernels = [
        Kernel {
            name: "naive",
            opts: RenderOpts {
                fast_path: false,
                ..RenderOpts::exact()
            },
            grid: false,
        },
        Kernel {
            name: "fast",
            opts: RenderOpts::exact(),
            grid: true,
        },
        Kernel {
            name: "prev-fast",
            // Nudging `step` off exactly 1.0 keeps the unit-step
            // classification cold: this is the previous release's fast
            // path, re-measured on this machine in this process — the
            // honest packet_speedup baseline.
            opts: RenderOpts {
                step: 1.0 + f64::EPSILON,
                ..RenderOpts::exact()
            },
            grid: true,
        },
        Kernel {
            name: "packet",
            opts: RenderOpts::default(), // width 8, bitwise termination
            grid: true,
        },
    ];

    println!("# render_bench: {BLOCK}^3 supernova block, 256^2 rays, best of {iters} interleaved");
    let grid = MacrocellGrid::build(&volume);
    let m = bench_kernels(&volume, &grid, &cam, &tf, &kernels, iters);
    let (naive, fast, prev, packet) = (&m[0], &m[1], &m[2], &m[3]);

    let bit_identical_kernel = bits_equal(&naive.image, &fast.image);
    let bit_identical_packet =
        bits_equal(&naive.image, &packet.image) && bits_equal(&naive.image, &prev.image);
    let samples = naive.stats.samples;
    let skip_fraction = fast.stats.skipped_samples as f64 / fast.stats.samples as f64;
    let naive_rate = samples as f64 / naive.best;
    let fast_rate = samples as f64 / fast.best;
    let speedup = fast_rate / naive_rate.max(1e-12);
    // The tentpole ratio: packet kernel vs the previous fast path, both
    // timed in this process.
    let packet_speedup = prev.best / packet.best.max(1e-12);
    let lane_utilization = packet.stats.lane_utilization().unwrap_or(0.0);

    for (k, mm) in kernels.iter().zip(&m) {
        println!(
            "  {:9}  {:8.2} ms   {:>9} samples  {:>9} skipped",
            k.name,
            mm.best * 1e3,
            mm.stats.samples,
            mm.stats.skipped_samples
        );
    }
    println!("  fast vs naive: {speedup:.2}x   packet vs prev-fast: {packet_speedup:.2}x");

    if packets_detail {
        let s = &packet.stats;
        println!("# packet kernel detail (width 8, bitwise termination)");
        println!("  packets launched     {}", s.packets);
        println!("  rays                 {}", s.rays);
        println!(
            "  eval lanes / slots   {} / {}  (utilization {:.3})",
            s.packet_eval_lanes, s.packet_eval_slots, lane_utilization
        );
        println!("  skipped samples      {}", s.skipped_samples);
        println!("  terminated rays      {}", s.terminated_rays);
    }

    // --- Bounded termination: the reported bound must hold. ----------
    let dom = BlockDomain::whole(volume.dims());
    let bounded_opts = RenderOpts::bounded(0.98);
    let (bsub, bstats) =
        render_block_with_grid(&volume, Some(&grid), &dom, &cam, &tf, &bounded_opts);
    let mut bounded_img = Image::new(256, 256);
    bounded_img.paste(&bsub);
    let bounded_dev = bounded_img.max_abs_diff(&naive.image);
    let bounded_ok = bstats.error_bound > 0.0 && bounded_dev <= bstats.error_bound as f64;

    // --- Best-case thread scaling of the packet kernel. --------------
    let (scaling_threads, scaling_speedup, scaling_efficiency) =
        best_case_scaling(&volume, &grid, &cam, &tf, &RenderOpts::default());
    println!(
        "  best-case scaling: {scaling_speedup:.2}x on {scaling_threads} threads \
         (efficiency {scaling_efficiency:.2})"
    );

    // --- End to end: a small frame, honest sparse exchange bytes. ----
    // The default config now runs the packet kernel with the bitwise
    // gate; the scalar-exact frame must match it bit for bit.
    let mut cfg = FrameConfig::small(64, 192, 8);
    cfg.variable = 2;
    let frame_fast = run_frame(&cfg, None);
    let mut cfg_exact = cfg;
    cfg_exact.packet_width = 1;
    cfg_exact.termination = Termination::Off;
    let frame_exact = run_frame(&cfg_exact, None);
    let mut cfg_naive = cfg;
    cfg_naive.fast_path = false;
    cfg_naive.packet_width = 1;
    cfg_naive.termination = Termination::Off;
    let frame_naive = run_frame(&cfg_naive, None);
    let bit_identical_frame = bits_equal(&frame_naive.image, &frame_fast.image)
        && bits_equal(&frame_naive.image, &frame_exact.image);
    let comp = &frame_fast.composite;

    // A bounded-mode frame must report a nonzero bound that covers its
    // actual deviation from the exact frame. The threshold is low:
    // blocks here are 32^3, so per-block ray segments accumulate far
    // less opacity than the 128^3 kernel bench above.
    let mut cfg_bounded = cfg;
    cfg_bounded.termination = Termination::Bounded { alpha: 0.35 };
    let frame_bounded = run_frame(&cfg_bounded, None);
    let frame_bounded_dev = frame_bounded.image.max_abs_diff(&frame_exact.image);
    let frame_bounded_ok = frame_bounded.render_error_bound > 0.0
        && frame_bounded_dev <= frame_bounded.render_error_bound;

    // --- Metrics through the observability registry. ------------------
    let reg = Registry::new();
    reg.counter_add("render.samples", "block", fast.stats.samples);
    reg.counter_add("render.skip", "block", fast.stats.skipped_samples);
    reg.counter_add("render.packets", "block", packet.stats.packets);
    reg.counter_add("render.eval_lanes", "block", packet.stats.packet_eval_lanes);
    reg.counter_add("render.eval_slots", "block", packet.stats.packet_eval_slots);
    reg.counter_add("render.terminated", "block", packet.stats.terminated_rays);
    reg.counter_add("render.skip", "frame", frame_fast.render_skipped);
    reg.counter_add("render.packets", "frame", frame_fast.render_packets);
    reg.counter_add("composite.sparse_bytes", "frame", comp.bytes);
    reg.counter_add("composite.dense_bytes", "frame", comp.dense_bytes);
    print!("{}", reg.snapshot().to_text());

    let mut csv = CsvOut::create(
        "render_bench",
        "kernel,secs,samples,skipped,samples_per_sec",
    );
    for (k, mm) in kernels.iter().zip(&m) {
        csv.row(&format!(
            "{},{:.6},{},{},{:.0}",
            k.name,
            mm.best,
            mm.stats.samples,
            mm.stats.skipped_samples,
            mm.stats.samples as f64 / mm.best
        ));
    }

    // The trajectory artifact: every deterministic count is an exact
    // gate, in-process timing ratios ride wide relative bands (the same
    // machine run-to-run, not cross-machine), wall-clock is info-only.
    let mut traj = Trajectory::new("render");
    traj.exact("block", BLOCK as f64)
        .exact("samples", samples as f64)
        .exact("skipped_samples", fast.stats.skipped_samples as f64)
        .exact("bit_identical_kernel", bit_identical_kernel as u8 as f64)
        .exact("bit_identical_packet", bit_identical_packet as u8 as f64)
        .exact("bit_identical_frame", bit_identical_frame as u8 as f64)
        .exact("packet_packets", packet.stats.packets as f64)
        .exact("packet_eval_lanes", packet.stats.packet_eval_lanes as f64)
        .exact("packet_eval_slots", packet.stats.packet_eval_slots as f64)
        .exact(
            "packet_skipped_samples",
            packet.stats.skipped_samples as f64,
        )
        .exact(
            "packet_terminated_rays",
            packet.stats.terminated_rays as f64,
        )
        .exact("bounded_error_within_bound", bounded_ok as u8 as f64)
        .exact(
            "frame_bounded_error_within_bound",
            frame_bounded_ok as u8 as f64,
        )
        .exact("frame_render_samples", frame_fast.render_samples as f64)
        .exact("frame_render_skipped", frame_fast.render_skipped as f64)
        .exact("frame_render_packets", frame_fast.render_packets as f64)
        .exact("frame_composite_bytes", comp.bytes as f64)
        .exact("frame_composite_dense_bytes", comp.dense_bytes as f64)
        .exact("frame_sparse_messages", comp.sparse_messages as f64)
        .exact("frame_messages", comp.messages as f64)
        .rel("skip_fraction", skip_fraction, 0.01)
        .rel("lane_utilization", lane_utilization, 0.02)
        .rel("packet_speedup", packet_speedup, 0.5)
        .info("iters", iters as f64)
        .info("naive_secs", naive.best)
        .info("fast_secs", fast.best)
        .info("prev_fast_secs", prev.best)
        .info("packet_secs", packet.best)
        .info("naive_samples_per_sec", naive_rate)
        .info("fast_samples_per_sec", fast_rate)
        .info("speedup", speedup)
        .info("bounded_error_bound", bstats.error_bound as f64)
        .info("scaling_threads", scaling_threads as f64)
        .info("scaling_speedup", scaling_speedup)
        .info("scaling_efficiency", scaling_efficiency)
        .table(
            "kernels",
            &["kernel", "secs", "samples", "skipped"],
            kernels
                .iter()
                .zip(&m)
                .map(|(k, mm)| {
                    vec![
                        k.name.into(),
                        format!("{:.6}", mm.best),
                        mm.stats.samples.to_string(),
                        mm.stats.skipped_samples.to_string(),
                    ]
                })
                .collect(),
        );
    write_trajectory(&traj);

    // --- Gates. -------------------------------------------------------
    check(
        "fast path is bit-identical to the naive kernel",
        bit_identical_kernel,
        "256^2 pixels compared bitwise",
    );
    check(
        "packet kernel (width 8, bitwise gate) is bit-identical",
        bit_identical_packet,
        "256^2 pixels compared bitwise, prev-fast included",
    );
    check(
        "fast path is bit-identical end to end (packet, scalar, naive)",
        bit_identical_frame,
        "192^2 pixels compared bitwise",
    );
    check(
        "macrocell/LUT classification skips work",
        skip_fraction > 0.0,
        &format!("{:.1}% of samples skipped", 100.0 * skip_fraction),
    );
    check(
        "packet kernel keeps lanes busy",
        lane_utilization > 0.5,
        &format!("utilization {lane_utilization:.3}"),
    );
    check(
        "bounded termination honors its reported error bound (block)",
        bounded_ok,
        &format!(
            "max deviation {bounded_dev:.3e} <= bound {:.3e}",
            bstats.error_bound
        ),
    );
    check(
        "bounded termination honors its reported error bound (frame)",
        frame_bounded_ok,
        &format!(
            "max deviation {frame_bounded_dev:.3e} <= bound {:.3e}",
            frame_bounded.render_error_bound
        ),
    );
    check(
        "sparse exchange ships fewer bytes than dense",
        comp.bytes < comp.dense_bytes,
        &format!(
            "{} sparse vs {} dense ({} of {} messages sparse)",
            comp.bytes, comp.dense_bytes, comp.sparse_messages, comp.messages
        ),
    );
    // The measured in-process ratio lands around 1.8x on the reference
    // machine (recorded honestly in the trajectory); the hard floor is
    // set below that so machine noise cannot flake the job while a real
    // regression to pre-packet throughput still fails it.
    check(
        "packet kernel beats the previous fast path by 1.4x+",
        packet_speedup >= 1.4,
        &format!("{packet_speedup:.2}x measured (target 2x)"),
    );

    // Correctness gates are hard failures everywhere; the speedup floor
    // gates too (it is an in-process ratio, not a wall clock). Absolute
    // throughput and scaling are machine-dependent and only reported.
    let ok = bit_identical_kernel
        && bit_identical_packet
        && bit_identical_frame
        && skip_fraction > 0.0
        && lane_utilization > 0.5
        && bounded_ok
        && frame_bounded_ok
        && packet_speedup >= 1.4
        && comp.bytes < comp.dense_bytes;
    if !ok {
        std::process::exit(1);
    }
}
