//! `render_bench` — the fast-path microbenchmark.
//!
//! Renders one 128³ supernova block (the paper's per-process block size
//! at 1120³ / 8³ processes is comparable) with the naive kernel and with
//! the macrocell/LUT fast path, asserts the images are **bit-identical**,
//! and reports samples/sec for both, the fraction of samples the fast
//! path proved zero-opacity and skipped, and — from a small end-to-end
//! frame — the direct-send payload bytes under the sparse subimage
//! encoding vs. what the same exchange would cost dense.
//!
//! Writes `results/BENCH_render.json` and a `render_bench.csv` summary.
//! `--ci` runs a single timed iteration and exits nonzero if any of the
//! correctness gates fail (bit-identity, skip fraction > 0, sparse
//! payload < dense payload); throughput is reported but not gated, so a
//! noisy CI machine cannot flake the job.

use std::time::Instant;

use pvr_bench::{check, write_trajectory, CsvOut};
use pvr_core::{run_frame, FrameConfig};
use pvr_obs::bench::Trajectory;
use pvr_obs::Registry;
use pvr_render::raycast::RenderOpts;
use pvr_render::{render_block_with_grid, BlockDomain, Camera, TransferFunction, Vec3};
use pvr_volume::{MacrocellGrid, SupernovaField, Volume};

const BLOCK: usize = 128;

fn block_volume() -> Volume {
    // X velocity of the synthetic supernova — the variable and transfer
    // function of the paper's Figure 1.
    let f = SupernovaField::new(1530).variable(2);
    Volume::from_field(&f, [BLOCK; 3])
}

fn bench_kernel(
    volume: &Volume,
    grid: Option<&MacrocellGrid>,
    cam: &Camera,
    tf: &TransferFunction,
    opts: &RenderOpts,
    iters: usize,
) -> (f64, pvr_render::raycast::RenderStats, pvr_render::Image) {
    // The macrocell summary is built once per block and reused across
    // frames and views, so the fast kernel is timed in its steady state
    // with the grid prebuilt (the naive kernel has nothing to build).
    let dom = BlockDomain::whole(volume.dims());
    let (w, h) = cam.image_size();
    let render = || {
        let (sub, stats) = render_block_with_grid(volume, grid, &dom, cam, tf, opts);
        let mut img = pvr_render::Image::new(w, h);
        img.paste(&sub);
        (img, stats)
    };
    // One warm-up render, then the timed best-of-`iters`.
    let (image, stats) = render();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        let (img, _) = render();
        best = best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(img);
    }
    (best, stats, image)
}

fn main() {
    let ci = std::env::args().any(|a| a == "--ci");
    let iters = if ci { 1 } else { 3 };

    // --- Kernel: one 128^3 block, naive vs fast path. ----------------
    let volume = block_volume();
    let cam = Camera::orthographic([BLOCK; 3], Vec3::new(0.3, -0.2, 0.93), 256, 256);
    let tf = TransferFunction::supernova_velocity();
    let naive_opts = RenderOpts {
        fast_path: false,
        ..Default::default()
    };
    let fast_opts = RenderOpts {
        fast_path: true,
        ..Default::default()
    };

    println!("# render_bench: {BLOCK}^3 supernova block, 256^2 rays, best of {iters}");
    let grid = MacrocellGrid::build(&volume);
    let (naive_secs, naive_stats, naive_img) =
        bench_kernel(&volume, None, &cam, &tf, &naive_opts, iters);
    let (fast_secs, fast_stats, fast_img) =
        bench_kernel(&volume, Some(&grid), &cam, &tf, &fast_opts, iters);

    let bit_identical_kernel = naive_img
        .pixels()
        .iter()
        .zip(fast_img.pixels())
        .all(|(a, b)| (0..4).all(|c| a[c].to_bits() == b[c].to_bits()));
    let samples = naive_stats.samples;
    let skip_fraction = fast_stats.skipped_samples as f64 / fast_stats.samples as f64;
    let naive_rate = samples as f64 / naive_secs;
    let fast_rate = samples as f64 / fast_secs;
    let speedup = (naive_rate > 0.0).then(|| fast_rate / naive_rate);

    // --- End to end: a small frame, honest sparse exchange bytes. ----
    let mut cfg = FrameConfig::small(64, 192, 8);
    cfg.variable = 2;
    let frame_fast = run_frame(&cfg, None);
    cfg.fast_path = false;
    let frame_naive = run_frame(&cfg, None);
    let bit_identical_frame = frame_naive
        .image
        .pixels()
        .iter()
        .zip(frame_fast.image.pixels())
        .all(|(a, b)| (0..4).all(|c| a[c].to_bits() == b[c].to_bits()));
    let comp = &frame_fast.composite;

    // --- Metrics through the observability registry. ------------------
    let reg = Registry::new();
    reg.counter_add("render.samples", "block", fast_stats.samples);
    reg.counter_add("render.skip", "block", fast_stats.skipped_samples);
    reg.counter_add("render.skip", "frame", frame_fast.render_skipped);
    reg.counter_add("composite.sparse_bytes", "frame", comp.bytes);
    reg.counter_add("composite.dense_bytes", "frame", comp.dense_bytes);
    print!("{}", reg.snapshot().to_text());

    let mut csv = CsvOut::create(
        "render_bench",
        "kernel,secs,samples,skipped,samples_per_sec",
    );
    csv.row(&format!(
        "naive,{naive_secs:.6},{samples},{},{naive_rate:.0}",
        naive_stats.skipped_samples
    ));
    csv.row(&format!(
        "fast,{fast_secs:.6},{samples},{},{fast_rate:.0}",
        fast_stats.skipped_samples
    ));

    // The trajectory artifact: every deterministic count is an exact
    // gate, kernel throughput rides a wide relative band (the same
    // machine run-to-run, not cross-machine), wall-clock is info-only.
    let mut traj = Trajectory::new("render");
    traj.exact("block", BLOCK as f64)
        .exact("samples", samples as f64)
        .exact("skipped_samples", fast_stats.skipped_samples as f64)
        .exact("bit_identical_kernel", bit_identical_kernel as u8 as f64)
        .exact("bit_identical_frame", bit_identical_frame as u8 as f64)
        .exact("frame_render_samples", frame_fast.render_samples as f64)
        .exact("frame_render_skipped", frame_fast.render_skipped as f64)
        .exact("frame_composite_bytes", comp.bytes as f64)
        .exact("frame_composite_dense_bytes", comp.dense_bytes as f64)
        .exact("frame_sparse_messages", comp.sparse_messages as f64)
        .exact("frame_messages", comp.messages as f64)
        .rel("skip_fraction", skip_fraction, 0.01)
        .info("iters", iters as f64)
        .info("naive_secs", naive_secs)
        .info("fast_secs", fast_secs)
        .info("naive_samples_per_sec", naive_rate)
        .info("fast_samples_per_sec", fast_rate)
        .info("speedup", speedup.unwrap_or(0.0))
        .table(
            "kernels",
            &["kernel", "secs", "samples", "skipped"],
            vec![
                vec![
                    "naive".into(),
                    format!("{naive_secs:.6}"),
                    samples.to_string(),
                    naive_stats.skipped_samples.to_string(),
                ],
                vec![
                    "fast".into(),
                    format!("{fast_secs:.6}"),
                    samples.to_string(),
                    fast_stats.skipped_samples.to_string(),
                ],
            ],
        );
    write_trajectory(&traj);

    // --- Gates. -------------------------------------------------------
    check(
        "fast path is bit-identical to the naive kernel",
        bit_identical_kernel,
        "256^2 pixels compared bitwise",
    );
    check(
        "fast path is bit-identical end to end (run_frame on vs off)",
        bit_identical_frame,
        "192^2 pixels compared bitwise",
    );
    check(
        "macrocell/LUT classification skips work",
        skip_fraction > 0.0,
        &format!("{:.1}% of samples skipped", 100.0 * skip_fraction),
    );
    check(
        "sparse exchange ships fewer bytes than dense",
        comp.bytes < comp.dense_bytes,
        &format!(
            "{} sparse vs {} dense ({} of {} messages sparse)",
            comp.bytes, comp.dense_bytes, comp.sparse_messages, comp.messages
        ),
    );
    check(
        "fast path reaches 2x samples/sec",
        speedup.unwrap_or(0.0) >= 2.0,
        &format!("{:.2}x", speedup.unwrap_or(0.0)),
    );

    // Correctness gates are hard failures everywhere; throughput is
    // machine-dependent and only reported.
    let ok = bit_identical_kernel
        && bit_identical_frame
        && skip_fraction > 0.0
        && comp.bytes < comp.dense_bytes;
    if !ok {
        std::process::exit(1);
    }
}
