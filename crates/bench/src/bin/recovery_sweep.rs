//! Self-healing sweep: the `recovery-sweep` CI gate.
//!
//! Drives the recovery orchestrator (orphan-block adoption, straggler
//! hedging, the deadline degradation ladder) across the full fault
//! space on a laptop-scale frame and gates the healing contract:
//!
//! * **Crash matrix** — a single permanent rank crash at *any* stage
//!   (I/O, render, composite) and *any* non-root rank heals
//!   bit-identically: survivors adopt the orphan block, compositors
//!   accept the late fragments, a dead compositor's tile is rebuilt at
//!   the root. Completeness is exactly 1.0 and `adopted_blocks > 0`.
//! * **Zero unhealed transients** — the drop-depth × straggler × down-
//!   server grid of `fault_sweep` must heal every cell bit-identically
//!   (all faults there are survivable by construction).
//! * **Stragglers are hedged** — a 1.2 s straggle at any stage does not
//!   show up in the frame wall: suspicion fires a speculative duplicate
//!   render and first-wins dedup discards the loser.
//! * **Ladder accounting** — a budget that only fits the coarse rung
//!   keeps the frame complete with `error_bound > 0`; an exhausted
//!   budget degrades with the loss attributed in the completeness map.
//!
//! Writes `results/BENCH_recovery.json` (healed fraction, recovery
//! bytes, p95 frame wall over the crash matrix) for the CI artifact.
//! Exits nonzero on any violated gate.

use std::path::{Path, PathBuf};
use std::time::Instant;

use pvr_core::pipeline::{run_frame_mpi, tags, write_dataset};
use pvr_core::{frame_block_costs, run_frame_mpi_ft, CompositorPolicy, FrameConfig, PerfModel};
use pvr_faults::{
    FaultPlan, LinkAction, LinkFault, Pat, RankAction, RankFault, RecoveryPolicy, ServerAction,
    ServerFault, Stage,
};
use pvr_obs::bench::Trajectory;
use pvr_render::image::Image;

fn test_cfg() -> FrameConfig {
    let mut cfg = FrameConfig::small(16, 24, 8);
    cfg.variable = 2;
    cfg.policy = CompositorPolicy::Fixed(4);
    cfg
}

fn dataset(cfg: &FrameConfig) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pvr-recovery-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    let p = d.join("sweep.raw");
    write_dataset(&p, cfg).unwrap();
    p
}

fn check(name: &str, ok: bool, detail: String) -> bool {
    println!("{} {name}: {detail}", if ok { "PASS" } else { "FAIL" });
    ok
}

fn stage_name(s: Stage) -> &'static str {
    match s {
        Stage::Io => "io",
        Stage::Render => "render",
        Stage::Composite => "composite",
    }
}

struct MatrixCell {
    rank: usize,
    stage: &'static str,
    healed: bool,
    adopted_blocks: u64,
    recovery_bytes: u64,
    wall_ms: f64,
}

/// Every (non-root rank, stage) single-crash cell must heal to a frame
/// bit-identical with the fault-free baseline.
fn crash_matrix(
    cfg: &FrameConfig,
    path: &Path,
    policy: &RecoveryPolicy,
    baseline: &Image,
) -> (bool, Vec<MatrixCell>) {
    let mut ok = true;
    let mut cells = Vec::new();
    println!("# crash matrix: single permanent crash, every rank x stage");
    for stage in [Stage::Io, Stage::Render, Stage::Composite] {
        for rank in 1..cfg.nprocs {
            let plan = FaultPlan {
                seed: 100 + rank as u64,
                ranks: vec![RankFault {
                    rank,
                    stage,
                    action: RankAction::Crash,
                }],
                ..FaultPlan::default()
            };
            let t0 = Instant::now();
            let cell = match run_frame_mpi_ft(cfg, path, &plan, policy) {
                Ok(ft) => {
                    let rec = ft.frame.timing.recovery;
                    let healed = baseline.pixels() == ft.frame.image.pixels()
                        && ft.completeness.fully_complete()
                        && rec.adopted_blocks >= 1;
                    MatrixCell {
                        rank,
                        stage: stage_name(stage),
                        healed,
                        adopted_blocks: rec.adopted_blocks,
                        recovery_bytes: rec.recovery_bytes,
                        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                    }
                }
                Err(e) => {
                    println!("  rank {rank} stage {}: RUN FAILED: {e}", stage_name(stage));
                    MatrixCell {
                        rank,
                        stage: stage_name(stage),
                        healed: false,
                        adopted_blocks: 0,
                        recovery_bytes: 0,
                        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                    }
                }
            };
            ok &= cell.healed;
            println!(
                "  rank {} stage {:>9}: {} ({} adopted, {} bytes, {:.0} ms)",
                cell.rank,
                cell.stage,
                if cell.healed { "healed" } else { "UNHEALED" },
                cell.adopted_blocks,
                cell.recovery_bytes,
                cell.wall_ms
            );
            cells.push(cell);
        }
    }
    (ok, cells)
}

/// The transient grid of `fault_sweep`, gated: every cell heals.
fn transient_grid(cfg: &FrameConfig, path: &Path, policy: &RecoveryPolicy, base: &Image) -> bool {
    let mut unhealed = 0usize;
    let mut cases = 0usize;
    for depth in [0u32, 1, 2] {
        for stragglers in [0usize, 1, 2] {
            for down in [0usize, 1] {
                let mut plan = FaultPlan {
                    seed: 11,
                    ..FaultPlan::default()
                };
                if depth > 0 {
                    plan.links.push(LinkFault {
                        src: Pat::Is(1),
                        dst: Pat::Any,
                        tag: Some(tags::FRAGMENT),
                        action: LinkAction::DropFirst(depth),
                    });
                    plan.links.push(LinkFault {
                        src: Pat::Any,
                        dst: Pat::Is(2),
                        tag: Some(tags::IO_SCATTER),
                        action: LinkAction::DropFirst(depth),
                    });
                }
                for s in 0..stragglers {
                    plan.ranks.push(RankFault {
                        rank: 3 + s,
                        stage: Stage::Render,
                        action: RankAction::StraggleMs(20),
                    });
                }
                for s in 0..down {
                    plan.servers.push(ServerFault {
                        server: s,
                        action: ServerAction::Down,
                    });
                }
                cases += 1;
                match run_frame_mpi_ft(cfg, path, &plan, policy) {
                    Ok(ft)
                        if base.pixels() == ft.frame.image.pixels()
                            && ft.completeness.fully_complete() => {}
                    _ => unhealed += 1,
                }
            }
        }
    }
    check(
        "zero-unhealed-transients",
        unhealed == 0,
        format!("{unhealed}/{cases} transient cells left unhealed"),
    )
}

/// A 1.2 s straggle at each stage is hedged: bit-identical frame, wall
/// bounded well below the straggle.
fn straggle_bounded(cfg: &FrameConfig, path: &Path, policy: &RecoveryPolicy, base: &Image) -> bool {
    let mut ok = true;
    for stage in [Stage::Render, Stage::Composite] {
        let plan = FaultPlan {
            seed: 4,
            ranks: vec![RankFault {
                rank: 3,
                stage,
                action: RankAction::StraggleMs(1200),
            }],
            ..FaultPlan::default()
        };
        match run_frame_mpi_ft(cfg, path, &plan, policy) {
            Ok(ft) => {
                let rec = ft.frame.timing.recovery;
                ok &= check(
                    &format!("straggle-bounded-{}", stage_name(stage)),
                    base.pixels() == ft.frame.image.pixels()
                        && ft.completeness.fully_complete()
                        && rec.hedged_renders >= 1
                        && ft.frame.timing.wall < 1.2,
                    format!(
                        "{} hedges, wall {:.3}s < 1.2s straggle",
                        rec.hedged_renders, ft.frame.timing.wall
                    ),
                );
            }
            Err(e) => {
                ok &= check(
                    &format!("straggle-bounded-{}", stage_name(stage)),
                    false,
                    e.to_string(),
                )
            }
        }
    }
    ok
}

/// The degradation ladder's accounting: coarse heals stay complete and
/// carry an error bound; exhausted budgets degrade explicitly.
fn ladder_accounting(cfg: &FrameConfig, path: &Path, policy: &RecoveryPolicy) -> bool {
    let mut ok = true;
    let model = PerfModel::default();
    let est = frame_block_costs(cfg, &model)[5];
    let plan = FaultPlan {
        seed: 9,
        ranks: vec![RankFault {
            rank: 5,
            stage: Stage::Composite,
            action: RankAction::Crash,
        }],
        ..FaultPlan::default()
    };

    let mut coarse = *policy;
    coarse.frame_budget = Some(est * 0.5);
    match run_frame_mpi_ft(cfg, path, &plan, &coarse) {
        Ok(ft) => {
            let rec = ft.frame.timing.recovery;
            ok &= check(
                "ladder-coarse-heals-with-error-bound",
                ft.completeness.fully_complete()
                    && rec.approx_blocks >= 1
                    && ft.frame.timing.error_bound > 0.0,
                format!(
                    "{} approx blocks, error bound {:.4}",
                    rec.approx_blocks, ft.frame.timing.error_bound
                ),
            );
        }
        Err(e) => ok &= check("ladder-coarse-heals-with-error-bound", false, e.to_string()),
    }

    let mut exhausted = *policy;
    exhausted.frame_budget = Some(est * 0.1);
    match run_frame_mpi_ft(cfg, path, &plan, &exhausted) {
        Ok(ft) => {
            ok &= check(
                "ladder-exhausted-degrades-explicitly",
                !ft.completeness.fully_complete()
                    && ft.frame.timing.recovery.approx_blocks == 0
                    && ft.frame.timing.error_bound == 0.0,
                format!("completeness {:.4}", ft.completeness.frame_fraction()),
            );
        }
        Err(e) => ok &= check("ladder-exhausted-degrades-explicitly", false, e.to_string()),
    }
    ok
}

/// The `BENCH_recovery.json` trajectory over the crash matrix: cell
/// and heal counts are exact (every cell must heal, deterministically),
/// recovery traffic rides a band (adoption is suspicion-timer driven),
/// and the p95 frame wall is info-only.
fn recovery_trajectory(cells: &[MatrixCell]) -> Trajectory {
    let healed = cells.iter().filter(|c| c.healed).count();
    let bytes: u64 = cells.iter().map(|c| c.recovery_bytes).sum();
    let mut walls: Vec<f64> = cells.iter().map(|c| c.wall_ms).collect();
    walls.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p95 = if walls.is_empty() {
        0.0
    } else {
        walls[((walls.len() as f64 * 0.95).ceil() as usize - 1).min(walls.len() - 1)]
    };
    let mut t = Trajectory::new("recovery");
    t.exact("crash_cells", cells.len() as f64)
        .exact("healed_cells", healed as f64)
        .exact(
            "healed_fraction",
            if cells.is_empty() {
                1.0
            } else {
                healed as f64 / cells.len() as f64
            },
        )
        .rel("recovery_bytes_total", bytes as f64, 0.5)
        .info("p95_frame_wall_ms", p95)
        .table(
            "cells",
            &[
                "rank",
                "stage",
                "healed",
                "adopted_blocks",
                "recovery_bytes",
                "wall_ms",
            ],
            cells
                .iter()
                .map(|c| {
                    vec![
                        c.rank.to_string(),
                        c.stage.to_string(),
                        (c.healed as u8).to_string(),
                        c.adopted_blocks.to_string(),
                        c.recovery_bytes.to_string(),
                        format!("{:.2}", c.wall_ms),
                    ]
                })
                .collect(),
        );
    t
}

fn main() {
    let t0 = Instant::now();
    let cfg = test_cfg();
    let path = dataset(&cfg);
    let policy = RecoveryPolicy::fast_test();
    let baseline = run_frame_mpi(&cfg, &path);

    let (matrix_ok, cells) = crash_matrix(&cfg, &path, &policy, &baseline.image);
    let mut all = check(
        "crash-matrix-heals",
        matrix_ok,
        format!(
            "{}/{} cells healed bit-identically",
            cells.iter().filter(|c| c.healed).count(),
            cells.len()
        ),
    );
    all &= transient_grid(&cfg, &path, &policy, &baseline.image);
    all &= straggle_bounded(&cfg, &path, &policy, &baseline.image);
    all &= ladder_accounting(&cfg, &path, &policy);

    pvr_bench::write_trajectory(&recovery_trajectory(&cells));
    println!(
        "recovery-sweep: {} in {:.1}s",
        if all { "all gates passed" } else { "FAILURES" },
        t0.elapsed().as_secs_f64()
    );

    std::fs::remove_file(&path).ok();
    if !all {
        std::process::exit(1);
    }
}
