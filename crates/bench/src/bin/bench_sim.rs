//! `bench_sim` — the discrete-event scheduler benchmark.
//!
//! Three measurements at n = 256 simulated ranks, comparing the
//! single-threaded discrete-event core against the original
//! thread-per-rank oracle (`Backend::Thread`, feature `thread-exec`):
//!
//! 1. **End-to-end frame** (read → render → direct-send composite →
//!    gather): the oracle check. Both backends must produce
//!    bit-identical images, and all 256 rank tasks must be resident in
//!    one address space at once.
//! 2. **Pure exchange**: a direct-send-shaped message storm (every
//!    rank fans a fragment out to 64 compositors, compositors drain
//!    wildcard receives, barrier, repeat). Yields the event core's
//!    raw dispatch throughput in events/sec.
//! 3. **The CI sweep shape**: the same exchange with each round
//!    preceded by a simulated window read (the study measures I/O at
//!    ≥95% of the frame at scale) and with one rank's fragments dropped
//!    by a fault injector, so compositors finish the round through a
//!    timed receive — the `fault_sweep` workload in miniature. The
//!    event core advances the virtual clock past the reads and the
//!    timeout expiries for free; the thread oracle must sleep them off
//!    in wall time (exactly what capped the old CI sweeps). The ≥5×
//!    wall-ratio gate applies here.
//!
//! Writes `results/BENCH_sim.json`. Gates (hard failures, any mode):
//! bit-identical frames, full task residency, and event core ≥5×
//! faster than threads on the sweep-shaped workload. `--ci` is
//! accepted for symmetry with the other regenerators; the run is
//! identical.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use pvr_bench::{check, write_trajectory, CsvOut};
use pvr_core::pipeline::run_frame_mpi_sim;
use pvr_core::{write_dataset, CompositorPolicy, FrameConfig, FrameResult};
use pvr_mpisim::{Backend, Comm, RunOptions, SimStats, World};
use pvr_obs::bench::Trajectory;

const N: usize = 256;
/// Compositor count of the exchange — the paper's improved policy at
/// this scale (m = n/4).
const M: usize = 64;
/// Exchange rounds per timed run (amortizes world setup a little
/// without hiding it; thread spawn cost is real executor cost).
const ROUNDS: usize = 4;
/// Simulated window-read time per round in the I/O-shaped workload.
/// 20 ms for a few hundred KB window is ~10 MB/s effective — far
/// *kinder* than the paper's measured I/O share, which would make the
/// gap larger still.
const IO_MS: u64 = 20;
/// Timed-receive deadline for the faulted rounds — the recovery
/// sweeps' detection budget. Every compositor spends one expiry per
/// round waiting out the dropped rank's fragments.
const DETECT_MS: u64 = 100;
/// The rank whose fragments the injector drops in the sweep-shaped
/// workload.
const DROPPED: usize = N - 1;

type BoxFut<T> = std::pin::Pin<Box<dyn std::future::Future<Output = T>>>;

fn config() -> FrameConfig {
    let mut cfg = FrameConfig::small(32, 64, N);
    cfg.policy = CompositorPolicy::Improved;
    cfg
}

fn dataset() -> PathBuf {
    let d = std::env::temp_dir().join(format!("pvr-bench-sim-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    let p = d.join("sim.raw");
    write_dataset(&p, &config()).unwrap();
    p
}

/// One timed frame on the given backend. The thread oracle reports no
/// scheduler counters, so stats are `None` there.
fn timed_frame(path: &Path, backend: Backend) -> (FrameResult, Option<SimStats>, f64) {
    let opts = RunOptions::default()
        .with_backend(backend)
        .with_timeout(None);
    let t0 = Instant::now();
    let (frame, sim) = run_frame_mpi_sim(&config(), path, opts)
        .unwrap_or_else(|e| panic!("{backend:?} frame failed: {e}"));
    (frame, sim, t0.elapsed().as_secs_f64())
}

/// Drops every fragment the `DROPPED` rank sends — the lost-rank
/// scenario the recovery sweeps detect through timed receives.
struct DropRank;

impl pvr_mpisim::fault::FaultInjector for DropRank {
    fn on_send(
        &self,
        src: usize,
        _dst: usize,
        _tag: u32,
        _seq: u64,
        _data: &mut Vec<u8>,
    ) -> pvr_mpisim::fault::SendFate {
        if src == DROPPED {
            pvr_mpisim::fault::SendFate::Drop
        } else {
            pvr_mpisim::fault::SendFate::Deliver
        }
    }
}

/// The direct-send exchange: an optional simulated window read, then
/// renderers fan out, compositors drain, everyone barriers, `ROUNDS`
/// times. In the faulted variant the compositors cannot know the
/// dropped rank is gone, so they finish each round by waiting out a
/// timed receive — the recovery sweeps' detection path. Every byte
/// received is summed so the work cannot be optimized away and the
/// backends can be compared.
fn exchange_program(
    io: Option<Duration>,
    faulted: bool,
) -> impl Fn(Comm) -> BoxFut<u64> + Send + Sync {
    move |mut comm: Comm| {
        Box::pin(async move {
            let me = comm.rank();
            let n = comm.size();
            let mut sum = 0u64;
            for round in 0..ROUNDS {
                if let Some(d) = io {
                    comm.sleep(d).await;
                }
                let tag = round as u32 + 1;
                for c in 0..M {
                    comm.send(c, tag, vec![me as u8; 64]).await;
                }
                if me < M {
                    if faulted {
                        let detect = Duration::from_millis(DETECT_MS);
                        while let Some((_, data)) = comm.recv_any_timeout(tag, detect).await {
                            sum += data.iter().map(|&b| b as u64).sum::<u64>();
                        }
                    } else {
                        for _ in 0..n {
                            let (_, data) = comm.recv_any(tag).await;
                            sum += data.iter().map(|&b| b as u64).sum::<u64>();
                        }
                    }
                }
                comm.barrier().await;
            }
            sum
        })
    }
}

/// Run the exchange on a backend; returns (wall seconds, stats).
fn timed_exchange(
    backend: Backend,
    io: Option<Duration>,
    faulted: bool,
) -> (f64, Option<SimStats>) {
    let mut opts = RunOptions::default()
        .with_backend(backend)
        .with_timeout(None);
    if faulted {
        opts = opts.with_injector(std::sync::Arc::new(DropRank));
    }
    let t0 = Instant::now();
    let out = World::run_opts(N, opts, exchange_program(io, faulted))
        .unwrap_or_else(|e| panic!("{backend:?} exchange failed: {e}"));
    let wall = t0.elapsed().as_secs_f64();
    // Cross-backend correctness of the payload sums, while we're here.
    let expect: u64 = (0..N)
        .filter(|&r| !(faulted && r == DROPPED))
        .map(|r| (r as u64) * 64 * ROUNDS as u64)
        .sum();
    for (c, &s) in out.results.iter().enumerate().take(M) {
        assert_eq!(s, expect, "compositor {c} sum diverged on {backend:?}");
    }
    (wall, out.sim)
}

fn best_of<F: FnMut() -> (f64, Option<SimStats>)>(
    runs: usize,
    mut f: F,
) -> (f64, Option<SimStats>) {
    let mut best = (f64::INFINITY, None);
    for _ in 0..runs {
        let (w, s) = f();
        if w < best.0 {
            best = (w, s);
        }
    }
    best
}

fn main() {
    let _ci = std::env::args().any(|a| a == "--ci");
    let path = dataset();
    let io = Duration::from_millis(IO_MS);

    // --- The oracle check: one frame per backend, bit-compared. ------
    let (event_frame, event_sim, frame_event_secs) = timed_frame(&path, Backend::Event);
    let frame_sim = event_sim.expect("event backend reports scheduler stats");
    let (thread_frame, thread_sim, frame_thread_secs) = timed_frame(&path, Backend::Thread);
    assert!(thread_sim.is_none(), "thread oracle has no event counters");
    let identical = event_frame.image.max_abs_diff(&thread_frame.image) == 0.0;

    // --- Raw dispatch throughput: pure exchange, best of 3. ----------
    let (ex_event_secs, ex_sim) = best_of(3, || timed_exchange(Backend::Event, None, false));
    let ex_sim = ex_sim.expect("event backend reports scheduler stats");
    let (ex_thread_secs, _) = best_of(3, || timed_exchange(Backend::Thread, None, false));

    // Scheduler events: everything the core dispatched — task polls,
    // message deliveries, timer fires.
    let events = ex_sim.polls + ex_sim.messages + ex_sim.timer_fires;
    let events_per_sec = events as f64 / ex_event_secs.max(1e-9);

    // --- The gated ratio: the CI sweep shape, best of 3. -------------
    let (io_event_secs, io_sim) = best_of(3, || timed_exchange(Backend::Event, Some(io), true));
    let io_sim = io_sim.expect("event backend reports scheduler stats");
    let (io_thread_secs, _) = best_of(3, || timed_exchange(Backend::Thread, Some(io), true));
    let ratio = io_thread_secs / io_event_secs.max(1e-9);
    // The reads and the timeout expiries must have been charged to the
    // virtual clock: ROUNDS reads plus ROUNDS detection waits per
    // compositor, all overlapping across ranks.
    let expected_virtual = (io + Duration::from_millis(DETECT_MS)) * ROUNDS as u32;
    let virtual_ok = io_sim.virtual_time >= expected_virtual && io_sim.timer_fires >= N as u64;

    let mut csv = CsvOut::create(
        "bench_sim",
        "workload,backend,wall_secs,events,events_per_sec",
    );
    csv.row(&format!("frame,event,{frame_event_secs:.6},,"));
    csv.row(&format!("frame,thread,{frame_thread_secs:.6},,"));
    csv.row(&format!(
        "exchange,event,{ex_event_secs:.6},{events},{events_per_sec:.0}"
    ));
    csv.row(&format!("exchange,thread,{ex_thread_secs:.6},,"));
    csv.row(&format!("sweep_shape,event,{io_event_secs:.6},,"));
    csv.row(&format!("sweep_shape,thread,{io_thread_secs:.6},,"));

    // Deterministic counters gate exactly; wall-clock figures are
    // machine-dependent and ride as info (the ≥5× ratio is gated by
    // this bin itself, below, not by `perf_gate` across runs).
    let mut traj = Trajectory::new("sim");
    traj.exact("n", N as f64)
        .exact("peak_resident_ranks", frame_sim.peak_resident as f64)
        .exact("backends_bit_identical", identical as u8 as f64)
        .exact("exchange_messages", ex_sim.messages as f64)
        .exact("frame_messages", frame_sim.messages as f64)
        .exact("io_virtual_time_charged", virtual_ok as u8 as f64)
        .info("exchange_polls", ex_sim.polls as f64)
        .info("events_per_sec", events_per_sec)
        .info("wall_exchange_event_secs", ex_event_secs)
        .info("wall_exchange_thread_secs", ex_thread_secs)
        .info("wall_sweep_shape_event_secs", io_event_secs)
        .info("wall_sweep_shape_thread_secs", io_thread_secs)
        .info("wall_frame_event_secs", frame_event_secs)
        .info("wall_frame_thread_secs", frame_thread_secs)
        .info("thread_wall_ratio", ratio);
    write_trajectory(&traj);

    // --- Gates. -------------------------------------------------------
    check(
        "event and thread backends render bit-identical frames",
        identical,
        "n=256 frame compared pixelwise",
    );
    check(
        "all rank tasks resident in one address space",
        frame_sim.peak_resident == N,
        &format!("peak {} of {N}", frame_sim.peak_resident),
    );
    check(
        "simulated reads and detection waits are charged to the virtual clock",
        virtual_ok,
        &format!(
            "{:?} virtual for {} timer fires",
            io_sim.virtual_time, io_sim.timer_fires
        ),
    );
    check(
        "event core is >= 5x faster than the thread oracle",
        ratio >= 5.0,
        &format!(
            "{ratio:.1}x ({io_event_secs:.4}s vs {io_thread_secs:.4}s, sweep-shaped workload)"
        ),
    );
    if !(identical && frame_sim.peak_resident == N && virtual_ok && ratio >= 5.0) {
        std::process::exit(1);
    }
}
