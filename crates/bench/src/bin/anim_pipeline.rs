//! Animation pipelining — sequential vs. double-buffered time steps.
//!
//! The paper's Table II shows the frame is ≥95% I/O at scale; its
//! future-work section points at overlapping time steps to hide it.
//! This bench runs a short animation both ways (strictly sequential
//! frames vs. prefetching frame `t+1` while frame `t` renders and
//! composites) on **both** executors, against a throttled store that
//! reproduces the I/O-dominated regime, and reports:
//!
//! * wall clock and frames/second for each mode,
//! * the I/O-hiding fraction (how much of the summed read time never
//!   appeared on the wall clock),
//! * the measured prefetch/compute span overlap from the wall-clock
//!   trace, exported as a Perfetto timeline artifact.
//!
//! Self-checks: pipelining must not be slower than sequential on this
//! I/O-dominated configuration, must hide a nonzero amount of I/O, and
//! every pipelined frame must hash bit-identically to an independent
//! single-frame run of the same file — pipelining changes wall clock,
//! never pixels. `--ci` shrinks to the smoke configuration (8 ranks,
//! 4 frames) the `anim-pipeline` CI job runs.

use pvr_bench::{check, write_artifact, CsvOut};
use pvr_core::{
    run_animation, run_frame, run_frame_mpi, write_animation, AnimOptions, AnimResult,
    CompositorPolicy, FrameConfig,
};
use pvr_obs::{perfetto, span_overlap, Tracer};
use pvr_render::image::Image;

/// FNV-1a over the image's pixel bytes — a stable content hash for
/// bit-identity checks.
fn image_hash(img: &Image) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for px in img.pixels() {
        for c in px {
            for b in c.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
    }
    h
}

fn frame_hashes(r: &AnimResult) -> Vec<u64> {
    r.frames
        .iter()
        .map(|f| image_hash(&f.result.image))
        .collect()
}

fn main() {
    let ci = std::env::args().any(|a| a == "--ci");
    // 8 ranks, laptop-scale grid; the throttle floors every read so
    // I/O dominates the frame the way the paper's Table II reports.
    // Image size sets the compute per frame, the throttle sets the I/O
    // per frame; they are balanced so the reads are long enough to be
    // worth hiding and the renders long enough to hide them under.
    let (grid, image, frames, bytes_per_sec) = if ci {
        (16, 256, 4, 400_000.0)
    } else {
        (24, 384, 6, 600_000.0)
    };
    let mut cfg = FrameConfig::small(grid, image, 8);
    cfg.policy = CompositorPolicy::Fixed(4);

    let dir = std::env::temp_dir().join(format!("pvr-anim-pipeline-{}", std::process::id()));
    let paths = write_animation(&dir, &cfg, frames).expect("write animation steps");

    let mut csv = CsvOut::create(
        "anim_pipeline",
        "executor,mode,frames,wall_s,fps,stage_sum_s,io_sum_s,io_hidden_frac",
    );
    let mut all = true;
    let mut chk = |name: &str, ok: bool, detail: &str| {
        all &= ok;
        check(name, ok, detail);
    };

    let throttle = |o: AnimOptions| o.throttled(bytes_per_sec);
    let mut emit = |executor: &str, mode: &str, r: &AnimResult| {
        csv.row(&format!(
            "{executor},{mode},{},{:.4},{:.2},{:.4},{:.4},{:.3}",
            r.frames.len(),
            r.wall,
            r.fps(),
            r.stage_sum(),
            r.io_sum(),
            r.io_hidden_fraction(),
        ));
    };

    // --- Rayon executor, traced so the overlap is visible. ---
    let seq = run_animation(&cfg, &paths, &throttle(AnimOptions::rayon()).sequential())
        .expect("sequential rayon animation");
    let tracer = Tracer::wall();
    let pipe = run_animation(
        &cfg,
        &paths,
        &throttle(AnimOptions::rayon()).traced(&tracer),
    )
    .expect("pipelined rayon animation");
    emit("rayon", "sequential", &seq);
    emit("rayon", "pipelined", &pipe);

    chk(
        "rayon pipelined not slower",
        pipe.wall <= seq.wall,
        &format!("pipelined {:.3}s vs sequential {:.3}s", pipe.wall, seq.wall),
    );
    chk(
        "rayon hides I/O",
        pipe.io_hidden_fraction() > 0.0,
        &format!("hidden fraction {:.3}", pipe.io_hidden_fraction()),
    );

    // Bit-identity against independent single-frame runs.
    let independent: Vec<u64> = paths
        .iter()
        .enumerate()
        .map(|(t, p)| {
            let mut step = cfg;
            step.seed = cfg.seed.wrapping_add(t as u64);
            image_hash(&run_frame(&step, Some(p)).image)
        })
        .collect();
    chk(
        "rayon pipelined frames bit-identical to independent frames",
        frame_hashes(&pipe) == independent,
        &format!("{} frames", frames),
    );

    // Measured overlap between the prefetch reads and frame compute,
    // from the wall-clock spans; exported for ui.perfetto.dev.
    let profile = tracer.finish();
    let ov = span_overlap(&profile, &["io.read"], &["render", "composite"]);
    chk(
        "prefetch reads overlap compute in the trace",
        ov.both > 0,
        &format!(
            "{} µs of {} µs reads under compute ({:.0}%)",
            ov.both,
            ov.a_total,
            100.0 * ov.a_hidden_fraction()
        ),
    );
    let json = perfetto::to_json(&profile);
    perfetto::validate(&json).expect("trace JSON validates");
    write_artifact("anim_pipeline.trace.json", json.as_bytes());

    // --- Message-passing executor: same comparison, per-rank window
    // prefetch under epoch tags. ---
    let seq_mpi = run_animation(&cfg, &paths, &throttle(AnimOptions::mpi()).sequential())
        .expect("sequential mpi animation");
    let pipe_mpi = run_animation(&cfg, &paths, &throttle(AnimOptions::mpi()))
        .expect("pipelined mpi animation");
    emit("mpi", "sequential", &seq_mpi);
    emit("mpi", "pipelined", &pipe_mpi);

    chk(
        "mpi pipelined not slower",
        pipe_mpi.wall <= seq_mpi.wall,
        &format!(
            "pipelined {:.3}s vs sequential {:.3}s",
            pipe_mpi.wall, seq_mpi.wall
        ),
    );
    let independent_mpi: Vec<u64> = paths
        .iter()
        .enumerate()
        .map(|(t, p)| {
            let mut step = cfg;
            step.seed = cfg.seed.wrapping_add(t as u64);
            image_hash(&run_frame_mpi(&step, p).image)
        })
        .collect();
    chk(
        "mpi pipelined frames bit-identical to independent frames",
        frame_hashes(&pipe_mpi) == independent_mpi,
        &format!("{} frames", frames),
    );
    chk(
        "executors agree on every frame",
        frame_hashes(&pipe_mpi) == frame_hashes(&pipe),
        "mpi vs rayon image hashes",
    );

    std::fs::remove_dir_all(&dir).ok();
    if !all {
        std::process::exit(1);
    }
}
