//! Figure 8 — the organization of variables within the netCDF file.
//!
//! Renders the record-variable interleaving as a byte-accurate diagram
//! computed from the actual layout code (not a hand-drawn picture): one
//! row per file region, showing how the five variables' 2D records
//! alternate, and where a single-variable read therefore has to seek.

use pvr_bench::{check, CsvOut};
use pvr_formats::layout::{FileLayout, NetCdfClassicLayout};
use pvr_formats::Subvolume;
use pvr_volume::VAR_NAMES;

fn main() {
    // A miniature 8-record file keeps the diagram readable; offsets
    // scale exactly to the 1120-record production file.
    let grid = [1120, 1120, 8];
    let l = NetCdfClassicLayout::new(grid, 5);

    println!(
        "# netCDF classic record-variable layout, {} variables, {} records",
        5, grid[2]
    );
    println!(
        "# record = one z-slice of one variable = {} bytes",
        l.record_bytes()
    );
    println!(
        "# stride between records of the same variable = {} bytes",
        l.record_stride()
    );
    println!();

    let mut csv = CsvOut::create("fig8_layout", "offset_bytes,len_bytes,content");
    csv.row(&format!("0,{},header", l.header_bytes()));
    for z in 0..grid[2] {
        for (v, name) in VAR_NAMES.iter().enumerate() {
            let sub = Subvolume::new([0, 0, z], [grid[0], grid[1], 1]);
            let e = l.extents(v, &sub);
            assert_eq!(e.len(), 1, "one record is one extent");
            csv.row(&format!("{},{},{name}[z={z}]", e[0].offset, e[0].len));
        }
    }

    // ASCII bar: 'P' pressure, 'd' density, 'x/y/z' velocities.
    let glyphs = ['P', 'd', 'x', 'y', 'z'];
    let mut bar = String::from("|hdr|");
    for _z in 0..grid[2] {
        for g in glyphs {
            bar.push(g);
            bar.push('|');
        }
    }
    println!("\nfile map (one cell per record): {bar}\n");

    // Reading one variable touches exactly 1-in-5 of the data area.
    let whole = Subvolume::whole(grid);
    let e = l.extents(2, &whole);
    let useful: u64 = e.iter().map(|x| x.len).sum();
    let data_area = l.file_size() - l.header_bytes();
    check(
        "one variable occupies exactly 1/5 of the data area, in stride-separated records",
        useful * 5 == data_area && e.len() == grid[2],
        &format!(
            "{} records of {} bytes every {} bytes",
            e.len(),
            e[0].len,
            l.record_stride()
        ),
    );
}
