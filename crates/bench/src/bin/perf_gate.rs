//! `perf_gate` — the perf-trajectory regression gate.
//!
//! Compares every `BENCH_*.json` trajectory in a fresh results
//! directory against the committed baseline under each metric's own
//! gate class ([`Gate::Exact`] / [`Gate::Rel`] / [`Gate::Info`] — see
//! `pvr_obs::bench`), and exits nonzero on any gated drift. The gate
//! also proves its own teeth on every run: a synthetically regressed
//! copy of each baseline ([`Trajectory::regressed`]) must *fail* the
//! comparison, so a schema change that silently ungates everything is
//! itself a gate failure.
//!
//! ```text
//! perf_gate                       # committed results/ vs itself + self-test
//! perf_gate --fresh /tmp/run      # committed results/ vs a fresh run
//! perf_gate --baseline DIR --fresh DIR
//! ```
//!
//! With no `--fresh`, the baseline is compared against itself — this
//! is the CI parse-and-self-test mode: it proves the committed
//! artifacts parse under the current schema, pass their own gates, and
//! that every gate class can still fail.

use std::path::{Path, PathBuf};
use std::process::exit;

use pvr_obs::bench::{compare, Gate, GateCheck, Trajectory};

fn usage() -> ! {
    eprintln!("usage: perf_gate [--baseline DIR] [--fresh DIR]");
    exit(2);
}

fn load_dir(dir: &Path) -> Vec<(String, Trajectory)> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("perf_gate: cannot read {}: {e}", dir.display());
            exit(2);
        }
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let text = match std::fs::read_to_string(entry.path()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("perf_gate: read {name}: {e}");
                exit(2);
            }
        };
        match Trajectory::from_json(&text) {
            Ok(t) => out.push((name, t)),
            Err(e) => {
                eprintln!(
                    "perf_gate: {name} does not parse as {}: {e}",
                    pvr_obs::bench::SCHEMA
                );
                exit(1);
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn gate_str(g: Gate) -> String {
    match g {
        Gate::Exact => "exact".to_string(),
        Gate::Rel(t) => format!("rel:{t}"),
        Gate::Info => "info".to_string(),
    }
}

/// Print one trajectory's checks; return the number of failures.
fn report(bench: &str, checks: &[GateCheck]) -> usize {
    let mut failures = 0usize;
    for c in checks {
        let ok = c.pass;
        if !ok {
            failures += 1;
        }
        // Passing info rows are elided to keep the log scannable;
        // every gated metric and every failure prints.
        if !ok || !matches!(c.gate, Gate::Info) {
            println!(
                "{} {bench}/{} [{}]: baseline {} fresh {} ({})",
                if ok { "PASS" } else { "FAIL" },
                c.key,
                gate_str(c.gate),
                c.baseline,
                c.fresh,
                c.note
            );
        }
    }
    failures
}

fn main() {
    let mut baseline_dir = PathBuf::from("results");
    let mut fresh_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => {
                baseline_dir = args.next().map(PathBuf::from).unwrap_or_else(|| usage())
            }
            "--fresh" => {
                fresh_dir = Some(args.next().map(PathBuf::from).unwrap_or_else(|| usage()))
            }
            _ => usage(),
        }
    }

    let baselines = load_dir(&baseline_dir);
    if baselines.is_empty() {
        eprintln!(
            "perf_gate: no BENCH_*.json trajectories under {}",
            baseline_dir.display()
        );
        exit(1);
    }
    let mut failures = 0usize;
    let mut gated_metrics = 0usize;

    match &fresh_dir {
        Some(fd) => {
            // Real mode: committed baseline vs a fresh run.
            let fresh = load_dir(fd);
            for (name, base) in &baselines {
                match fresh.iter().find(|(n, _)| n == name) {
                    None => {
                        println!("FAIL {name}: missing from fresh dir {}", fd.display());
                        failures += 1;
                    }
                    Some((_, f)) => {
                        let checks = compare(base, f);
                        gated_metrics += checks
                            .iter()
                            .filter(|c| !matches!(c.gate, Gate::Info))
                            .count();
                        failures += report(&base.bench, &checks);
                    }
                }
            }
        }
        None => {
            // CI parse-and-self-test mode: each committed trajectory
            // must pass against itself...
            for (name, base) in &baselines {
                let checks = compare(base, base);
                gated_metrics += checks
                    .iter()
                    .filter(|c| !matches!(c.gate, Gate::Info))
                    .count();
                let f = report(&base.bench, &checks);
                if f > 0 {
                    println!("FAIL {name}: baseline does not pass its own gates");
                }
                failures += f;
            }
        }
    }

    // ...and the gate must demonstrably have teeth: a regressed copy
    // of every baseline fails at least one gated metric. This runs in
    // both modes — a trajectory with nothing but info metrics cannot
    // regress, which is itself a regression of the gate.
    for (name, base) in &baselines {
        let bad = base.regressed();
        let refused = compare(base, &bad).iter().filter(|c| !c.pass).count();
        let ok = refused > 0;
        println!(
            "{} {name}: self-test — regressed copy fails {refused} gate(s)",
            if ok { "PASS" } else { "FAIL" }
        );
        if !ok {
            failures += 1;
        }
    }

    println!(
        "perf_gate: {} trajectories, {gated_metrics} gated metrics, {failures} failure(s)",
        baselines.len()
    );
    if failures > 0 {
        exit(1);
    }
}
