//! Ablation — MPI-IO hint sweep for the netCDF record-variable read.
//!
//! The paper tunes one point (cb_buffer_size = record size) and notes
//! "we are continuing to study the effects of this hint, as well as
//! others such as the number of collective aggregators". This sweep
//! does that study: collective buffer size x aggregator count, 1120³
//! netCDF, reporting physical bytes, access counts, density, and
//! modeled read time.

use pvr_bench::{check, CsvOut};
use pvr_core::{FrameConfig, IoMode};
use pvr_formats::layout::NetCdfClassicLayout;
use pvr_formats::Subvolume;
use pvr_pfs::model::StorageModel;
use pvr_pfs::twophase::{two_phase_plan, CollectiveHints};

fn main() {
    let grid = [1120usize; 3];
    let layout = NetCdfClassicLayout::new(grid, 5);
    let record = layout.record_bytes();
    let stride = layout.record_stride();
    let aggregate = IoMode::NetCdfUntuned
        .layout(grid)
        .extents(0, &Subvolume::whole(grid));
    let cfg = FrameConfig::paper_1120(2048);
    let io_nodes = pvr_core::bgp_io_nodes(cfg.nprocs);
    let storage = StorageModel::default();

    let mut csv = CsvOut::create(
        "ablation_io_hints",
        "cb_buffer_bytes,aggregators,physical_GB,accesses,mean_access_MB,density,model_read_s",
    );

    // Buffer sweep at fixed aggregators, including the paper's two
    // operating points (16 MiB default, record size tuned).
    let buffers: Vec<(String, u64)> = vec![
        ("record/4".into(), record / 4),
        ("record".into(), record),
        ("record*2".into(), record * 2),
        ("stride".into(), stride),
        ("4MiB".into(), 4 << 20),
        ("16MiB-default".into(), 16 << 20),
        ("64MiB".into(), 64 << 20),
    ];
    let mut best: Option<(u64, f64)> = None;
    let mut default_time = 0.0;
    for (_, cb) in &buffers {
        let naggr = StorageModel::default_aggregators(cfg.nprocs, io_nodes);
        let plan = two_phase_plan(
            &aggregate,
            naggr,
            &CollectiveHints {
                cb_buffer_size: *cb,
                cb_nodes: None,
            },
        );
        let t = storage.read_time(plan.physical_bytes, plan.accesses.len(), io_nodes, naggr);
        csv.row(&format!(
            "{cb},{naggr},{:.2},{},{:.2},{:.3},{:.2}",
            plan.physical_bytes as f64 / 1e9,
            plan.accesses.len(),
            plan.mean_access_bytes() / 1e6,
            plan.data_density(),
            t
        ));
        if *cb == 16 << 20 {
            default_time = t;
        }
        if best.is_none() || t < best.unwrap().1 {
            best = Some((*cb, t));
        }
    }

    // Aggregator sweep at the tuned buffer.
    for naggr in [8usize, 16, 32, 64, 128, 256, 512] {
        let plan = two_phase_plan(&aggregate, naggr, &CollectiveHints::tuned(record));
        let t = storage.read_time(plan.physical_bytes, plan.accesses.len(), io_nodes, naggr);
        csv.row(&format!(
            "{record},{naggr},{:.2},{},{:.2},{:.3},{:.2}",
            plan.physical_bytes as f64 / 1e9,
            plan.accesses.len(),
            plan.mean_access_bytes() / 1e6,
            plan.data_density(),
            t
        ));
    }

    let (best_cb, best_t) = best.unwrap();
    check(
        "a record-scale buffer beats the 16 MiB default (the paper's ~2x)",
        best_t < default_time / 1.5,
        &format!("best cb={best_cb} B -> {best_t:.1} s vs default 16 MiB -> {default_time:.1} s"),
    );
    check(
        "buffers at/above the record stride swallow the inter-variable gaps",
        {
            let naggr = StorageModel::default_aggregators(cfg.nprocs, io_nodes);
            let big = two_phase_plan(
                &aggregate,
                naggr,
                &CollectiveHints {
                    cb_buffer_size: stride,
                    cb_nodes: None,
                },
            );
            big.data_density() < 0.3
        },
        "density collapses once windows span multiple variables",
    );
}
