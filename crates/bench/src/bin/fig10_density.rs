//! Figure 10 — synthetic I/O benchmark: five I/O modes, read time vs
//! data density, 1120³ elements read by 2K cores.
//!
//! "Five I/O modes appear in order from fastest to slowest... We define
//! the data density as [useful bytes / bytes actually read]. There is a
//! strong correlation between the time and the data density."

use pvr_bench::{check, CsvOut};
use pvr_core::{FrameConfig, IoMode, PerfModel};

fn main() {
    let model = PerfModel::default();
    let mut csv = CsvOut::create("fig10_density", "mode,read_time_s,data_density,physical_GB");

    let mut rows: Vec<(IoMode, f64, f64)> = Vec::new();
    for mode in IoMode::ALL {
        let mut cfg = FrameConfig::paper_1120(2048);
        cfg.io = mode;
        cfg.variable = 0;
        let io = model.simulate_io(&cfg);
        csv.row(&format!(
            "{},{:.2},{:.3},{:.2}",
            mode.name(),
            io.seconds,
            io.data_density,
            io.physical_bytes as f64 / 1e9
        ));
        rows.push((mode, io.seconds, io.data_density));
    }

    // --- Checks. ---
    let time = |m: IoMode| rows.iter().find(|r| r.0 == m).unwrap().1;
    let density = |m: IoMode| rows.iter().find(|r| r.0 == m).unwrap().2;
    check(
        "raw is fastest; untuned netCDF is slowest",
        rows.iter().all(|r| time(IoMode::Raw) <= r.1)
            && rows.iter().all(|r| time(IoMode::NetCdfUntuned) >= r.1),
        &format!(
            "raw {:.1} s ... untuned {:.1} s",
            time(IoMode::Raw),
            time(IoMode::NetCdfUntuned)
        ),
    );
    // The paper's bar order is raw, netcdf-64, hdf5, tuned, untuned.
    // We reproduce the ends exactly; in the middle our *tuned* case
    // comes out better than the paper's (1.1x over-read vs their
    // logged 2.2x — see fig9/EXPERIMENTS.md), so tuned and hdf5 swap.
    // The figure's actual claim — time tracks density — is checked
    // below and holds for all five modes.
    check(
        "contiguous modes fastest, untuned netCDF slowest (paper's end points)",
        time(IoMode::Raw) <= time(IoMode::NetCdf64) * 1.02
            && time(IoMode::NetCdf64) <= time(IoMode::Hdf5)
            && time(IoMode::NetCdf64) <= time(IoMode::NetCdfTuned)
            && time(IoMode::Hdf5) < time(IoMode::NetCdfUntuned)
            && time(IoMode::NetCdfTuned) < time(IoMode::NetCdfUntuned),
        &format!(
            "raw {:.1}, nc64 {:.1}, tuned {:.1}, hdf5 {:.1}, untuned {:.1} s",
            time(IoMode::Raw),
            time(IoMode::NetCdf64),
            time(IoMode::NetCdfTuned),
            time(IoMode::Hdf5),
            time(IoMode::NetCdfUntuned)
        ),
    );
    // Rank correlation between (1/density) and time.
    let mut by_density: Vec<_> = rows.iter().map(|r| (r.2, r.1)).collect();
    by_density.sort_by(|a, b| b.0.total_cmp(&a.0));
    let monotone = by_density.windows(2).all(|w| w[0].1 <= w[1].1 * 1.05);
    check(
        "strong correlation between read time and data density",
        monotone,
        &format!(
            "densities {:.2?} -> times {:.1?}",
            by_density.iter().map(|x| x.0).collect::<Vec<_>>(),
            by_density.iter().map(|x| x.1).collect::<Vec<_>>()
        ),
    );
    let _ = density;
}
