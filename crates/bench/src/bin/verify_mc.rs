//! Exhaustive model-checking sweep of the compositing message
//! protocols.
//!
//! Where `verify_schedules` lints the *static* schedules and
//! `fault_sweep` samples runs, this binary proves the *dynamic*
//! protocols correct at small scale: for every configuration it builds
//! an mpisim model of the message flow and drives `pvr-mc`'s DPOR
//! explorer over **every inequivalent wildcard-match interleaving**,
//! checking per-rank result bit-identity, deadlock-freedom, and
//! message conservation on each trace.
//!
//! * **Direct-send** (n ∈ {2..8}, m ∈ {1..n}): renderers fan
//!   fragments into their compositor (wildcard receives), compositors
//!   gather tiles at rank 0 — the schedule family of the paper's
//!   limited-compositor study, on the pipeline's real frame-0 tag
//!   epoch ([`FrameTags`]).
//! * **Radix-k** (n ∈ {2..8}, default factorization): every round's
//!   k−1 partner pieces arrive by wildcard. Configurations whose full
//!   class count explodes (prime n with k−1 ≥ 4) are explored in
//!   rank-0 projection: only rank 0's matches are free, the other
//!   ranks receive in canonical order — a documented model restriction,
//!   reported as such.
//! * **Ack/retransmit** (n ≤ 4): the fault-tolerant link protocol
//!   under a [`FaultPlan`] that crashes the last sender mid-protocol —
//!   duplicated DATA frames race a half-delivered stream; the receiver
//!   must dedup by (source, msg id) and never ack the crashed rank.
//!
//! The run **fails** (exit 1) if any interleaving violates an
//! invariant, any exploration is cut off by the wall-clock budget
//! (`PVR_MC_BUDGET_SECS`, default 600 — the state-space-blowup gate),
//! or the n = 6 aggregate shows DPOR pruning less than 50% of the
//! naive ordering space (Σ W! over configs, W = wildcard receives per
//! trace). Counterexample schedules are persisted as replayable JSON
//! under `results/`.
//!
//! `--ci` caps the sweep at n ≤ 6 for the CI wall budget; the full
//! n ≤ 8 sweep is the release gate.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pvr_bench::{check, emit_csv, write_artifact, write_trajectory, CsvOut};
use pvr_compositing::radixk::default_radices;
use pvr_core::FrameTags;
use pvr_faults::link::{decode_frame, encode_frame, KIND_ACK, KIND_DATA};
use pvr_faults::plan::{FaultPlan, RankAction, RankFault, Stage};
use pvr_mc::{explore, McOptions, McReport};
use pvr_mpisim::Comm;

/// Boxed rank-program future: the model constructors hand `explore`
/// heterogeneous async programs through one object-safe type.
type BoxFut<T> = std::pin::Pin<Box<dyn std::future::Future<Output = T>>>;
use pvr_obs::bench::Trajectory;
use pvr_obs::Registry;

/// Ack/retransmit model tags (outside the frame-tag epochs; the link
/// protocol rides its own channel pair in production too).
const DATA_TAG: u32 = 60;
const ACK_TAG: u32 = 61;

/// Adoption-handshake model tags: the adoption request rides its own
/// channel; fresh and late fragments share one wildcard channel so the
/// explorer races them against each other (the late-arrival epoch).
const ADOPT_TAG: u32 = 70;
const FRAG_TAG: u32 = 71;

/// Full radix-k exploration is attempted only below this predicted
/// class count; above it the model drops to rank-0 projection.
const RADIX_FULL_CAP: f64 = 4096.0;

// ---------------------------------------------------------------------
// Models
// ---------------------------------------------------------------------

/// Direct-send with limited compositors: every rank renders one
/// fragment; rank q's compositor is q mod m; compositors blend their
/// group in renderer order (the depth-order sort of real compositing,
/// which is what makes the result schedule-independent) and gather at
/// rank 0.
fn direct_send(n: usize, m: usize) -> impl Fn(Comm) -> BoxFut<Vec<u8>> + Send + Sync {
    let tags = FrameTags::for_frame(0);
    move |mut comm: Comm| {
        Box::pin(async move {
            let r = comm.rank();
            let fragment = vec![r as u8, 0xC0 | r as u8];
            if r >= m {
                // Pure renderer: ship the fragment and exit.
                comm.send(r % m, tags.fragment, fragment).await;
                return Vec::new();
            }
            // Compositor (every compositor also renders its own fragment).
            let expected = (0..n).filter(|q| q % m == r && *q != r).count();
            let mut frags: Vec<(usize, Vec<u8>)> = vec![(r, fragment)];
            for _ in 0..expected {
                let (src, data) = comm.recv_any(tags.fragment).await;
                frags.push((src, data));
            }
            frags.sort();
            let mut tile = vec![r as u8];
            for (_, f) in &frags {
                tile.extend_from_slice(f);
            }
            if r != 0 {
                comm.send(0, tags.tile, tile).await;
                return Vec::new();
            }
            // Rank 0 assembles the frame from its own tile + m-1 gathered.
            let mut tiles: Vec<(usize, Vec<u8>)> = vec![(0, tile)];
            for _ in 1..m {
                let (src, data) = comm.recv_any(tags.tile).await;
                tiles.push((src, data));
            }
            tiles.sort();
            tiles.into_iter().flat_map(|(_, t)| t).collect()
        }) as BoxFut<Vec<u8>>
    }
}

/// Radix-k rounds: in round i (radix k, stride = product of earlier
/// radices) each rank swaps pieces with its k−1 group partners and
/// combines them in source order. With `projection`, only rank 0
/// receives by wildcard; the rest receive partners in canonical order
/// (the model restriction for explosive configurations).
fn radix_k(
    radices: Vec<usize>,
    projection: bool,
) -> impl Fn(Comm) -> BoxFut<Vec<u8>> + Send + Sync {
    move |mut comm: Comm| {
        let radices = radices.clone();
        Box::pin(async move {
            let r = comm.rank();
            let mut piece = vec![r as u8];
            let mut stride = 1usize;
            for (round, &k) in radices.iter().enumerate() {
                let tag = 200 + round as u32;
                let base = r - ((r / stride) % k) * stride;
                let partners: Vec<usize> = (0..k)
                    .map(|j| base + j * stride)
                    .filter(|&p| p != r)
                    .collect();
                for &p in &partners {
                    comm.send(p, tag, piece.clone()).await;
                }
                let mut pieces: Vec<(usize, Vec<u8>)> = vec![(r, piece)];
                if projection && r != 0 {
                    for &p in &partners {
                        pieces.push((p, comm.recv_from(p, tag).await));
                    }
                } else {
                    for _ in &partners {
                        let (src, data) = comm.recv_any(tag).await;
                        pieces.push((src, data));
                    }
                }
                pieces.sort();
                piece = Vec::new();
                for (src, body) in pieces {
                    piece.push(src as u8);
                    piece.extend_from_slice(&body);
                }
                stride *= k;
            }
            piece
        }) as BoxFut<Vec<u8>>
    }
}

/// Predicted class count of full radix-k exploration:
/// Π rounds ((k−1)!)^n.
fn radix_classes(n: usize, radices: &[usize]) -> f64 {
    let fact = |k: usize| (2..=k).map(|i| i as f64).product::<f64>().max(1.0);
    radices
        .iter()
        .map(|&k| fact(k - 1).powi(n as i32))
        .product()
}

/// Ack/retransmit under a crash: senders 1..n ship their frame as a
/// framed DATA message **twice** (the retransmit path), then block on
/// the ack; the plan's crashed rank ships only the first attempt and
/// exits. Rank 0 dedups by (source, msg id), acks first copies only,
/// and must never ack the crashed rank (it is gone; the send would be
/// lost traffic).
fn ft_ack(n: usize, plan: Arc<FaultPlan>) -> impl Fn(Comm) -> BoxFut<Vec<u8>> + Send + Sync {
    move |mut comm: Comm| {
        let plan = Arc::clone(&plan);
        Box::pin(async move {
            let r = comm.rank();
            let crashed = plan.crashed_by(Stage::Composite, n);
            if r != 0 {
                let msg_id = r as u64;
                let body = vec![r as u8];
                comm.send(0, DATA_TAG, encode_frame(KIND_DATA, msg_id, 1, &body))
                    .await;
                if crashed.contains(&r) {
                    return Vec::new(); // died before the retransmit
                }
                comm.send(0, DATA_TAG, encode_frame(KIND_DATA, msg_id, 2, &body))
                    .await;
                let ack = comm.recv_from(0, ACK_TAG).await;
                let (kind, id, _, _) = decode_frame(&ack).expect("well-formed ack");
                assert_eq!((kind, id), (KIND_ACK, msg_id), "ack for the wrong frame");
                return Vec::new();
            }
            let expected = (n - 1 - crashed.len()) * 2 + crashed.len();
            let mut seen = std::collections::HashSet::new();
            let mut collected: Vec<(usize, Vec<u8>)> = Vec::new();
            for _ in 0..expected {
                let (src, frame) = comm.recv_any(DATA_TAG).await;
                let (kind, id, _, body) = decode_frame(&frame).expect("well-formed frame");
                assert_eq!(kind, KIND_DATA);
                if seen.insert((src, id)) {
                    collected.push((src, body.to_vec()));
                    if !crashed.contains(&src) {
                        comm.send(src, ACK_TAG, encode_frame(KIND_ACK, id, 0, &[]))
                            .await;
                    }
                }
            }
            collected.sort();
            collected.into_iter().flat_map(|(_, b)| b).collect()
        }) as BoxFut<Vec<u8>>
    }
}

/// Orphan-block adoption + late-arrival compositing under a crash:
/// renderers 1..n ship fragments to compositor 0; the plan's crashed
/// rank never sends. Rank 0 *hedges* — it requests adoption of the
/// orphan from the lowest live renderer before any fragment arrives —
/// and the adopter re-renders deterministically and ships the late
/// fragment **twice** (the retransmit path). Late copies share the
/// fresh fragments' wildcard channel, so the explorer interleaves
/// fresh, late, and duplicate arrivals every inequivalent way; rank 0's
/// first-wins dedup must blend every renderer exactly once
/// (conservation) and every trace must assemble the same bytes
/// (bit-identity), with no interleaving able to stall a receive
/// (deadlock-freedom — the checker's own gates).
fn adoption(n: usize, plan: Arc<FaultPlan>) -> impl Fn(Comm) -> BoxFut<Vec<u8>> + Send + Sync {
    move |mut comm: Comm| {
        let plan = Arc::clone(&plan);
        Box::pin(async move {
            let r = comm.rank();
            let crashed = *plan
                .crashed_by(Stage::Composite, n)
                .first()
                .expect("the adoption model needs a crash plan");
            let adopter = (1..n).find(|q| *q != crashed).expect("a live renderer");
            let frag = |id: usize, late: u8| vec![id as u8, 0xC0 | id as u8, late];
            if r != 0 {
                if r == crashed {
                    return Vec::new(); // died before shipping its fragment
                }
                comm.send(0, FRAG_TAG, frag(r, 0)).await;
                if r == adopter {
                    let req = comm.recv_from(0, ADOPT_TAG).await;
                    let orphan = req[0] as usize;
                    assert_eq!(orphan, crashed, "adoption request names the orphan");
                    // Deterministic re-render, shipped twice: the second
                    // copy models the ack-timeout retransmit racing the
                    // first through the late-arrival epoch.
                    comm.send(0, FRAG_TAG, frag(orphan, 1)).await;
                    comm.send(0, FRAG_TAG, frag(orphan, 1)).await;
                }
                return Vec::new();
            }
            // Compositor: hedge immediately (suspicion fired before any
            // arrival), then drain the one wildcard channel: n-2 fresh
            // fragments + 2 late copies of the orphan.
            comm.send(adopter, ADOPT_TAG, vec![crashed as u8]).await;
            let mut got: Vec<Option<Vec<u8>>> = vec![None; n];
            let mut dups = 0usize;
            for _ in 0..n {
                let (_, body) = comm.recv_any(FRAG_TAG).await;
                let id = body[0] as usize;
                if got[id].is_none() {
                    got[id] = Some(body); // first wins: fresh or late alike
                } else {
                    dups += 1;
                }
            }
            assert_eq!(dups, 1, "exactly one late duplicate is discarded");
            // Conservation + bit-identity: every renderer blended exactly
            // once, in renderer order, and the adopted content is
            // indistinguishable from what the crashed rank would have sent
            // (the kind byte is not blended).
            let mut out = Vec::new();
            for (id, slot) in got.iter().enumerate().skip(1) {
                let body = slot
                    .as_ref()
                    .unwrap_or_else(|| panic!("renderer {id} never blended"));
                out.push(id as u8);
                out.extend_from_slice(&body[..2]);
            }
            out
        }) as BoxFut<Vec<u8>>
    }
}

// ---------------------------------------------------------------------
// Sweep
// ---------------------------------------------------------------------

struct ConfigResult {
    label: String,
    n: usize,
    report: McReport<Vec<u8>>,
}

fn main() {
    let ci_mode = std::env::args().any(|a| a == "--ci");
    let max_n = if ci_mode { 6 } else { 8 };
    let budget = Duration::from_secs(
        std::env::var("PVR_MC_BUDGET_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(600),
    );
    let t0 = Instant::now();
    let registry = Arc::new(Registry::new());

    let mut csv = CsvOut::create(
        "verify_mc",
        "model,n,m,traces,runs,redundant,choice_points,backtracks,sleep_prunes,candidate_prunes,peak_frontier,naive,wall_ms,complete,violations",
    );
    let mut results: Vec<ConfigResult> = Vec::new();
    let mut failures = 0usize;

    let mut run_config =
        |label: String, n: usize, program: Box<dyn Fn(Comm) -> BoxFut<Vec<u8>> + Send + Sync>| {
            let remaining = budget.saturating_sub(t0.elapsed());
            let opts = McOptions {
                time_budget: Some(remaining),
                metrics: Some((Arc::clone(&registry), label.clone())),
                ..McOptions::default()
            };
            let report = explore(n, &program, &opts);
            let s = &report.stats;
            let (_, m_str) = label.split_once(",m=").unwrap_or(("", "-"));
            csv.row(&format!(
                "{},{n},{m_str},{},{},{},{},{},{},{},{},{:.3e},{},{},{}",
                label.split(',').next().unwrap_or(&label),
                s.traces,
                s.runs,
                s.redundant_runs,
                s.choice_points,
                s.backtrack_points,
                s.sleep_prunes,
                s.candidate_prunes,
                s.peak_frontier,
                s.naive_orderings,
                s.wall.as_millis(),
                s.complete,
                report.violations.len(),
            ));
            results.push(ConfigResult { label, n, report });
        };

    for n in 2..=max_n {
        for m in 1..=n {
            run_config(
                format!("model=direct,n={n},m={m}"),
                n,
                Box::new(direct_send(n, m)),
            );
        }
        let radices = default_radices(n);
        let projection = radix_classes(n, &radices) > RADIX_FULL_CAP;
        run_config(
            format!(
                "model=radix{}{radices:?},n={n},m=-",
                if projection { "-proj" } else { "" }
            ),
            n,
            Box::new(radix_k(radices.clone(), projection)),
        );
        if n <= 4 {
            let plan = Arc::new(FaultPlan {
                seed: 0,
                ranks: vec![RankFault {
                    rank: n - 1,
                    stage: Stage::Composite,
                    action: RankAction::Crash,
                }],
                links: vec![],
                servers: vec![],
            });
            run_config(
                format!("model=ft-ack,n={n},m=-"),
                n,
                Box::new(ft_ack(n, Arc::clone(&plan))),
            );
            // The adoption handshake needs a live renderer besides the
            // crashed one: n >= 3.
            if n >= 3 {
                run_config(
                    format!("model=adoption,n={n},m=-"),
                    n,
                    Box::new(adoption(n, plan)),
                );
            }
        }
    }

    // --- Gates. ---
    for cfg in &results {
        let ok = cfg.report.violations.is_empty();
        if !ok {
            failures += 1;
            for (i, v) in cfg.report.violations.iter().enumerate() {
                eprintln!("FAIL {}: {v}", cfg.label);
                let name = format!(
                    "mc_counterexample_{}_{i}.json",
                    cfg.label.replace(['=', ',', '[', ']', ' '], "_")
                );
                write_artifact(&name, v.schedule.to_json().as_bytes());
            }
        }
        if !cfg.report.stats.complete {
            failures += 1;
            eprintln!(
                "FAIL {}: exploration incomplete ({} runs, {:?}) — state-space blowup or budget exhausted",
                cfg.label, cfg.report.stats.runs, cfg.report.stats.wall
            );
        }
    }
    let explored: u64 = results.iter().map(|c| c.report.stats.runs).sum();
    let classes: u64 = results.iter().map(|c| c.report.stats.traces).sum();
    check(
        "zero violations across all configurations",
        results.iter().all(|c| c.report.violations.is_empty()),
        &format!("{} configs, {classes} inequivalent traces", results.len()),
    );
    check(
        "every exploration ran to completion",
        results.iter().all(|c| c.report.stats.complete),
        &format!("{explored} total runs"),
    );

    // DPOR effectiveness gate at n = 6: runs actually performed vs the
    // naive Σ W! ordering space a reduction-free checker would face.
    let n6: Vec<&ConfigResult> = results.iter().filter(|c| c.n == 6).collect();
    let n6_runs: u64 = n6.iter().map(|c| c.report.stats.runs).sum();
    let n6_naive: f64 = n6.iter().map(|c| c.report.stats.naive_orderings).sum();
    let pruned = if n6_naive > 0.0 {
        1.0 - n6_runs as f64 / n6_naive
    } else {
        0.0
    };
    let prune_ok = pruned >= 0.5;
    if !prune_ok {
        failures += 1;
    }
    check(
        "DPOR prunes >= 50% of naive interleavings at n=6",
        prune_ok,
        &format!(
            "{n6_runs} runs vs {n6_naive:.3e} naive orderings ({:.4}% pruned)",
            pruned * 100.0
        ),
    );

    let wall_ok = t0.elapsed() <= budget;
    if !wall_ok {
        failures += 1;
    }
    check(
        "sweep within wall-clock budget",
        wall_ok,
        &format!(
            "{:.1}s of {:.0}s",
            t0.elapsed().as_secs_f64(),
            budget.as_secs_f64()
        ),
    );

    // --- Artifacts. ---
    let snap = registry.snapshot();
    emit_csv("verify_mc_metrics", &snap.to_csv());
    // Trajectory: config and violation counts are exact; trace-class
    // and run counts get bands (the classes DPOR enumerates depend on
    // the wildcard match orders actually observed, which drift a few
    // percent run to run); wall-clock is info-only.
    let mut traj = Trajectory::new("mc");
    traj.exact("max_n", max_n as f64)
        .exact("configs", results.len() as f64)
        .rel("traces", classes as f64, 0.1)
        .exact(
            "violations",
            results
                .iter()
                .map(|c| c.report.violations.len())
                .sum::<usize>() as f64,
        )
        .exact("ok", (failures == 0) as u8 as f64)
        .rel("runs", explored as f64, 0.25)
        .rel("n6_runs", n6_runs as f64, 0.25)
        .exact("n6_naive_orderings", n6_naive)
        .rel("n6_pruned_fraction", pruned, 0.1)
        .info("wall_secs", t0.elapsed().as_secs_f64())
        .info("budget_secs", budget.as_secs_f64())
        .table(
            "configs",
            &["label", "n", "traces", "runs", "complete", "violations"],
            results
                .iter()
                .map(|c| {
                    vec![
                        c.label.clone(),
                        c.n.to_string(),
                        c.report.stats.traces.to_string(),
                        c.report.stats.runs.to_string(),
                        (c.report.stats.complete as u8).to_string(),
                        c.report.violations.len().to_string(),
                    ]
                })
                .collect(),
        );
    write_trajectory(&traj);

    println!(
        "verify_mc: {} configs, {classes} traces, {explored} runs, {failures} failures in {:.1}s",
        results.len(),
        t0.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
