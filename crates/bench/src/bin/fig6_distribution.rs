//! Figure 6 — percentage of frame time spent in each stage.
//!
//! "Percentage of time spent in I/O, rendering, and compositing. I/O
//! dominates the overall algorithm's performance." (1120³, 1600², raw
//! mode, improved compositing — the stacked-bar chart of the paper.)

use pvr_bench::{check, CsvOut, CORE_SWEEP};
use pvr_core::{simulate_frame, FrameConfig};

fn main() {
    let mut csv = CsvOut::create("fig6_distribution", "cores,io_pct,render_pct,composite_pct");

    let mut io_pct = Vec::new();
    for &n in &CORE_SWEEP {
        let r = simulate_frame(&FrameConfig::paper_1120(n));
        csv.row(&format!(
            "{n},{:.1},{:.1},{:.1}",
            r.timing.io_percent(),
            r.timing.render_percent(),
            r.timing.composite_percent()
        ));
        io_pct.push((n, r.timing.io_percent()));
    }

    check(
        "I/O share grows with core count (render shrinks 1/n, I/O saturates)",
        io_pct.last().unwrap().1 > io_pct.first().unwrap().1,
        &format!(
            "I/O {:.0}% at 64 cores -> {:.0}% at 32K",
            io_pct.first().unwrap().1,
            io_pct.last().unwrap().1
        ),
    );
    check(
        "I/O dominates at scale (>= 70% beyond 4K cores)",
        io_pct
            .iter()
            .filter(|(n, _)| *n >= 4096)
            .all(|(_, p)| *p >= 70.0),
        "rendering is not the bottleneck at scale",
    );
}
