//! Figure 6 — percentage of frame time spent in each stage.
//!
//! "Percentage of time spent in I/O, rendering, and compositing. I/O
//! dominates the overall algorithm's performance." (1120³, 1600², raw
//! mode, improved compositing — the stacked-bar chart of the paper.)
//!
//! Series are recorded into a `pvr_obs::Registry` as tenths of a
//! percent and pivoted into the CSV table by the shared exporter, so
//! the emitted bytes are a deterministic function of the snapshot.

use pvr_bench::{check, emit_csv, CORE_SWEEP};
use pvr_core::{simulate_frame, FrameConfig};
use pvr_obs::csvout::pivot_csv;
use pvr_obs::Registry;

fn main() {
    let reg = Registry::new();
    for &n in &CORE_SWEEP {
        let r = simulate_frame(&FrameConfig::paper_1120(n));
        let label = format!("cores={n}");
        // Tenths of a percent: the decimal point is placed at render
        // time by the scale-1 column spec.
        reg.gauge_set(
            "io_pct",
            &label,
            (r.timing.io_percent() * 10.0).round() as i64,
        );
        reg.gauge_set(
            "render_pct",
            &label,
            (r.timing.render_percent() * 10.0).round() as i64,
        );
        reg.gauge_set(
            "composite_pct",
            &label,
            (r.timing.composite_percent() * 10.0).round() as i64,
        );
    }

    let snap = reg.snapshot();
    emit_csv(
        "fig6_distribution",
        &pivot_csv(
            &snap,
            "cores",
            &[("io_pct", 1), ("render_pct", 1), ("composite_pct", 1)],
        ),
    );

    let io_first = snap.get("io_pct", "cores=64").unwrap();
    let io_last = snap.get("io_pct", "cores=32768").unwrap();
    check(
        "I/O share grows with core count (render shrinks 1/n, I/O saturates)",
        io_last > io_first,
        &format!(
            "I/O {:.0}% at 64 cores -> {:.0}% at 32K",
            io_first as f64 / 10.0,
            io_last as f64 / 10.0
        ),
    );
    check(
        "I/O dominates at scale (>= 70% beyond 4K cores)",
        CORE_SWEEP
            .iter()
            .filter(|&&n| n >= 4096)
            .all(|n| snap.get("io_pct", &format!("cores={n}")).unwrap() >= 700),
        "rendering is not the bottleneck at scale",
    );
}
