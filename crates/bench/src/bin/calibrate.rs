//! Calibration — measure the performance-model constants from the real
//! renderer instead of trusting them.
//!
//! The simulated executor uses two rendering constants (DESIGN.md §5):
//! `sample_coeff` (fraction of image_pixels x grid_depth actually
//! sampled) and `render_imbalance` (max/mean per-rank work). Both are
//! geometry properties of the real renderer, so they can be *measured*
//! at laptop scale and compared with the defaults used at paper scale —
//! plus the per-core sample rate of this host, for scale reference.

use std::time::Instant;

use pvr_bench::{check, CsvOut};
use pvr_core::pipeline::{default_view, render_opts, transfer_for};
use pvr_core::{FrameConfig, PerfModel};
use pvr_render::raycast::{render_block, BlockDomain};
use pvr_render::Camera;
use pvr_volume::{BlockDecomposition, SupernovaField, Volume};

fn main() {
    let model = PerfModel::default();
    let mut csv = CsvOut::create(
        "calibrate",
        "grid,image,ranks,sample_coeff,imbalance_maxmean,host_samples_per_sec",
    );

    let mut coeffs = Vec::new();
    let mut imbalances = Vec::new();
    for (grid, image, ranks) in [(48usize, 96usize, 8usize), (64, 128, 27), (96, 160, 64)] {
        let mut cfg = FrameConfig::small(grid, image, ranks);
        cfg.variable = 2;
        let field = SupernovaField::new(cfg.seed).variable(cfg.variable);
        let decomp = BlockDecomposition::new(cfg.grid, ranks);
        let cam = Camera::orthographic(cfg.grid, default_view(), image, image);
        let tf = transfer_for(&cfg);
        let opts = render_opts(&cfg);

        let mut per_rank = Vec::new();
        let t0 = Instant::now();
        for b in decomp.blocks() {
            let stored = decomp.with_ghost(&b, 1);
            let vol = Volume::from_field_window(&field, cfg.grid, stored.offset, stored.shape);
            let dom = BlockDomain {
                grid: cfg.grid,
                owned: b.sub,
                stored,
            };
            let (_, stats) = render_block(&vol, &dom, &cam, &tf, &opts);
            per_rank.push(stats.samples);
        }
        let wall = t0.elapsed().as_secs_f64();

        let total: u64 = per_rank.iter().sum();
        let coeff = total as f64 / (image * image * grid) as f64;
        let mean = total as f64 / ranks as f64;
        let imb = *per_rank.iter().max().unwrap() as f64 / mean;
        let rate = total as f64 / wall; // includes field sampling; order-of-magnitude host ref
        csv.row(&format!(
            "{grid},{image},{ranks},{coeff:.3},{imb:.3},{rate:.0}"
        ));
        coeffs.push(coeff);
        imbalances.push(imb);
    }

    let mean_coeff = coeffs.iter().sum::<f64>() / coeffs.len() as f64;
    let mean_imb = imbalances.iter().sum::<f64>() / imbalances.len() as f64;
    println!(
        "# model defaults: sample_coeff={}, render_imbalance={}",
        model.sample_coeff, model.render_imbalance
    );
    println!("# measured:       sample_coeff={mean_coeff:.3}, render_imbalance={mean_imb:.3}");

    check(
        "model sample_coeff within 2x of the measured geometry",
        mean_coeff > model.sample_coeff / 2.0 && mean_coeff < model.sample_coeff * 2.0,
        &format!("measured {mean_coeff:.3} vs model {}", model.sample_coeff),
    );
    check(
        "measured imbalance is real but moderate (the paper's 'minor deviations')",
        mean_imb > 1.0 && mean_imb < 4.0,
        &format!("max/mean {mean_imb:.2}"),
    );
}
