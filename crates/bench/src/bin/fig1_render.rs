//! Figure 1 — "Visualization of the X component of velocity in a
//! core-collapse supernova."
//!
//! Renders the synthetic supernova's X velocity end to end (write the
//! raw time step, collective-read it back, ray cast, direct-send
//! composite) and writes `results/fig1_velocity_x.ppm`, self-checking
//! the image has the figure's qualitative content: a bipolar
//! (blue/red) velocity structure with a turbulent interior, over a
//! transparent background.

use pvr_bench::{check, write_artifact, CsvOut};
use pvr_core::{run_frame, write_dataset, FrameConfig, IoMode};

fn main() {
    let mut cfg = FrameConfig::small(160, 512, 64);
    cfg.variable = 2; // X velocity
    cfg.io = IoMode::Raw;

    let dir = std::env::temp_dir().join("pvr-fig1");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("step1530.raw");
    let bytes = write_dataset(&path, &cfg).expect("write time step");
    println!(
        "# wrote {:.1} MB raw time step ({}^3)",
        bytes as f64 / 1e6,
        cfg.grid[0]
    );

    let frame = run_frame(&cfg, Some(&path));
    println!("# frame: {}", frame.timing);

    // Fast-path counters: how much sampling work the macrocell/LUT
    // skip culled, and what the sparse subimage exchange actually
    // shipped vs. what the same exchange would have cost dense.
    let skip_frac = frame.render_skipped as f64 / frame.render_samples.max(1) as f64;
    let comp = &frame.composite;
    let mut csv = CsvOut::create(
        "fig1_render",
        "samples,skipped,skip_fraction,composite_bytes,composite_dense_bytes,sparse_messages,messages",
    );
    csv.row(&format!(
        "{},{},{skip_frac:.4},{},{},{},{}",
        frame.render_samples,
        frame.render_skipped,
        comp.bytes,
        comp.dense_bytes,
        comp.sparse_messages,
        comp.messages,
    ));

    // Encode to PPM in memory for the artifact.
    let tmp = dir.join("fig1.ppm");
    frame.image.write_ppm(&tmp, [0.0, 0.0, 0.0]).unwrap();
    let ppm = std::fs::read(&tmp).unwrap();
    write_artifact("fig1_velocity_x.ppm", &ppm);
    std::fs::remove_file(&path).ok();

    // --- Qualitative content checks. ---
    let (w, h) = frame.image.size();
    let mut lit = 0usize;
    let mut red = 0usize;
    let mut blue = 0usize;
    let mut left_red = 0usize;
    let mut right_red = 0usize;
    for y in 0..h {
        for x in 0..w {
            let p = frame.image.get(x, y);
            if p[3] > 0.05 {
                lit += 1;
                if p[0] > p[2] + 0.1 {
                    red += 1;
                    if x < w / 2 {
                        left_red += 1;
                    } else {
                        right_red += 1;
                    }
                }
                if p[2] > p[0] + 0.1 {
                    blue += 1;
                }
            }
        }
    }
    let total = w * h;
    check(
        "the volume is visible over a transparent background",
        lit * 10 > total && lit * 10 < total * 9,
        &format!("{:.0}% of pixels lit", 100.0 * lit as f64 / total as f64),
    );
    check(
        "the X-velocity rendering is bipolar (both infall lobes visible)",
        red * 50 > total && blue * 50 > total,
        &format!(
            "{:.1}% red, {:.1}% blue",
            100.0 * red as f64 / total as f64,
            100.0 * blue as f64 / total as f64
        ),
    );
    check(
        "the lobes are spatially separated (velocity-x changes sign across x)",
        left_red > 3 * right_red || right_red > 3 * left_red,
        &format!("red pixels: {left_red} left vs {right_red} right"),
    );
    check(
        "the macrocell fast path skipped provably transparent samples",
        frame.render_skipped > 0,
        &format!("{:.1}% of samples skipped", 100.0 * skip_frac),
    );
    check(
        "the sparse exchange shipped fewer bytes than dense",
        comp.bytes < comp.dense_bytes,
        &format!("{} sparse vs {} dense bytes", comp.bytes, comp.dense_bytes),
    );
}
