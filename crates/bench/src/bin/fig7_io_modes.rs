//! Figure 7 — application I/O bandwidth for raw, tuned PnetCDF, and
//! original (untuned) PnetCDF, 1120³ data.
//!
//! "NetCDF is approximately 4-5 times slower than raw mode at low
//! numbers of cores... tuning I/O parameters to a particular data
//! layout can result in significant gains" — setting the collective
//! buffer to the record size roughly doubles untuned bandwidth.

use pvr_bench::{check, CsvOut, CORE_SWEEP};
use pvr_core::{FrameConfig, IoMode, PerfModel};

fn main() {
    let model = PerfModel::default();
    let mut csv = CsvOut::create(
        "fig7_io_modes",
        "cores,raw_MBs,tuned_pnetcdf_MBs,original_pnetcdf_MBs",
    );

    let bw = |mode: IoMode, n: usize| {
        let mut cfg = FrameConfig::paper_1120(n);
        cfg.io = mode;
        cfg.variable = 0; // pressure, as in the paper's netCDF read
        model.simulate_io(&cfg).read_bandwidth / 1e6
    };

    let mut ratios_low = Vec::new();
    let mut tuned_gain = Vec::new();
    for &n in &CORE_SWEEP {
        let raw = bw(IoMode::Raw, n);
        let tuned = bw(IoMode::NetCdfTuned, n);
        let untuned = bw(IoMode::NetCdfUntuned, n);
        csv.row(&format!("{n},{raw:.0},{tuned:.0},{untuned:.0}"));
        if n <= 512 {
            ratios_low.push(raw / untuned);
        }
        tuned_gain.push(tuned / untuned);
    }

    check(
        "untuned netCDF is ~4-5x slower than raw at low core counts",
        ratios_low.iter().all(|r| *r > 2.5 && *r < 8.0),
        &format!("raw/untuned at <=512 cores: {ratios_low:.1?}"),
    );
    check(
        "tuning the collective buffer to the record size helps ~2x",
        tuned_gain.iter().all(|g| *g > 1.4),
        &format!(
            "tuned/untuned gains {:.1}-{:.1}x",
            tuned_gain.iter().cloned().fold(f64::INFINITY, f64::min),
            tuned_gain.iter().cloned().fold(0.0, f64::max)
        ),
    );
    let raw_peak = CORE_SWEEP
        .iter()
        .map(|&n| bw(IoMode::Raw, n))
        .fold(0.0, f64::max);
    check(
        "raw bandwidth peaks near 1 GB/s (paper's y-axis tops at ~1.1 GB/s)",
        raw_peak > 700.0 && raw_peak < 1600.0,
        &format!("peak raw {raw_peak:.0} MB/s"),
    );
}
