//! Future-work study — in situ visualization.
//!
//! The paper's discussion: "We hope that in situ techniques will enable
//! scientists to see early results of their computations, as well as
//! eliminate or reduce expensive storage accesses, because, as our
//! research shows, I/O dominates large-scale visualization."
//!
//! This study quantifies that hope on the machine model: the same frame
//! priced post hoc (read the time step from storage, then render) vs
//! in situ (the data is already resident in the simulation's memory;
//! only render + composite remain).

use pvr_bench::{check, CsvOut, CORE_SWEEP};
use pvr_core::{simulate_frame, FrameConfig};

fn main() {
    let mut csv = CsvOut::create(
        "future_insitu",
        "cores,posthoc_total_s,insitu_total_s,speedup",
    );

    let mut speedups = Vec::new();
    for &n in &CORE_SWEEP {
        let r = simulate_frame(&FrameConfig::paper_1120(n));
        let posthoc = r.timing.total();
        let insitu = r.timing.vis_only();
        let speedup = posthoc / insitu;
        csv.row(&format!("{n},{posthoc:.2},{insitu:.3},{speedup:.1}"));
        speedups.push((n, speedup));
    }

    check(
        "in situ pays off more the larger the machine (I/O share grows)",
        speedups.last().unwrap().1 > speedups.first().unwrap().1,
        &format!(
            "speedup {:.1}x at 64 cores -> {:.1}x at 32K",
            speedups.first().unwrap().1,
            speedups.last().unwrap().1
        ),
    );
    check(
        "eliminating I/O removes the dominant cost at scale (>= 5x)",
        speedups
            .iter()
            .filter(|(n, _)| *n >= 8192)
            .all(|(_, s)| *s >= 5.0),
        "frames become visualization-bound",
    );
}
