//! Figure 9 — file access patterns of a 1120³ single-variable read by
//! 2K cores.
//!
//! "The dark regions signify file blocks that were read in order to
//! access a single variable." Left: untuned PnetCDF (most of the file
//! read); center: MPI-IO hints tuned to the record size (~11 GB for
//! 5 GB of useful data); right: HDF5 / netCDF-64bit (well-collocated).
//!
//! This regenerator computes the *actual* access plans at full paper
//! scale (the planner only needs extents) and renders each as a PGM
//! image plus an ASCII thumbnail, with the paper's headline statistics.

use pvr_bench::{check, write_artifact, CsvOut};
use pvr_core::{FrameConfig, IoMode};
use pvr_formats::Subvolume;
use pvr_pfs::iolog::{AccessMap, IoStats};
use pvr_pfs::model::StorageModel;
use pvr_pfs::sieve::per_extent_plan;
use pvr_pfs::twophase::two_phase_plan;
use pvr_volume::BlockDecomposition;

fn main() {
    let nprocs = 2048;
    let grid = [1120usize; 3];
    let io_nodes = pvr_core::bgp_io_nodes(nprocs);
    let naggr = StorageModel::default_aggregators(nprocs, io_nodes);
    let mut csv = CsvOut::create(
        "fig9_access",
        "mode,file_GB,useful_GB,physical_GB,accesses,mean_access_MB,density,coverage",
    );

    let mut stats_by_mode = std::collections::HashMap::new();
    for mode in [
        IoMode::NetCdfUntuned,
        IoMode::NetCdfTuned,
        IoMode::Hdf5,
        IoMode::NetCdf64,
    ] {
        let mut cfg = FrameConfig::paper_1120(nprocs);
        cfg.io = mode;
        cfg.variable = 0; // pressure, as in the paper
        let layout = mode.layout(grid);
        let var = cfg.file_variable();

        let (accesses, useful): (Vec<pvr_formats::Extent>, u64) = if layout.collective() {
            let aggregate = layout.extents(var, &Subvolume::whole(grid));
            let plan = two_phase_plan(&aggregate, naggr, &mode.hints(grid));
            (
                plan.accesses.iter().map(|a| a.extent).collect(),
                plan.useful_bytes,
            )
        } else {
            let decomp = BlockDecomposition::new(grid, nprocs);
            let per: Vec<Vec<pvr_formats::Extent>> = decomp
                .blocks()
                .iter()
                .map(|b| layout.physical_extents(var, &decomp.with_ghost(b, 1)))
                .collect();
            let useful: u64 = decomp
                .blocks()
                .iter()
                .map(|b| decomp.with_ghost(b, 1).bytes())
                .sum();
            (per_extent_plan(&per).accesses, useful)
        };

        let s = IoStats::from_accesses(&accesses, useful);
        let mut map = AccessMap::new(160, 40, layout.file_size());
        map.mark_all(&accesses);

        csv.row(&format!(
            "{},{:.1},{:.2},{:.2},{},{:.2},{:.3},{:.3}",
            mode.name(),
            layout.file_size() as f64 / 1e9,
            s.useful_bytes as f64 / 1e9,
            s.physical_bytes as f64 / 1e9,
            s.accesses,
            s.mean_access_bytes / 1e6,
            s.data_density(),
            map.coverage(),
        ));
        write_artifact(&format!("fig9_{}.pgm", mode.name()), &map.to_pgm());
        println!("--- {} access map ---", mode.name());
        let thumb = {
            let mut t = AccessMap::new(72, 6, layout.file_size());
            t.mark_all(&accesses);
            t.to_ascii()
        };
        print!("{thumb}");
        stats_by_mode.insert(mode, (s, map.coverage()));
    }

    // --- Checks against the paper's numbers. ---
    let (untuned, cov_untuned) = &stats_by_mode[&IoMode::NetCdfUntuned];
    let (tuned, _) = &stats_by_mode[&IoMode::NetCdfTuned];
    let (hdf5, _) = &stats_by_mode[&IoMode::Hdf5];
    check(
        "untuned read touches most of the 27 GB file",
        *cov_untuned > 0.6,
        &format!(
            "coverage {:.0}%, {:.1} GB physically read",
            cov_untuned * 100.0,
            untuned.physical_bytes as f64 / 1e9
        ),
    );
    check(
        "untuned accesses are collective-buffer sized (paper: ~3000 of ~15 MB)",
        untuned.mean_access_bytes > 8e6 && untuned.mean_access_bytes < 20e6,
        &format!(
            "{} accesses, mean {:.1} MB",
            untuned.accesses,
            untuned.mean_access_bytes / 1e6
        ),
    );
    // Documented deviation: the paper's logs show 11 GB physical for
    // 5 GB useful in the tuned case (2.2x). Our two-phase engine's
    // record-sized windows align with the record grid and eliminate the
    // gap reads almost entirely (~1.1x) — we reproduce the *gain* of
    // tuning and its access-size signature, but not the residual 2.2x
    // overhead, whose mechanism the paper does not identify. See
    // EXPERIMENTS.md.
    let tuned_over = tuned.physical_bytes as f64 / tuned.useful_bytes as f64;
    check(
        "tuned read drops overhead to ~1.1-2.5x and record-sized accesses (paper: 2.2x, 4.5 MB)",
        (1.0..2.5).contains(&tuned_over)
            && tuned.physical_bytes < untuned.physical_bytes / 2
            && tuned.mean_access_bytes < 8e6,
        &format!(
            "{:.1} GB physical for {:.1} GB useful in {} accesses of {:.1} MB",
            tuned.physical_bytes as f64 / 1e9,
            tuned.useful_bytes as f64 / 1e9,
            tuned.accesses,
            tuned.mean_access_bytes / 1e6
        ),
    );
    let hdf5_over = hdf5.physical_bytes as f64 / hdf5.useful_bytes as f64;
    check(
        "HDF5 overhead ~1.5x (paper: 8 GB physical for 5 GB useful)",
        hdf5_over > 1.2 && hdf5_over < 2.0,
        &format!(
            "{:.1} GB physical for {:.1} GB useful",
            hdf5.physical_bytes as f64 / 1e9,
            hdf5.useful_bytes as f64 / 1e9
        ),
    );
}
