//! Figure 5 — total frame time for three data/image sizes.
//!
//! "Total frame time for three data and image sizes on a log-log
//! scale": 1120³/1600², 2240³/2048², 4480³/4096². The paper's point:
//! "even at 2K or 4K cores, any of the problem sizes can be visualized,
//! given enough time."

use pvr_bench::{check, CsvOut, CORE_SWEEP};
use pvr_core::{run_frame, simulate_frame, FrameConfig};

fn main() {
    // The sweep itself is model-driven, but the fast-path counters are
    // measured once on a small real frame: the skip fraction and the
    // sparse/dense payload ratio are properties of the data and the
    // transfer function, not of the core count, so they are carried as
    // run-level columns alongside the modeled totals.
    let mut mcfg = FrameConfig::small(64, 192, 8);
    mcfg.variable = 2; // X velocity, the figure's variable
    let measured = run_frame(&mcfg, None);
    let skip_frac = measured.render_skipped as f64 / measured.render_samples.max(1) as f64;
    let sparse_ratio =
        measured.composite.bytes as f64 / measured.composite.dense_bytes.max(1) as f64;

    let mut csv = CsvOut::create(
        "fig5_overall",
        "cores,total_1120_1600_s,total_2240_2048_s,total_4480_4096_s,\
         render_skip_fraction,composite_sparse_over_dense",
    );

    let mut t1120 = Vec::new();
    let mut t2240 = Vec::new();
    let mut t4480 = Vec::new();
    for &n in &CORE_SWEEP {
        let a = simulate_frame(&FrameConfig::paper_1120(n)).timing.total();
        // The larger sizes do not fit below 2K cores in-core (2 GB/node);
        // the paper plots them from mid-range core counts.
        let b = if n >= 2048 {
            Some(simulate_frame(&FrameConfig::paper_2240(n)).timing.total())
        } else {
            None
        };
        let c = if n >= 4096 {
            Some(simulate_frame(&FrameConfig::paper_4480(n)).timing.total())
        } else {
            None
        };
        csv.row(&format!(
            "{n},{:.2},{},{},{skip_frac:.4},{sparse_ratio:.4}",
            a,
            b.map_or(String::new(), |v| format!("{v:.2}")),
            c.map_or(String::new(), |v| format!("{v:.2}")),
        ));
        t1120.push((n, a));
        if let Some(v) = b {
            t2240.push((n, v));
        }
        if let Some(v) = c {
            t4480.push((n, v));
        }
    }

    // --- Checks. ---
    check(
        "larger problems take longer at every core count",
        t2240
            .iter()
            .all(|(n, t)| *t > t1120.iter().find(|(m, _)| m == n).unwrap().1)
            && t4480
                .iter()
                .all(|(n, t)| *t > t2240.iter().find(|(m, _)| m == n).unwrap().1),
        "1120 < 2240 < 4480 ordering holds",
    );
    let t2240_32k = t2240.last().unwrap().1;
    let t4480_32k = t4480.last().unwrap().1;
    check(
        "Table II scale: 2240^3 frame ~35-52 s, 4480^3 ~220-320 s",
        (30.0..70.0).contains(&t2240_32k) && (150.0..350.0).contains(&t4480_32k),
        &format!("32K cores: 2240^3 {t2240_32k:.1} s, 4480^3 {t4480_32k:.1} s"),
    );
    check(
        "frame time shrinks with more cores for every size",
        t1120.first().unwrap().1 > t1120.last().unwrap().1
            && t2240.first().unwrap().1 > t2240_32k
            && t4480.first().unwrap().1 > t4480_32k,
        "monotone-ish scaling",
    );
    check(
        "measured fast-path counters: skip > 0 and sparse < dense",
        skip_frac > 0.0 && sparse_ratio < 1.0,
        &format!(
            "{:.1}% samples skipped, sparse/dense payload {sparse_ratio:.2}",
            100.0 * skip_frac
        ),
    );
}
