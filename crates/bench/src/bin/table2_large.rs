//! Table II — volume rendering performance at large sizes.
//!
//! Grid | step GB | image | procs | total (s) | %I/O | %composite |
//! read bandwidth (GB/s), for 2240³/2048² and 4480³/4096² at
//! 8K/16K/32K cores. Paper values for the bandwidth column:
//! 0.87/1.02/1.26 and 1.13/1.30/1.63 GB/s; ~96% I/O everywhere.

use pvr_bench::{check, CsvOut, LARGE_SWEEP};
use pvr_core::{simulate_frame, FrameConfig};

fn main() {
    let mut csv = CsvOut::create(
        "table2_large",
        "grid,step_GB,image,procs,total_s,io_pct,composite_pct,read_GBs",
    );

    // (config builder, paper read bandwidths for 8K/16K/32K)
    type Case = (&'static str, fn(usize) -> FrameConfig, [f64; 3]);
    let cases: [Case; 2] = [
        ("2240^3", FrameConfig::paper_2240, [0.87, 1.02, 1.26]),
        ("4480^3", FrameConfig::paper_4480, [1.13, 1.30, 1.63]),
    ];

    let mut all_io_pct = Vec::new();
    let mut bw_errs = Vec::new();
    for (name, build, paper_bw) in cases {
        for (i, &n) in LARGE_SWEEP.iter().enumerate() {
            let cfg = build(n);
            let r = simulate_frame(&cfg);
            let bw = r.io.read_bandwidth / 1e9;
            csv.row(&format!(
                "{name},{:.0},{}x{},{n},{:.2},{:.1},{:.1},{:.2}",
                cfg.variable_bytes() as f64 / 1e9,
                cfg.image.0,
                cfg.image.1,
                r.timing.total(),
                r.timing.io_percent(),
                r.timing.composite_percent(),
                bw,
            ));
            all_io_pct.push(r.timing.io_percent());
            bw_errs.push((bw - paper_bw[i]).abs() / paper_bw[i]);
        }
    }

    check(
        "I/O consumes ~96% of large frames (paper: 95.6-97.4%)",
        all_io_pct.iter().all(|p| *p > 88.0),
        &format!(
            "min {:.1}%, max {:.1}%",
            all_io_pct.iter().cloned().fold(f64::INFINITY, f64::min),
            all_io_pct.iter().cloned().fold(0.0, f64::max)
        ),
    );
    check(
        "read bandwidths match the six paper cells within 25%",
        bw_errs.iter().all(|e| *e < 0.25),
        &format!(
            "max relative error {:.0}%",
            bw_errs.iter().cloned().fold(0.0, f64::max) * 100.0
        ),
    );
}
