//! Table I — published parallel volume rendering system scales.
//!
//! Context table from the paper's background section: the largest
//! parallel volume rendering runs published before this work, against
//! which the paper's 32K-core / 90-billion-element runs are compared.
//! Reprinted here (static data) with this reproduction's own rows
//! appended, so the regenerated evaluation is self-describing.

use pvr_bench::CsvOut;

fn main() {
    let mut csv = CsvOut::create(
        "table1_prior",
        "dataset,system_size_cpus,billion_elements,image_size,year,reference",
    );
    // The paper's Table I.
    csv.row("Fire,64,14,800^2,2007,Moreland et al. [3]");
    csv.row("Blast Wave,128,27,1024^2,2006,Childs et al. [4]");
    csv.row("Taylor-Raleigh,128,1,1024^2,2001,Kniss et al. [5]");
    csv.row("Molecular Dynamics,256,0.14,1024^2,2006,Childs et al. [4]");
    csv.row("Earthquake,2048,1.2,1024^2,2007,Ma et al. [1]");
    csv.row("Supernova,4096,0.65,1600^2,2008,Peterka et al. [2]");
    // This paper's own largest runs (the new rows Table I motivates).
    csv.row("Supernova (this work),16384,1.4,1600^2,2009,this paper");
    csv.row("Supernova upsampled (this work),32768,11,2048^2,2009,this paper");
    csv.row("Supernova upsampled (this work),32768,90,4096^2,2009,this paper");

    println!("# note: 4480^3 = 89.9 billion elements -- the largest in-core volume");
    println!("# rendering published at the time, per the paper's claim.");
}
