//! Profile smoke test — the `profile-smoke` CI job.
//!
//! Runs one fixed-seed 8-rank frame through the message-passing
//! executor with tracing on (`run_frame_mpi_profiled`: trace, replay
//! the canonical match order, profile), then validates the whole
//! observability stack end to end:
//!
//! * the exported Perfetto JSON parses and is well-nested per track
//!   (schema validation, not just string checks);
//! * a second profiled run exports **byte-identical** JSON — the
//!   canonical-replay determinism contract;
//! * the critical path threads the happens-before graph and fully
//!   attributes the logical makespan;
//! * the per-stage imbalance factors and the per-link message-volume
//!   matrix are reported and sane.
//!
//! Artifacts land under `results/`: the trace JSON, a plain-text
//! Gantt, and CSVs for the critical path, imbalance, link matrix, and
//! metrics snapshot.

use std::path::PathBuf;

use pvr_bench::{check, emit_csv, write_artifact};
use pvr_core::pipeline::write_dataset;
use pvr_core::{run_frame_mpi_profiled, CompositorPolicy, FrameConfig};
use pvr_obs::analysis::imbalance_csv;
use pvr_obs::{critical_path, gantt, imbalance, link_matrix, perfetto, Registry};

fn test_cfg() -> FrameConfig {
    let mut cfg = FrameConfig::small(16, 24, 8);
    cfg.variable = 2;
    cfg.policy = CompositorPolicy::Fixed(4);
    cfg
}

fn dataset(cfg: &FrameConfig) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pvr-profile-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    let p = d.join("smoke.raw");
    write_dataset(&p, cfg).unwrap();
    p
}

fn main() {
    let cfg = test_cfg();
    let path = dataset(&cfg);
    let mut all = true;
    let mut chk = |name: &str, ok: bool, detail: &str| {
        all &= ok;
        check(name, ok, detail);
    };

    let p1 = run_frame_mpi_profiled(&cfg, &path).expect("profiled frame");
    let p2 = run_frame_mpi_profiled(&cfg, &path).expect("profiled frame (repeat)");
    std::fs::remove_file(&path).ok();

    // --- Exporter: schema-valid, deterministic bytes. ---
    let json1 = perfetto::to_json(&p1.profile);
    let json2 = perfetto::to_json(&p2.profile);
    match perfetto::validate(&json1) {
        Ok(n) => chk(
            "perfetto JSON is schema-valid and well-nested",
            n > 0,
            &format!("{n} trace events"),
        ),
        Err(e) => chk(
            "perfetto JSON is schema-valid and well-nested",
            false,
            &format!("{e:?}"),
        ),
    }
    chk(
        "profiled run exports byte-identical JSON across runs",
        json1 == json2,
        &format!("{} bytes", json1.len()),
    );
    chk(
        "both runs render identical images",
        p1.frame.image.pixels() == p2.frame.image.pixels(),
        "canonical replay preserves the frame",
    );

    // --- Critical path through the happens-before graph. ---
    let cp = critical_path(&p1.trace);
    chk(
        "critical path attributes the full logical makespan",
        cp.makespan > 0 && cp.per_rank.iter().sum::<u64>() == cp.makespan,
        &format!(
            "makespan {} over {} segments",
            cp.makespan,
            cp.segments.len()
        ),
    );
    chk(
        "critical path segments are contiguous in time",
        cp.segments.windows(2).all(|w| w[0].end == w[1].start),
        &format!("dominant rank {:?}", cp.dominant_rank()),
    );

    // --- Per-stage load imbalance (the paper's Fig. 6 statistic). ---
    let stages = ["io", "render", "composite"];
    let im = imbalance(&p1.profile, &stages);
    chk(
        "all three stages carry spans on every rank",
        im.iter().all(|r| r.mean > 0),
        &format!(
            "mean ticks: io {} render {} composite {}",
            im[0].mean, im[1].mean, im[2].mean
        ),
    );
    chk(
        "imbalance factor >= 1 for every stage (max >= mean)",
        im.iter().all(|r| r.factor_milli >= 1000),
        &format!(
            "factors: io {:.2} render {:.2} composite {:.2}",
            im[0].factor_milli as f64 / 1000.0,
            im[1].factor_milli as f64 / 1000.0,
            im[2].factor_milli as f64 / 1000.0
        ),
    );

    // --- Per-link message volume. ---
    let lm = link_matrix(&p1.trace);
    let m = match cfg.policy {
        CompositorPolicy::Fixed(m) => m,
        _ => unreachable!(),
    };
    chk(
        "rank 0 gathers one tile message per compositor",
        lm.in_degree(0) >= m as u64,
        &format!(
            "in-degree {} at rank 0, {} messages / {} bytes total",
            lm.in_degree(0),
            lm.total_msgs(),
            lm.total_bytes()
        ),
    );
    chk(
        "io windows appear as spans in the profile",
        !p1.profile.span_durations("io.window").is_empty(),
        &format!(
            "{} io.window spans",
            p1.profile.span_durations("io.window").len()
        ),
    );

    // --- Metrics registry snapshot of the run's headline numbers. ---
    let reg = Registry::new();
    reg.gauge_set("makespan", "", cp.makespan as i64);
    reg.counter_add("trace.events", "", p1.trace.events.len() as u64);
    reg.counter_add("link.msgs", "", lm.total_msgs());
    reg.counter_add("link.bytes", "", lm.total_bytes());
    for r in &im {
        reg.gauge_set(
            "imbalance_milli",
            &format!("stage={}", r.name),
            r.factor_milli as i64,
        );
    }

    // --- Artifacts. ---
    write_artifact("profile_smoke.trace.json", json1.as_bytes());
    write_artifact(
        "profile_smoke.gantt.txt",
        gantt::render(&p1.profile, 100).as_bytes(),
    );
    emit_csv("profile_smoke_critical_path", &cp.to_csv());
    emit_csv("profile_smoke_imbalance", &imbalance_csv(&im));
    emit_csv("profile_smoke_links", &lm.to_csv());
    emit_csv("profile_smoke_metrics", &reg.snapshot().to_csv());

    if !all {
        std::process::exit(1);
    }
}
