//! Figure 4 — compositing communication bandwidth vs. message size and
//! processor count.
//!
//! "Communication bandwidth plotted against message size and number of
//! processors. As the number of processors increases and message size
//! decreases, the bandwidth falls away from the peak theoretical curve.
//! The drop-off is more severe in the original compositing scheme and
//! alleviated by limiting the number of compositors."
//!
//! X axis: 256 … 32768 processors, equivalently nominal message sizes
//! 40 KB … 312 B (4 bytes/pixel x 1600² / m).

use pvr_bench::{check, CsvOut};
use pvr_core::{CompositorPolicy, FrameConfig, PerfModel};

fn main() {
    let model = PerfModel::default();
    let mut csv = CsvOut::create(
        "fig4_bandwidth",
        "cores,message_bytes,peak_MBs,improved_MBs,original_MBs",
    );

    let sweep = [256usize, 512, 1024, 2048, 4096, 8192, 16384, 32768];
    let mut rows = Vec::new();
    for &n in &sweep {
        let mut cfg = FrameConfig::paper_1120(n);

        cfg.policy = CompositorPolicy::Original;
        let sched_o = model.schedule_for(&cfg);
        let comp_o = model.simulate_composite(&cfg, &sched_o);

        cfg.policy = CompositorPolicy::Improved;
        let sched_i = model.schedule_for(&cfg);
        let comp_i = model.simulate_composite(&cfg, &sched_i);

        let msg = comp_o.nominal_message_bytes;
        let peak = model.peak_aggregate_bandwidth(n, msg);
        csv.row(&format!(
            "{n},{msg},{:.1},{:.1},{:.1}",
            peak / 1e6,
            comp_i.bandwidth / 1e6,
            comp_o.bandwidth / 1e6,
        ));
        rows.push((n, msg, peak, comp_i.bandwidth, comp_o.bandwidth));
    }

    // --- Checks. ---
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    check(
        "x-axis matches the paper (40 KB at 256 procs, 312 B at 32K)",
        first.1 == 40_000 && last.1 == 312,
        &format!("{} B at 256, {} B at 32K", first.1, last.1),
    );
    check(
        "bandwidth never exceeds the theoretical peak",
        rows.iter().all(|r| r.3 <= r.2 && r.4 <= r.2),
        "improved <= peak and original <= peak everywhere",
    );
    check(
        "original falls away from peak as messages shrink",
        last.4 / last.2 < first.4 / first.2,
        &format!(
            "original/peak: {:.3} at 256 procs vs {:.5} at 32K",
            first.4 / first.2,
            last.4 / last.2
        ),
    );
    check(
        "limiting compositors alleviates the drop-off at 32K",
        last.3 > 5.0 * last.4,
        &format!(
            "improved {:.1} MB/s vs original {:.1} MB/s",
            last.3 / 1e6,
            last.4 / 1e6
        ),
    );
}
