//! Fault-injection sweep over the fault-tolerant pipeline.
//!
//! Exercises `pvr_core::run_frame_mpi_ft` against seeded
//! [`FaultPlan`]s on a laptop-scale frame (8 ranks, 16³ grid) and
//! checks the recovery contract end to end:
//!
//! * **Transient faults heal exactly** — dropped message attempts
//!   within the retry budget, stragglers within the stage deadline, and
//!   down servers covered by stripe replicas all produce a frame
//!   bit-identical to the fault-free run with completeness exactly 1.0.
//! * **Permanent faults degrade, never hang** — a crashed rank or an
//!   unreplicated down server terminates within its deadlines with
//!   completeness < 1.0 and the loss attributed to specific tiles.
//! * **Everything replays** — re-running the same `(seed, FaultPlan)`
//!   reproduces the image and the completeness map exactly.
//!
//! Default mode prints a sweep table (drop depth × stragglers × down
//! servers). `--ci` runs the assertion suite with fixed seeds and exits
//! nonzero on any violated invariant — the `fault-sweep` CI job.

use std::path::{Path, PathBuf};
use std::time::Instant;

use pvr_core::pipeline::{run_frame_mpi, tags, write_dataset};
use pvr_core::{run_frame_mpi_ft, CompositorPolicy, FrameConfig, FtError, FtFrameResult};
use pvr_faults::{
    FaultPlan, LinkAction, LinkFault, Pat, RankAction, RankFault, RecoveryPolicy, ServerAction,
    ServerFault, Stage,
};

fn test_cfg() -> FrameConfig {
    let mut cfg = FrameConfig::small(16, 24, 8);
    cfg.variable = 2;
    cfg.policy = CompositorPolicy::Fixed(4);
    cfg
}

fn dataset(cfg: &FrameConfig) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pvr-fault-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    let p = d.join("sweep.raw");
    write_dataset(&p, cfg).unwrap();
    p
}

/// A composable transient plan: drop the first `depth` attempts of
/// every fragment send from rank 1 and every scatter into rank 2, and
/// make `stragglers` renderers sleep 20 ms.
fn transient_plan(seed: u64, depth: u32, stragglers: usize) -> FaultPlan {
    let mut plan = FaultPlan {
        seed,
        ..FaultPlan::default()
    };
    if depth > 0 {
        plan.links.push(LinkFault {
            src: Pat::Is(1),
            dst: Pat::Any,
            tag: Some(tags::FRAGMENT),
            action: LinkAction::DropFirst(depth),
        });
        plan.links.push(LinkFault {
            src: Pat::Any,
            dst: Pat::Is(2),
            tag: Some(tags::IO_SCATTER),
            action: LinkAction::DropFirst(depth),
        });
    }
    for s in 0..stragglers {
        plan.ranks.push(RankFault {
            rank: 3 + s,
            stage: Stage::Render,
            action: RankAction::StraggleMs(20),
        });
    }
    plan
}

fn run(
    cfg: &FrameConfig,
    path: &Path,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
) -> Result<FtFrameResult, FtError> {
    run_frame_mpi_ft(cfg, path, plan, policy)
}

fn sweep(cfg: &FrameConfig, path: &Path, policy: &RecoveryPolicy) {
    println!("# fault sweep: n=8, 16^3 grid, 24^2 image, 4 compositors");
    println!(
        "{:>5} {:>10} {:>12} {:>9} {:>8} {:>9} {:>9}",
        "drops", "straggler", "servers_down", "time_ms", "compl", "retries", "timeouts"
    );
    for depth in [0u32, 1, 2] {
        for stragglers in [0usize, 1, 2] {
            for down in [0usize, 1] {
                let mut plan = transient_plan(11, depth, stragglers);
                for s in 0..down {
                    plan.servers.push(ServerFault {
                        server: s,
                        action: ServerAction::Down,
                    });
                }
                let t0 = Instant::now();
                match run(cfg, path, &plan, policy) {
                    Ok(ft) => {
                        let rec = ft.frame.timing.recovery;
                        println!(
                            "{:>5} {:>10} {:>12} {:>9.1} {:>8.4} {:>9} {:>9}",
                            depth,
                            stragglers,
                            down,
                            t0.elapsed().as_secs_f64() * 1e3,
                            ft.completeness.frame_fraction(),
                            rec.retries + rec.io_retries,
                            rec.timeouts
                        );
                    }
                    Err(e) => println!("{depth:>5} {stragglers:>10} {down:>12} FAILED: {e}"),
                }
            }
        }
    }
}

/// One CI check: print PASS/FAIL, return pass.
fn check(name: &str, ok: bool, detail: String) -> bool {
    println!("{} {name}: {detail}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// Record one scenario's recovery outcome into the CI metrics registry.
fn record(reg: &pvr_obs::Registry, case: &str, ft: &FtFrameResult) {
    let label = format!("case={case}");
    let rec = ft.frame.timing.recovery;
    reg.gauge_set(
        "completeness_milli",
        &label,
        (ft.completeness.frame_fraction() * 1000.0).round() as i64,
    );
    reg.gauge_set("retries", &label, (rec.retries + rec.io_retries) as i64);
    reg.gauge_set("timeouts", &label, rec.timeouts as i64);
    reg.gauge_set("crashed_ranks", &label, rec.crashed_ranks as i64);
    reg.gauge_set("failover_bytes", &label, ft.frame.io.failover_bytes as i64);
    reg.gauge_set(
        "unrecovered_bytes",
        &label,
        ft.frame.io.unrecovered_bytes as i64,
    );
}

fn ci(cfg: &FrameConfig, path: &Path, policy: &RecoveryPolicy) -> bool {
    let mut all = true;
    let reg = pvr_obs::Registry::new();
    let baseline = run_frame_mpi(cfg, path);

    // 1. Transient faults: bit-identical frame, exact completeness 1.0.
    let plan = transient_plan(5, 2, 1);
    match run(cfg, path, &plan, policy) {
        Ok(ft) => {
            record(&reg, "transient", &ft);
            let rec = ft.frame.timing.recovery;
            all &= check(
                "transient-bit-identical",
                baseline.image.pixels() == ft.frame.image.pixels()
                    && ft.completeness.frame_fraction() == 1.0
                    && rec.retries > 0
                    && rec.timeouts == 0,
                format!(
                    "completeness {:.4}, {} retries, {} timeouts",
                    ft.completeness.frame_fraction(),
                    rec.retries,
                    rec.timeouts
                ),
            );
        }
        Err(e) => all &= check("transient-bit-identical", false, e.to_string()),
    }

    // 2. Replica failover hides an entire down server.
    let plan = FaultPlan {
        seed: 3,
        servers: vec![ServerFault {
            server: 0,
            action: ServerAction::Down,
        }],
        ..FaultPlan::default()
    };
    match run(cfg, path, &plan, policy) {
        Ok(ft) => {
            record(&reg, "failover", &ft);
            all &= check(
                "failover-hides-down-server",
                baseline.image.pixels() == ft.frame.image.pixels()
                    && ft.completeness.frame_fraction() == 1.0
                    && ft.frame.io.failover_bytes > 0
                    && ft.frame.io.unrecovered_bytes == 0,
                format!(
                    "completeness {:.4}, {} failover bytes",
                    ft.completeness.frame_fraction(),
                    ft.frame.io.failover_bytes
                ),
            );
        }
        Err(e) => all &= check("failover-hides-down-server", false, e.to_string()),
    }

    // 3. Permanent loss (failover disabled) terminates with
    //    completeness < 1.0 — and reproduces exactly on a second run.
    let mut no_failover = *policy;
    no_failover.io_failover = false;
    let first = run(cfg, path, &plan, &no_failover);
    let second = run(cfg, path, &plan, &no_failover);
    match (first, second) {
        (Ok(a), Ok(b)) => {
            record(&reg, "permanent", &a);
            let fa = a.completeness.frame_fraction();
            all &= check(
                "permanent-loss-degrades",
                fa < 1.0 && a.frame.io.unrecovered_bytes > 0,
                format!(
                    "completeness {fa:.4}, {} unrecovered bytes",
                    a.frame.io.unrecovered_bytes
                ),
            );
            all &= check(
                "permanent-loss-reproduces",
                a.frame.image.pixels() == b.frame.image.pixels()
                    && fa == b.completeness.frame_fraction(),
                format!(
                    "run1 {fa:.6} vs run2 {:.6}",
                    b.completeness.frame_fraction()
                ),
            );
        }
        (a, b) => {
            let msg = format!(
                "{:?} / {:?}",
                a.err().map(|e| e.to_string()),
                b.err().map(|e| e.to_string())
            );
            all &= check("permanent-loss-degrades", false, msg);
        }
    }

    // 4. A crashed compositor degrades its tiles and terminates.
    let plan = FaultPlan {
        seed: 9,
        ranks: vec![RankFault {
            rank: 5,
            stage: Stage::Composite,
            action: RankAction::Crash,
        }],
        ..FaultPlan::default()
    };
    match run(cfg, path, &plan, policy) {
        Ok(ft) => {
            record(&reg, "crash", &ft);
            let f = ft.completeness.frame_fraction();
            all &= check(
                "crash-degrades-not-hangs",
                f < 1.0 && f > 0.0 && ft.frame.timing.recovery.crashed_ranks == 1,
                format!(
                    "completeness {f:.4}, {} crashed",
                    ft.frame.timing.recovery.crashed_ranks
                ),
            );
        }
        Err(e) => all &= check("crash-degrades-not-hangs", false, e.to_string()),
    }

    // 5. Plans replay through their JSON serialization unchanged.
    let plan = transient_plan(21, 1, 1);
    let round = FaultPlan::from_json(&plan.to_json());
    all &= check(
        "plan-json-roundtrip",
        round.as_ref() == Ok(&plan),
        format!("{} bytes of JSON", plan.to_json().len()),
    );

    // Metrics snapshot of every scenario, teed to results/ for the CI
    // artifact upload.
    let snap = reg.snapshot();
    println!("# metrics snapshot");
    print!("{}", snap.to_text());
    pvr_bench::emit_csv("fault_sweep_metrics", &snap.to_csv());

    all
}

fn main() {
    let ci_mode = std::env::args().any(|a| a == "--ci");
    let cfg = test_cfg();
    let path = dataset(&cfg);
    let policy = RecoveryPolicy::fast_test();

    let ok = if ci_mode {
        let t0 = Instant::now();
        let ok = ci(&cfg, &path, &policy);
        println!(
            "fault-sweep CI suite: {} in {:.1}s",
            if ok { "all checks passed" } else { "FAILURES" },
            t0.elapsed().as_secs_f64()
        );
        ok
    } else {
        sweep(&cfg, &path, &policy);
        true
    };

    std::fs::remove_file(&path).ok();
    if !ok {
        std::process::exit(1);
    }
}
