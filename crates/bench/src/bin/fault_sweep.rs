//! Fault-injection sweep over the fault-tolerant pipeline.
//!
//! Exercises `pvr_core::run_frame_mpi_ft` against seeded
//! [`FaultPlan`]s on a laptop-scale frame (8 ranks, 16³ grid) and
//! checks the recovery contract end to end:
//!
//! * **Transient faults heal exactly** — dropped message attempts
//!   within the retry budget, stragglers within the stage deadline, and
//!   down servers covered by stripe replicas all produce a frame
//!   bit-identical to the fault-free run with completeness exactly 1.0.
//! * **Permanent faults degrade, never hang** — a crashed rank or an
//!   unreplicated down server terminates within its deadlines with
//!   completeness < 1.0 and the loss attributed to specific tiles.
//! * **Everything replays** — re-running the same `(seed, FaultPlan)`
//!   reproduces the image and the completeness map exactly.
//!
//! Default mode prints a sweep table (drop depth × stragglers × down
//! servers). `--ci` runs the assertion suite with fixed seeds and exits
//! nonzero on any violated invariant — the `fault-sweep` CI job.

use std::path::{Path, PathBuf};
use std::time::Instant;

use pvr_core::pipeline::{run_frame_mpi, tags, write_dataset};
use pvr_core::{
    laptop_store, run_frame_mpi_ft_obs, CompositorPolicy, FrameConfig, FtError, FtFrameResult,
};
use pvr_faults::{
    FaultPlan, LinkAction, LinkFault, Pat, RankAction, RankFault, RecoveryPolicy, ServerAction,
    ServerFault, Stage,
};
use pvr_obs::bench::Trajectory;
use pvr_obs::FlightRecorder;

fn test_cfg() -> FrameConfig {
    let mut cfg = FrameConfig::small(16, 24, 8);
    cfg.variable = 2;
    cfg.policy = CompositorPolicy::Fixed(4);
    cfg
}

fn dataset(cfg: &FrameConfig) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pvr-fault-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    let p = d.join("sweep.raw");
    write_dataset(&p, cfg).unwrap();
    p
}

/// A composable transient plan: drop the first `depth` attempts of
/// every fragment send from rank 1 and every scatter into rank 2, and
/// make `stragglers` renderers sleep 20 ms.
fn transient_plan(seed: u64, depth: u32, stragglers: usize) -> FaultPlan {
    let mut plan = FaultPlan {
        seed,
        ..FaultPlan::default()
    };
    if depth > 0 {
        plan.links.push(LinkFault {
            src: Pat::Is(1),
            dst: Pat::Any,
            tag: Some(tags::FRAGMENT),
            action: LinkAction::DropFirst(depth),
        });
        plan.links.push(LinkFault {
            src: Pat::Any,
            dst: Pat::Is(2),
            tag: Some(tags::IO_SCATTER),
            action: LinkAction::DropFirst(depth),
        });
    }
    for s in 0..stragglers {
        plan.ranks.push(RankFault {
            rank: 3 + s,
            stage: Stage::Render,
            action: RankAction::StraggleMs(20),
        });
    }
    plan
}

fn run(
    cfg: &FrameConfig,
    path: &Path,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    flight: &FlightRecorder,
) -> Result<FtFrameResult, FtError> {
    run_frame_mpi_ft_obs(
        cfg,
        path,
        plan,
        policy,
        &laptop_store(),
        pvr_mpisim::RunOptions::default(),
        flight,
    )
    .map(|(ft, _)| ft)
}

fn sweep(cfg: &FrameConfig, path: &Path, policy: &RecoveryPolicy) {
    println!("# fault sweep: n=8, 16^3 grid, 24^2 image, 4 compositors");
    println!(
        "{:>5} {:>10} {:>12} {:>9} {:>8} {:>9} {:>9}",
        "drops", "straggler", "servers_down", "time_ms", "compl", "retries", "timeouts"
    );
    for depth in [0u32, 1, 2] {
        for stragglers in [0usize, 1, 2] {
            for down in [0usize, 1] {
                let mut plan = transient_plan(11, depth, stragglers);
                for s in 0..down {
                    plan.servers.push(ServerFault {
                        server: s,
                        action: ServerAction::Down,
                    });
                }
                let t0 = Instant::now();
                match run(cfg, path, &plan, policy, &FlightRecorder::disabled()) {
                    Ok(ft) => {
                        let rec = ft.frame.timing.recovery;
                        println!(
                            "{:>5} {:>10} {:>12} {:>9.1} {:>8.4} {:>9} {:>9}",
                            depth,
                            stragglers,
                            down,
                            t0.elapsed().as_secs_f64() * 1e3,
                            ft.completeness.frame_fraction(),
                            rec.retries + rec.io_retries,
                            rec.timeouts
                        );
                    }
                    Err(e) => println!("{depth:>5} {stragglers:>10} {down:>12} FAILED: {e}"),
                }
            }
        }
    }
}

/// One CI check: print PASS/FAIL, return pass.
fn check(name: &str, ok: bool, detail: String) -> bool {
    println!("{} {name}: {detail}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// Per-scenario outcome feeding `results/BENCH_faults.json`.
struct Outcome {
    case: &'static str,
    /// Did the frame end fully complete (healed or never hurt)?
    healed: bool,
    /// Was a full heal expected (i.e. does `healed == false` mean a
    /// deliberate degradation scenario rather than a failure)?
    heal_expected: bool,
    recovery_bytes: u64,
    wall_ms: f64,
}

/// Build the `BENCH_faults.json` trajectory: healed-frame fraction
/// over heal-expected scenarios and total recovery traffic are exact
/// gates (the schedules are seeded and deterministic); the p95 frame
/// wall is info-only (laptop CI machines are not benchmarking rigs).
fn bench_faults_trajectory(outcomes: &[Outcome]) -> Trajectory {
    let expected: Vec<&Outcome> = outcomes.iter().filter(|o| o.heal_expected).collect();
    let healed = expected.iter().filter(|o| o.healed).count();
    let fraction = if expected.is_empty() {
        1.0
    } else {
        healed as f64 / expected.len() as f64
    };
    let bytes: u64 = outcomes.iter().map(|o| o.recovery_bytes).sum();
    let mut walls: Vec<f64> = outcomes.iter().map(|o| o.wall_ms).collect();
    walls.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p95 = if walls.is_empty() {
        0.0
    } else {
        walls[((walls.len() as f64 * 0.95).ceil() as usize - 1).min(walls.len() - 1)]
    };
    let mut t = Trajectory::new("faults");
    t.exact("frames", outcomes.len() as f64)
        .exact("heal_expected_frames", expected.len() as f64)
        .exact("healed_frames", healed as f64)
        .exact("healed_fraction", fraction)
        // Recovery traffic is seeded but the hedging path is timer
        // driven, so the byte total gets a band rather than exactness.
        .rel("recovery_bytes_total", bytes as f64, 0.5)
        .info("p95_frame_wall_ms", p95)
        .table(
            "cases",
            &[
                "case",
                "healed",
                "heal_expected",
                "recovery_bytes",
                "wall_ms",
            ],
            outcomes
                .iter()
                .map(|o| {
                    vec![
                        o.case.to_string(),
                        (o.healed as u8).to_string(),
                        (o.heal_expected as u8).to_string(),
                        o.recovery_bytes.to_string(),
                        format!("{:.2}", o.wall_ms),
                    ]
                })
                .collect(),
        );
    t
}

/// Record one scenario's recovery outcome into the CI metrics registry.
fn record(reg: &pvr_obs::Registry, case: &str, ft: &FtFrameResult) {
    let label = format!("case={case}");
    let rec = ft.frame.timing.recovery;
    reg.gauge_set(
        "completeness_milli",
        &label,
        (ft.completeness.frame_fraction() * 1000.0).round() as i64,
    );
    reg.gauge_set("retries", &label, (rec.retries + rec.io_retries) as i64);
    reg.gauge_set("timeouts", &label, rec.timeouts as i64);
    reg.gauge_set("crashed_ranks", &label, rec.crashed_ranks as i64);
    reg.gauge_set("failover_bytes", &label, ft.frame.io.failover_bytes as i64);
    reg.gauge_set(
        "unrecovered_bytes",
        &label,
        ft.frame.io.unrecovered_bytes as i64,
    );
}

/// Run one plan under a wall-clock timer, recording into `flight`.
fn timed(
    cfg: &FrameConfig,
    path: &Path,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    flight: &FlightRecorder,
) -> (Result<FtFrameResult, FtError>, f64) {
    let t0 = Instant::now();
    let out = run(cfg, path, plan, policy, flight);
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

fn outcome_of(
    case: &'static str,
    heal_expected: bool,
    ft: &FtFrameResult,
    wall_ms: f64,
) -> Outcome {
    Outcome {
        case,
        healed: ft.completeness.fully_complete(),
        heal_expected,
        recovery_bytes: ft.frame.timing.recovery.recovery_bytes + ft.frame.io.failover_bytes,
        wall_ms,
    }
}

fn ci(cfg: &FrameConfig, path: &Path, policy: &RecoveryPolicy) -> bool {
    let mut all = true;
    let reg = pvr_obs::Registry::new();
    let mut outcomes: Vec<Outcome> = Vec::new();
    // One always-on ring across the whole suite: the anomalous
    // scenarios (crash, straggler violation) dump it, and the dumps
    // land under results/ as replayable Perfetto artifacts for the CI
    // upload.
    let flight = FlightRecorder::wall(512);
    let baseline = run_frame_mpi(cfg, path);

    // 1. Transient faults: bit-identical frame, exact completeness 1.0.
    let plan = transient_plan(5, 2, 1);
    match timed(cfg, path, &plan, policy, &flight) {
        (Ok(ft), wall) => {
            record(&reg, "transient", &ft);
            outcomes.push(outcome_of("transient", true, &ft, wall));
            let rec = ft.frame.timing.recovery;
            all &= check(
                "transient-bit-identical",
                baseline.image.pixels() == ft.frame.image.pixels()
                    && ft.completeness.frame_fraction() == 1.0
                    && rec.retries > 0
                    && rec.timeouts == 0,
                format!(
                    "completeness {:.4}, {} retries, {} timeouts",
                    ft.completeness.frame_fraction(),
                    rec.retries,
                    rec.timeouts
                ),
            );
        }
        (Err(e), _) => all &= check("transient-bit-identical", false, e.to_string()),
    }

    // 2. Replica failover hides an entire down server.
    let plan = FaultPlan {
        seed: 3,
        servers: vec![ServerFault {
            server: 0,
            action: ServerAction::Down,
        }],
        ..FaultPlan::default()
    };
    match timed(cfg, path, &plan, policy, &flight) {
        (Ok(ft), wall) => {
            record(&reg, "failover", &ft);
            outcomes.push(outcome_of("failover", true, &ft, wall));
            all &= check(
                "failover-hides-down-server",
                baseline.image.pixels() == ft.frame.image.pixels()
                    && ft.completeness.frame_fraction() == 1.0
                    && ft.frame.io.failover_bytes > 0
                    && ft.frame.io.unrecovered_bytes == 0,
                format!(
                    "completeness {:.4}, {} failover bytes",
                    ft.completeness.frame_fraction(),
                    ft.frame.io.failover_bytes
                ),
            );
        }
        (Err(e), _) => all &= check("failover-hides-down-server", false, e.to_string()),
    }

    // 3. Permanent loss (failover disabled) terminates with
    //    completeness < 1.0 — and reproduces exactly on a second run.
    let mut no_failover = *policy;
    no_failover.io_failover = false;
    let (first, wall1) = timed(cfg, path, &plan, &no_failover, &flight);
    let second = run(cfg, path, &plan, &no_failover, &flight);
    match (first, second) {
        (Ok(a), Ok(b)) => {
            record(&reg, "permanent", &a);
            outcomes.push(outcome_of("permanent-loss", false, &a, wall1));
            let fa = a.completeness.frame_fraction();
            all &= check(
                "permanent-loss-degrades",
                fa < 1.0 && a.frame.io.unrecovered_bytes > 0,
                format!(
                    "completeness {fa:.4}, {} unrecovered bytes",
                    a.frame.io.unrecovered_bytes
                ),
            );
            all &= check(
                "permanent-loss-reproduces",
                a.frame.image.pixels() == b.frame.image.pixels()
                    && fa == b.completeness.frame_fraction(),
                format!(
                    "run1 {fa:.6} vs run2 {:.6}",
                    b.completeness.frame_fraction()
                ),
            );
        }
        (a, b) => {
            let msg = format!(
                "{:?} / {:?}",
                a.err().map(|e| e.to_string()),
                b.err().map(|e| e.to_string())
            );
            all &= check("permanent-loss-degrades", false, msg);
        }
    }

    // 4. A crashed renderer heals: survivors adopt the orphan block and
    //    the frame comes out bit-identical to the fault-free run.
    let plan = FaultPlan {
        seed: 9,
        ranks: vec![RankFault {
            rank: 5,
            stage: Stage::Composite,
            action: RankAction::Crash,
        }],
        ..FaultPlan::default()
    };
    match timed(cfg, path, &plan, policy, &flight) {
        (Ok(ft), wall) => {
            record(&reg, "crash", &ft);
            outcomes.push(outcome_of("crash-heal", true, &ft, wall));
            let rec = ft.frame.timing.recovery;
            all &= check(
                "crash-heals-bit-identically",
                baseline.image.pixels() == ft.frame.image.pixels()
                    && ft.completeness.fully_complete()
                    && rec.crashed_ranks == 1
                    && rec.adopted_blocks >= 1
                    && rec.recovery_bytes > 0,
                format!(
                    "completeness {:.4}, {} adopted blocks, {} recovery bytes",
                    ft.completeness.frame_fraction(),
                    rec.adopted_blocks,
                    rec.recovery_bytes
                ),
            );
        }
        (Err(e), _) => all &= check("crash-heals-bit-identically", false, e.to_string()),
    }

    // 4b. A straggler is hedged: the frame is bit-identical and does
    //     not wait out the straggle.
    let plan = FaultPlan {
        seed: 4,
        ranks: vec![RankFault {
            rank: 3,
            stage: Stage::Composite,
            action: RankAction::StraggleMs(1200),
        }],
        ..FaultPlan::default()
    };
    match timed(cfg, path, &plan, policy, &flight) {
        (Ok(ft), wall) => {
            record(&reg, "straggler", &ft);
            outcomes.push(outcome_of("straggler-hedge", true, &ft, wall));
            let rec = ft.frame.timing.recovery;
            all &= check(
                "straggler-hedged",
                baseline.image.pixels() == ft.frame.image.pixels()
                    && ft.completeness.fully_complete()
                    && rec.hedged_renders >= 1
                    && ft.frame.timing.wall < 1.2,
                format!(
                    "completeness {:.4}, {} hedges, wall {:.3}s",
                    ft.completeness.frame_fraction(),
                    rec.hedged_renders,
                    ft.frame.timing.wall
                ),
            );
        }
        (Err(e), _) => all &= check("straggler-hedged", false, e.to_string()),
    }

    // 5. Plans replay through their JSON serialization unchanged.
    let plan = transient_plan(21, 1, 1);
    let round = FaultPlan::from_json(&plan.to_json());
    all &= check(
        "plan-json-roundtrip",
        round.as_ref() == Ok(&plan),
        format!("{} bytes of JSON", plan.to_json().len()),
    );

    // 6. The same healing guarantees at paper scale: the discrete-event
    //    core makes an n = 1024 rank a task, not an OS thread (the old
    //    executor topped out near 256), so the CI suite now proves the
    //    recovery protocols at four times that — transient retries and
    //    crash adoption, each bit-identical to a 1024-rank baseline.
    let mut scale_cfg = *cfg;
    scale_cfg.nprocs = 1024;
    // The 24×24 CI image has 576 pixels, so the improved policy's
    // m(1024) would out-count the tiles; a fixed 256 keeps the
    // paper-shaped 4:1 renderer:compositor reduction instead.
    scale_cfg.policy = CompositorPolicy::Fixed(256);
    let scale_baseline = run_frame_mpi(&scale_cfg, path);
    let plan = transient_plan(5, 2, 1);
    match timed(&scale_cfg, path, &plan, policy, &flight) {
        (Ok(ft), wall) => {
            record(&reg, "transient-1024", &ft);
            outcomes.push(outcome_of("transient-1024", true, &ft, wall));
            let rec = ft.frame.timing.recovery;
            all &= check(
                "transient-heals-at-n1024",
                scale_baseline.image.pixels() == ft.frame.image.pixels()
                    && ft.completeness.frame_fraction() == 1.0
                    && rec.retries > 0,
                format!(
                    "completeness {:.4}, {} retries",
                    ft.completeness.frame_fraction(),
                    rec.retries
                ),
            );
        }
        (Err(e), _) => all &= check("transient-heals-at-n1024", false, e.to_string()),
    }
    let plan = FaultPlan {
        seed: 9,
        ranks: vec![RankFault {
            rank: 5,
            stage: Stage::Composite,
            action: RankAction::Crash,
        }],
        ..FaultPlan::default()
    };
    match timed(&scale_cfg, path, &plan, policy, &flight) {
        (Ok(ft), wall) => {
            record(&reg, "crash-1024", &ft);
            outcomes.push(outcome_of("crash-heal-1024", true, &ft, wall));
            let rec = ft.frame.timing.recovery;
            all &= check(
                "crash-heals-at-n1024",
                scale_baseline.image.pixels() == ft.frame.image.pixels()
                    && ft.completeness.fully_complete()
                    && rec.crashed_ranks == 1
                    && rec.adopted_blocks >= 1,
                format!(
                    "completeness {:.4}, {} adopted blocks",
                    ft.completeness.frame_fraction(),
                    rec.adopted_blocks
                ),
            );
        }
        (Err(e), _) => all &= check("crash-heals-at-n1024", false, e.to_string()),
    }

    // Metrics snapshot of every scenario, teed to results/ for the CI
    // artifact upload.
    let snap = reg.snapshot();
    println!("# metrics snapshot");
    print!("{}", snap.to_text());
    pvr_bench::emit_csv("fault_sweep_metrics", &snap.to_csv());

    // Every anomaly the suite provoked, as a replayable trace (open in
    // ui.perfetto.dev or any trace-event viewer).
    let dumps = flight.take_dumps();
    for (i, d) in dumps.iter().enumerate() {
        pvr_bench::write_artifact(
            &format!("flight_dump_{}_{i}.json", d.reason),
            d.json.as_bytes(),
        );
    }
    all &= check(
        "anomalous-scenarios-dumped-the-flight-ring",
        !dumps.is_empty(),
        format!("{} anomaly dump(s)", dumps.len()),
    );

    // Recovery summary: every heal-expected scenario must actually
    // have healed — the zero-unhealed-transient gate.
    pvr_bench::write_trajectory(&bench_faults_trajectory(&outcomes));
    let unhealed = outcomes
        .iter()
        .filter(|o| o.heal_expected && !o.healed)
        .count();
    all &= check(
        "zero-unhealed-expected",
        unhealed == 0,
        format!("{unhealed} heal-expected scenario(s) left unhealed"),
    );

    all
}

fn main() {
    let ci_mode = std::env::args().any(|a| a == "--ci");
    let cfg = test_cfg();
    let path = dataset(&cfg);
    let policy = RecoveryPolicy::fast_test();

    let ok = if ci_mode {
        let t0 = Instant::now();
        let ok = ci(&cfg, &path, &policy);
        println!(
            "fault-sweep CI suite: {} in {:.1}s",
            if ok { "all checks passed" } else { "FAILURES" },
            t0.elapsed().as_secs_f64()
        );
        ok
    } else {
        sweep(&cfg, &path, &policy);
        true
    };

    std::fs::remove_file(&path).ok();
    if !ok {
        std::process::exit(1);
    }
}
