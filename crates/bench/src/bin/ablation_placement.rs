//! Ablation — compositor placement on the torus.
//!
//! The improved scheme has a silent design choice: *which* ranks host
//! the m compositors. Spreading them across the partition (rank
//! c*n/m) distributes the incast; packing them into the first m ranks
//! concentrates the traffic into one torus corner — the hot-spot
//! pathology Davis et al. measured on Blue Gene (3x slowdown at hot
//! spots), which the paper cites as background.

use pvr_bench::{check, CsvOut};
use pvr_core::{CompositorPolicy, FrameConfig, PerfModel, Placement};

fn main() {
    let model = PerfModel::default();
    let mut csv = CsvOut::create(
        "ablation_placement",
        "cores,compositors,spread_s,packed_s,packed_over_spread",
    );

    let mut worst_ratio: f64 = 0.0;
    for n in [2048usize, 8192, 32768] {
        let mut cfg = FrameConfig::paper_1120(n);
        cfg.policy = CompositorPolicy::Improved;
        let sched = model.schedule_for(&cfg);
        let spread = model.simulate_composite_placed(&cfg, &sched, Placement::Spread);
        let packed = model.simulate_composite_placed(&cfg, &sched, Placement::Packed);
        let ratio = packed.seconds / spread.seconds;
        worst_ratio = worst_ratio.max(ratio);
        csv.row(&format!(
            "{n},{},{:.3},{:.3},{ratio:.2}",
            spread.compositors, spread.seconds, packed.seconds
        ));
    }

    check(
        "packing compositors into a torus corner is never faster",
        worst_ratio >= 1.0,
        &format!("worst packed/spread ratio {worst_ratio:.2}"),
    );
    check(
        "hot-spotting costs measurably at scale",
        worst_ratio > 1.2,
        &format!("packed is up to {worst_ratio:.2}x slower"),
    );
}
