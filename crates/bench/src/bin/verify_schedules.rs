//! Static schedule verification sweep.
//!
//! Runs the `pvr-verify` linter over paper-scale configurations:
//!
//! * **Direct-send** schedules built from *real* raycast footprints
//!   (near-cubic block decomposition of a 64³ grid, oblique
//!   orthographic camera) for n ∈ {2..256} renderers and compositor
//!   counts m ∈ {1..n} (sampled; exhaustive for small n) — checking
//!   image-partition exactness, overlap conservation (every
//!   footprint ∩ tile intersection sent exactly once, exactly sized),
//!   and the paper's bounded per-compositor fan-in.
//! * **Radix-k** rounds for the default factorization, pure binary
//!   swap, and pure direct-send — checking round degree, group/lane
//!   locality, byte conservation, and final-span partition.
//! * **Stage tags** used by the pipeline.
//! * **Mutation kill check**: seeded faults (drop / duplicate /
//!   reroute / inflate) injected into known-good schedules must all be
//!   caught — proving the linter is not vacuously green.
//!
//! Exits nonzero on any violation (or any uncaught mutation).

use pvr_compositing::radixk::{default_radices, radix_k_schedule};
use pvr_compositing::{build_schedule, ImagePartition};
use pvr_render::camera::Camera;
use pvr_render::image::PixelRect;
use pvr_verify::lint::{expected_fanin, mutate_rounds, mutate_schedule};
use pvr_verify::{lint_direct_send, lint_radix_k, lint_tags, m_samples, LintOptions, Mutation};
use pvr_volume::BlockDecomposition;

const IMAGE: (usize, usize) = (128, 128);
const GRID: [usize; 3] = [64, 64, 64];
// Past-256 entries arrived with the discrete-event core: schedule
// *construction* was never the bottleneck, but until frames could run
// at those sizes there was nothing to hold the linter's answers
// against. n = 512/1024 keep the static checks ahead of the dynamic
// `sim_scale` sweep (the lint is O(n·m) in footprint-tile pairs, so
// each doubling roughly quadruples its share of the run).
const N_SWEEP: [usize; 16] = [
    2, 3, 4, 6, 8, 12, 16, 27, 32, 64, 101, 128, 192, 256, 512, 1024,
];

/// Screen footprints of a near-cubic block decomposition under the
/// pipeline's slightly-oblique default view — the real geometry the
/// mpi pipeline derives its schedules from.
fn real_footprints(n: usize) -> Vec<PixelRect> {
    // A prime factor larger than a grid axis cannot be placed (e.g.
    // n = 101 on a 64³ grid); those n get the synthetic lattice.
    let mut rem = n;
    for p in 2..=GRID[0] {
        while rem.is_multiple_of(p) {
            rem /= p;
        }
    }
    if rem > 1 {
        return pvr_verify::synthetic_footprints(n, IMAGE.0, IMAGE.1);
    }
    let decomp = BlockDecomposition::new(GRID, n);
    let camera = Camera::orthographic(GRID, pvr_core::pipeline::default_view(), IMAGE.0, IMAGE.1);
    decomp
        .blocks()
        .iter()
        .map(|b| pvr_render::raycast::footprint(&camera, b.sub.offset, b.sub.end(), IMAGE))
        .collect()
}

fn main() {
    let mut checks = 0usize;
    let mut failures = 0usize;
    let mut report = |label: String, ok: bool, detail: String| {
        checks += 1;
        if !ok {
            failures += 1;
            eprintln!("FAIL {label}: {detail}");
        }
    };

    // --- Direct-send sweep: real footprints, sampled m. ---
    for n in N_SWEEP {
        let fps = real_footprints(n);
        for m in m_samples(n) {
            let part = ImagePartition::new(IMAGE.0, IMAGE.1, m);
            let schedule = build_schedule(&fps, part);
            // Real oblique footprints are conservative bounding boxes
            // (larger than the ideal lattice cell), so give the
            // fan-in cap headroom over the synthetic bound.
            let opts = LintOptions {
                mean_fanin_alpha: 6.0,
                max_fanin_beta: 12.0,
                ..LintOptions::default()
            };
            let r = lint_direct_send(&fps, &schedule, &opts);
            report(
                format!("direct-send n={n} m={m}"),
                r.ok(),
                r.violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; "),
            );
        }
        // Fan-in summary at m = n for the paper's scaling curve.
        let part = ImagePartition::new(IMAGE.0, IMAGE.1, n.min(IMAGE.0));
        let schedule = build_schedule(&fps, part);
        let mean = schedule.messages.len() as f64 / part.m() as f64;
        println!(
            "direct-send n={n:>3}: {} msgs, mean fan-in {mean:.2} (expected O(n^1/3) ≈ {:.2})",
            schedule.messages.len(),
            expected_fanin(n, part.m()),
        );
    }

    // --- Radix-k sweep: default, binary-swap, direct-send factorizations. ---
    let pixels = IMAGE.0 * IMAGE.1;
    let opts = LintOptions::default();
    for n in N_SWEEP {
        let mut factorizations = vec![("default", default_radices(n)), ("direct", vec![n])];
        if n.is_power_of_two() {
            let swap = vec![2usize; n.trailing_zeros() as usize];
            factorizations.push(("binary-swap", swap));
        }
        for (label, radices) in factorizations {
            if radices.iter().any(|&k| k < 2) {
                continue;
            }
            let rounds = radix_k_schedule(n, pixels, &radices);
            let r = lint_radix_k(n, pixels, &radices, &rounds, &opts);
            report(
                format!("radix-k n={n} {label} {radices:?}"),
                r.ok(),
                r.violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; "),
            );
        }
    }

    // --- Tag discipline. ---
    let tags = pvr_core::pipeline::tags::ALL;
    let r = lint_tags(&tags);
    report("stage tags".into(), r.ok(), format!("{:?}", r.violations));

    // The animation's epoch scheme must keep every frame's tags
    // disjoint from every other frame's — lint the full multi-frame
    // table the way the single-frame table is linted.
    let anim_tags = pvr_core::FrameTags::table(8);
    let r = lint_tags(&anim_tags);
    report(
        "animation tag epochs (8 frames)".into(),
        r.ok(),
        format!("{:?}", r.violations),
    );

    // --- Mutation kill check: every injected fault must be caught. ---
    let n = 27;
    let fps = real_footprints(n);
    let part = ImagePartition::new(IMAGE.0, IMAGE.1, 9);
    let schedule = build_schedule(&fps, part);
    for (i, mutation) in [
        Mutation::Drop(3),
        Mutation::Drop(17),
        Mutation::Duplicate(5),
        Mutation::Duplicate(29),
        Mutation::Inflate(7, 13),
        Mutation::Reroute(11, 4),
    ]
    .into_iter()
    .enumerate()
    {
        let bad = mutate_schedule(&schedule, mutation);
        if bad.messages == schedule.messages {
            continue; // mutation was a no-op (rerouted onto itself)
        }
        let caught = !lint_direct_send(&fps, &bad, &LintOptions::default()).ok();
        report(
            format!("mutation-kill direct-send #{i} {mutation:?}"),
            caught,
            "not caught".into(),
        );
    }
    let radices = default_radices(16);
    let rounds = radix_k_schedule(16, pixels, &radices);
    for (i, mutation) in [
        Mutation::Drop(2),
        Mutation::Duplicate(9),
        Mutation::Inflate(5, 11),
        Mutation::Reroute(3, 7),
    ]
    .into_iter()
    .enumerate()
    {
        let bad = mutate_rounds(&rounds, 16, mutation);
        let caught = !lint_radix_k(16, pixels, &radices, &bad, &opts).ok();
        report(
            format!("mutation-kill radix-k #{i} {mutation:?}"),
            caught,
            "not caught".into(),
        );
    }

    println!("verify_schedules: {checks} checks, {failures} failures");
    if failures > 0 {
        std::process::exit(1);
    }
}
