//! Ablation — compositing algorithm choice on the simulated BG/P.
//!
//! The paper fixes direct-send and tunes `m`; its background section
//! cites binary swap (Ma et al.), and the authors' follow-on work
//! (radix-k, SC'09) generalizes both. This ablation prices all of them
//! on the same machine model at the paper's scales: direct-send with
//! m = n, the improved limited-m direct-send, binary swap, and radix-k
//! at several factorizations.

use pvr_bench::{check, CsvOut};
use pvr_compositing::radixk::{default_radices, radix_k_schedule};
use pvr_core::{CompositorPolicy, FrameConfig, PerfModel};

fn main() {
    let model = PerfModel::default();
    let mut csv = CsvOut::create(
        "ablation_compositing",
        "cores,directsend_mn_s,directsend_limited_s,binaryswap_s,radix4_s,radix_default_s",
    );

    let image_pixels = 1600 * 1600;
    let mut last = (0.0, 0.0, 0.0);
    for n in [1024usize, 4096, 16384, 32768] {
        let mut cfg = FrameConfig::paper_1120(n);

        cfg.policy = CompositorPolicy::Original;
        let ds_mn = model
            .simulate_composite(&cfg, &model.schedule_for(&cfg))
            .seconds;
        cfg.policy = CompositorPolicy::Improved;
        let ds_lim = model
            .simulate_composite(&cfg, &model.schedule_for(&cfg))
            .seconds;

        let bs_radices = vec![2usize; n.trailing_zeros() as usize];
        let bs = model
            .simulate_rounds(&cfg, &radix_k_schedule(n, image_pixels, &bs_radices))
            .seconds;

        // Rounds of radix 4, with one radix-2 round when log2(n) is odd.
        let mut r4_radices = vec![4usize; (n.trailing_zeros() / 2) as usize];
        if n.trailing_zeros() % 2 == 1 {
            r4_radices.push(2);
        }
        let r4 = model
            .simulate_rounds(&cfg, &radix_k_schedule(n, image_pixels, &r4_radices))
            .seconds;

        let rd = model
            .simulate_rounds(
                &cfg,
                &radix_k_schedule(n, image_pixels, &default_radices(n)),
            )
            .seconds;

        csv.row(&format!(
            "{n},{ds_mn:.3},{ds_lim:.3},{bs:.3},{r4:.3},{rd:.3}"
        ));
        last = (ds_mn, ds_lim, bs);
        let _ = (r4, rd);
    }

    let (ds_mn, ds_lim, bs) = last;
    check(
        "at 32K, classic direct-send is the worst choice",
        ds_mn > ds_lim && ds_mn > bs,
        &format!("m=n {ds_mn:.2} s vs limited {ds_lim:.3} s vs binary swap {bs:.3} s"),
    );
    check(
        "tree-structured compositing is competitive with limited direct-send",
        bs < 5.0 * ds_lim,
        &format!("binary swap {bs:.3} s vs limited direct-send {ds_lim:.3} s"),
    );
}
