//! Criterion bench: compositing algorithms.
//!
//! Direct-send at several compositor counts (the paper's ablation:
//! m = n vs limited m) and binary swap / serial gather as baselines,
//! on identical subimage sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvr_compositing::binaryswap::composite_binary_swap;
use pvr_compositing::{composite_direct_send, composite_serial, ImagePartition};
use pvr_render::image::{PixelRect, SubImage};

/// Deterministic pseudo-random subimages mimicking block footprints.
fn subimages(n: usize, image: usize) -> Vec<SubImage> {
    let b = (n as f64).cbrt().round() as usize;
    let fp = image / b.max(1);
    (0..n)
        .map(|i| {
            let bx = i % b;
            let by = (i / b) % b;
            let bz = i / (b * b);
            let rect = PixelRect::new(bx * fp, by * fp, fp, fp);
            let mut s = SubImage::transparent(rect, bz as f64);
            for (k, p) in s.pixels.iter_mut().enumerate() {
                let v = ((k * 2654435761 + i) % 1000) as f32 / 1000.0;
                *p = [v * 0.3, v * 0.2, v * 0.5, v * 0.4];
            }
            s
        })
        .collect()
}

fn bench_compositing(c: &mut Criterion) {
    let mut group = c.benchmark_group("compositing");
    let image = 512;
    let n = 64;
    let subs = subimages(n, image);

    for m in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::new("direct-send", m), &m, |b, &m| {
            let part = ImagePartition::new(image, image, m);
            b.iter(|| composite_direct_send(&subs, part))
        });
    }
    group.bench_function("binary-swap", |b| {
        b.iter(|| composite_binary_swap(&subs, image, image))
    });
    group.bench_function("serial-gather", |b| {
        b.iter(|| composite_serial(&subs, image, image))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compositing
}
criterion_main!(benches);
