//! Criterion bench: the real end-to-end frame at laptop scale.
//!
//! One complete miniature frame (collective read from disk + parallel
//! render + direct-send composite), the workload the paper's Figure 3
//! measures at full scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvr_core::{run_frame, write_dataset, CompositorPolicy, FrameConfig, IoMode};

fn bench_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame");
    group.sample_size(10);
    let dir = std::env::temp_dir().join("pvr-bench-e2e");
    std::fs::create_dir_all(&dir).unwrap();

    for nprocs in [8usize, 32] {
        let mut cfg = FrameConfig::small(48, 64, nprocs);
        cfg.variable = 2;
        cfg.io = IoMode::Raw;
        let path = dir.join(format!("frame-{nprocs}.raw"));
        write_dataset(&path, &cfg).unwrap();
        group.bench_with_input(BenchmarkId::new("raw-original", nprocs), &cfg, |b, cfg| {
            b.iter(|| run_frame(cfg, Some(&path)))
        });
        let mut improved = cfg;
        improved.policy = CompositorPolicy::Fixed(nprocs / 4);
        group.bench_with_input(
            BenchmarkId::new("raw-limited-compositors", nprocs),
            &improved,
            |b, cfg| b.iter(|| run_frame(cfg, Some(&path))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_frame
}
criterion_main!(benches);
