//! Criterion bench: the flow-level network simulator.
//!
//! Water-filling cost on contended schedules and an end-to-end
//! direct-send phase simulation at mid scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvr_bgp::flowsim::{FlowSim, FlowSpec, SimParams};
use pvr_bgp::Torus;

/// An incast: many senders, few receivers (compositor-like).
fn incast(nodes: usize, senders_per_recv: usize, bytes: u64) -> Vec<FlowSpec> {
    let mut v = Vec::new();
    let receivers = nodes / senders_per_recv;
    for r in 0..receivers {
        for s in 0..senders_per_recv {
            let src = (r * senders_per_recv + s + 1) % nodes;
            let dst = r;
            if src != dst {
                v.push(FlowSpec::new(src, dst, bytes));
            }
        }
    }
    v
}

fn bench_flowsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("flowsim");
    for nodes in [512usize, 4096] {
        let torus = Torus::near_cubic(nodes);
        let specs = incast(nodes, 8, 64_000);
        group.bench_with_input(BenchmarkId::new("incast-exact", nodes), &specs, |b, s| {
            let sim = FlowSim::new(&torus);
            b.iter(|| sim.run(s))
        });
        group.bench_with_input(BenchmarkId::new("incast-batched", nodes), &specs, |b, s| {
            let sim = FlowSim::with_params(
                &torus,
                SimParams {
                    batch_tolerance: 0.05,
                    ..Default::default()
                },
            );
            b.iter(|| sim.run(s))
        });
        group.bench_with_input(BenchmarkId::new("max-link-bound", nodes), &specs, |b, s| {
            let sim = FlowSim::new(&torus);
            b.iter(|| sim.max_link_time(s))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_flowsim
}
criterion_main!(benches);
