//! Criterion bench: ray-casting kernel throughput.
//!
//! Measures samples/s of the serial renderer on the synthetic supernova
//! — the number the performance model's `render_rate` is derived from
//! (scaled to the 850 MHz PPC450).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pvr_render::raycast::{render_serial, RenderOpts, Termination};
use pvr_render::{Camera, TransferFunction};
use pvr_volume::{SupernovaField, Volume};

fn bench_raycast(c: &mut Criterion) {
    let mut group = c.benchmark_group("raycast");
    for n in [32usize, 64] {
        let field = SupernovaField::new(1530).variable(2);
        let vol = Volume::from_field(&field, [n, n, n]);
        let cam = Camera::axis_aligned([n, n, n], 128, 128);
        let tf = TransferFunction::supernova_velocity();
        let opts = RenderOpts::default();
        // Count samples once for throughput reporting.
        let (_, stats) = render_serial(&vol, &cam, &tf, &opts);
        group.throughput(Throughput::Elements(stats.samples));
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| render_serial(&vol, &cam, &tf, &opts))
        });

        let scalar = RenderOpts {
            packet_width: 1,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
            b.iter(|| render_serial(&vol, &cam, &tf, &scalar))
        });

        let et = RenderOpts {
            termination: Termination::Bounded { alpha: 0.995 },
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("bounded-termination", n), &n, |b, _| {
            b.iter(|| render_serial(&vol, &cam, &tf, &et))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_raycast
}
criterion_main!(benches);
