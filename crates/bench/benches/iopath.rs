//! Criterion bench: the I/O path.
//!
//! Two-phase collective planning at paper scale (pure, extent-level)
//! and real two-phase execution against a small on-disk netCDF file.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvr_core::{write_dataset, FrameConfig, IoMode};
use pvr_formats::layout::{FileLayout, NetCdfClassicLayout};
use pvr_formats::Subvolume;
use pvr_pfs::twophase::{two_phase_execute, two_phase_plan, CollectiveHints, RankRequest};
use pvr_volume::BlockDecomposition;

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("twophase-plan");
    // Paper-scale plans: 1120^3 netCDF, one variable, various hints.
    let l = NetCdfClassicLayout::new([1120; 3], 5);
    let aggregate = l.extents(0, &Subvolume::whole([1120; 3]));
    for (name, hints) in [
        ("untuned-16MiB", CollectiveHints::default()),
        ("tuned-record", CollectiveHints::tuned(l.record_bytes())),
    ] {
        group.bench_with_input(BenchmarkId::new("1120cubed-2k", name), &hints, |b, h| {
            b.iter(|| two_phase_plan(&aggregate, 64, h))
        });
    }
    group.finish();
}

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("twophase-execute");
    group.sample_size(10);
    let mut cfg = FrameConfig::small(48, 32, 16);
    cfg.io = IoMode::NetCdfTuned;
    let dir = std::env::temp_dir().join("pvr-bench-io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.nc");
    write_dataset(&path, &cfg).unwrap();

    let layout = cfg.io.layout(cfg.grid);
    let decomp = BlockDecomposition::new(cfg.grid, cfg.nprocs);
    let requests: Vec<RankRequest> = decomp
        .blocks()
        .iter()
        .map(|blk| {
            let sub = decomp.with_ghost(blk, 1);
            let mut runs = Vec::new();
            layout.placed_runs(2, &sub, &mut |r| runs.push(r));
            RankRequest {
                runs,
                out_elems: sub.num_elements(),
            }
        })
        .collect();

    for (name, hints) in [
        ("untuned", CollectiveHints::default()),
        ("tuned", cfg.io.hints(cfg.grid)),
    ] {
        group.bench_function(format!("48cubed-16ranks-{name}"), |b| {
            b.iter(|| {
                let mut f = std::fs::File::open(&path).unwrap();
                two_phase_execute(&mut f, &requests, 4, &hints).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_planning, bench_execution
}
criterion_main!(benches);
