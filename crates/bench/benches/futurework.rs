//! Criterion bench: the future-work visualization algorithms —
//! particle tracing (serial + distributed) and marching-tetrahedra
//! isosurface extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvr_flow::parallel::trace_serial_sampled;
use pvr_flow::{trace_parallel, TracerOpts};
use pvr_render::isosurface::extract;
use pvr_volume::{SupernovaField, Volume};

fn vortex(p: [f32; 3]) -> [f32; 3] {
    [-(p[1] - 16.0) * 0.1 + 0.2, (p[0] - 16.0) * 0.1, 0.1]
}

fn bench_tracing(c: &mut Criterion) {
    let mut group = c.benchmark_group("particle-tracing");
    let grid = [32usize, 32, 32];
    let seeds: Vec<[f32; 3]> = (0..16)
        .map(|i| {
            let a = i as f32 / 16.0 * std::f32::consts::TAU;
            [16.0 + 8.0 * a.cos(), 16.0 + 8.0 * a.sin(), 16.0]
        })
        .collect();
    let opts = TracerOpts {
        h: 0.5,
        max_steps: 500,
        min_speed: 1e-7,
    };

    group.bench_function("serial-16-seeds", |b| {
        b.iter(|| trace_serial_sampled(grid, &seeds, &opts, vortex))
    });
    for ranks in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("distributed", ranks), &ranks, |b, &r| {
            b.iter(|| trace_parallel(grid, r, &seeds, &opts, vortex))
        });
    }
    group.finish();
}

fn bench_isosurface(c: &mut Criterion) {
    let mut group = c.benchmark_group("isosurface");
    for n in [32usize, 48] {
        let f = SupernovaField::new(1530).variable(1);
        let v = Volume::from_field(&f, [n, n, n]);
        group.bench_with_input(BenchmarkId::new("marching-tets", n), &n, |b, _| {
            b.iter(|| extract(&v, 0.45))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tracing, bench_isosurface
}
criterion_main!(benches);
