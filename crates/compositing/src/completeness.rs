//! Per-tile completeness of a degraded composite.
//!
//! When fragments are lost or arrive past the deadline, the deadline
//! compositors ([`crate::directsend::composite_direct_send_degraded`],
//! [`crate::radixk::composite_radix_k_degraded`]) blend whatever is
//! there and quantify the damage instead of hanging: each compositor
//! tile reports the fraction of its *expected* blended footprint area
//! that actually arrived (weighted by the sender's own data quality, so
//! an I/O-degraded renderer counts fractionally). A fully healthy run
//! reports 1.0 everywhere — and, by construction, the degraded
//! compositors then produce exactly the fault-free image.

use pvr_render::image::PixelRect;

/// Completeness of one compositor tile (or radix-k final span).
#[derive(Debug, Clone, PartialEq)]
pub struct TileCompleteness {
    /// Tile index (direct-send: partition cell; radix-k: process).
    pub tile: usize,
    /// The tile's pixel rectangle, when it is one (direct-send tiles;
    /// radix-k spans are row-major pixel ranges, reported as `None`).
    pub rect: Option<PixelRect>,
    /// Expected blended footprint area: the sum over *all* scheduled
    /// senders of their overlap with this tile, in pixels.
    pub expected: f64,
    /// The part of `expected` that arrived, each sender's overlap
    /// weighted by its data quality in [0, 1].
    pub arrived: f64,
}

impl TileCompleteness {
    /// Fraction of the expected footprint that was blended (1.0 when
    /// nothing was expected).
    pub fn fraction(&self) -> f64 {
        if self.expected <= 0.0 {
            1.0
        } else {
            (self.arrived / self.expected).clamp(0.0, 1.0)
        }
    }
}

/// Per-tile completeness of one composited frame.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompletenessMap {
    pub tiles: Vec<TileCompleteness>,
}

impl CompletenessMap {
    /// Expected-area-weighted completeness of the whole frame.
    pub fn frame_fraction(&self) -> f64 {
        let expected: f64 = self.tiles.iter().map(|t| t.expected).sum();
        if expected <= 0.0 {
            return 1.0;
        }
        let arrived: f64 = self.tiles.iter().map(|t| t.arrived).sum();
        (arrived / expected).clamp(0.0, 1.0)
    }

    /// The worst tile fraction (1.0 for an empty map).
    pub fn worst(&self) -> f64 {
        self.tiles
            .iter()
            .map(TileCompleteness::fraction)
            .fold(1.0, f64::min)
    }

    /// Tiles below full completeness (with an epsilon for float sums).
    pub fn degraded(&self) -> Vec<&TileCompleteness> {
        self.tiles
            .iter()
            .filter(|t| t.fraction() < 1.0 - 1e-9)
            .collect()
    }

    pub fn fully_complete(&self) -> bool {
        self.degraded().is_empty()
    }
}

/// Overlap, in pixels, of a footprint rectangle with the row-major
/// pixel span `[s, e)` of a `width`-wide image — the tile geometry of
/// radix-k.
pub fn span_overlap(rect: &PixelRect, span: (usize, usize), width: usize) -> usize {
    let (s, e) = span;
    let mut n = 0usize;
    for y in rect.y0..rect.y1() {
        let row_s = y * width + rect.x0;
        let row_e = row_s + rect.w;
        let lo = row_s.max(s);
        let hi = row_e.min(e);
        if lo < hi {
            n += hi - lo;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_frame_weighting() {
        let map = CompletenessMap {
            tiles: vec![
                TileCompleteness {
                    tile: 0,
                    rect: None,
                    expected: 100.0,
                    arrived: 100.0,
                },
                TileCompleteness {
                    tile: 1,
                    rect: None,
                    expected: 300.0,
                    arrived: 150.0,
                },
                TileCompleteness {
                    tile: 2,
                    rect: None,
                    expected: 0.0,
                    arrived: 0.0,
                },
            ],
        };
        assert_eq!(map.tiles[0].fraction(), 1.0);
        assert_eq!(map.tiles[1].fraction(), 0.5);
        assert_eq!(map.tiles[2].fraction(), 1.0);
        // (100 + 150) / 400, weighted — not the mean of fractions.
        assert!((map.frame_fraction() - 0.625).abs() < 1e-12);
        assert_eq!(map.worst(), 0.5);
        assert_eq!(map.degraded().len(), 1);
        assert!(!map.fully_complete());
        assert!(CompletenessMap::default().fully_complete());
    }

    #[test]
    fn span_overlap_counts_row_pieces() {
        // A 2x2 rect at (1,1) in a 4-wide image: pixels 5, 6, 9, 10.
        let r = PixelRect::new(1, 1, 2, 2);
        assert_eq!(span_overlap(&r, (0, 16), 4), 4);
        assert_eq!(span_overlap(&r, (0, 6), 4), 1);
        assert_eq!(span_overlap(&r, (6, 10), 4), 2);
        assert_eq!(span_overlap(&r, (11, 16), 4), 0);
    }
}
