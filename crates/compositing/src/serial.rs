//! Serial (gather-to-root) compositing: the correctness reference.
//!
//! Every subimage is shipped to one process, sorted front-to-back, and
//! blended with *over*. O(n) messages of full footprint size — the
//! baseline every parallel compositor must match pixel-for-pixel.

use pvr_render::image::{over, Image, SubImage};

/// Composite all subimages into a `width x height` image.
///
/// Subimages are blended in depth order (ties broken by input index, a
/// convention every compositor in this crate shares so results are
/// bit-comparable).
pub fn composite_serial(subs: &[SubImage], width: usize, height: usize) -> Image {
    let mut order: Vec<usize> = (0..subs.len()).collect();
    order.sort_by(|&a, &b| subs[a].depth.total_cmp(&subs[b].depth).then(a.cmp(&b)));

    let mut img = Image::new(width, height);
    for &i in &order {
        let s = &subs[i];
        for y in s.rect.y0..s.rect.y1().min(height) {
            for x in s.rect.x0..s.rect.x1().min(width) {
                let p = s.get(x, y);
                // Exactly transparent pixels are a bitwise no-op under
                // *over* (sparse-exchange invariant); skip them.
                if p == [0.0; 4] {
                    continue;
                }
                let acc = over(img.get(x, y), p);
                img.set(x, y, acc);
            }
        }
    }
    img
}

/// Visibility order of subimages (front first): depth, then index.
pub fn visibility_order(subs: &[SubImage]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..subs.len()).collect();
    order.sort_by(|&a, &b| subs[a].depth.total_cmp(&subs[b].depth).then(a.cmp(&b)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvr_render::image::PixelRect;

    fn solid(rect: PixelRect, rgba: [f32; 4], depth: f64) -> SubImage {
        let mut s = SubImage::transparent(rect, depth);
        s.pixels.fill(rgba);
        s
    }

    #[test]
    fn nearer_subimage_wins_when_opaque() {
        let a = solid(PixelRect::new(0, 0, 2, 2), [1.0, 0.0, 0.0, 1.0], 1.0);
        let b = solid(PixelRect::new(0, 0, 2, 2), [0.0, 1.0, 0.0, 1.0], 2.0);
        let img = composite_serial(&[b.clone(), a.clone()], 2, 2);
        assert_eq!(img.get(0, 0), [1.0, 0.0, 0.0, 1.0]);
        // Input order must not matter.
        let img2 = composite_serial(&[a, b], 2, 2);
        assert_eq!(img, img2);
    }

    #[test]
    fn semitransparent_blend() {
        let front = solid(PixelRect::new(0, 0, 1, 1), [0.5, 0.0, 0.0, 0.5], 0.0);
        let back = solid(PixelRect::new(0, 0, 1, 1), [0.0, 0.8, 0.0, 0.8], 1.0);
        let img = composite_serial(&[front, back], 1, 1);
        let p = img.get(0, 0);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!((p[1] - 0.4).abs() < 1e-6);
        assert!((p[3] - 0.9).abs() < 1e-6);
    }

    #[test]
    fn disjoint_subimages_paste_independently() {
        let a = solid(PixelRect::new(0, 0, 1, 1), [1.0, 0.0, 0.0, 1.0], 0.0);
        let b = solid(PixelRect::new(3, 3, 1, 1), [0.0, 0.0, 1.0, 1.0], 5.0);
        let img = composite_serial(&[a, b], 4, 4);
        assert_eq!(img.get(0, 0), [1.0, 0.0, 0.0, 1.0]);
        assert_eq!(img.get(3, 3), [0.0, 0.0, 1.0, 1.0]);
        assert_eq!(img.get(1, 1), [0.0; 4]);
    }

    #[test]
    fn equal_depth_ties_break_by_index() {
        let a = solid(PixelRect::new(0, 0, 1, 1), [1.0, 0.0, 0.0, 1.0], 1.0);
        let b = solid(PixelRect::new(0, 0, 1, 1), [0.0, 1.0, 0.0, 1.0], 1.0);
        let img = composite_serial(&[a, b], 1, 1);
        // Index 0 is treated as in front.
        assert_eq!(img.get(0, 0), [1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn empty_input_gives_transparent_image() {
        let img = composite_serial(&[], 3, 3);
        assert!(img.pixels().iter().all(|p| *p == [0.0; 4]));
    }
}
