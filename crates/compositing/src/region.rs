//! Image-region ownership for direct-send compositing.
//!
//! The final `W x H` image is split into a grid of `mx x my = m`
//! rectangular tiles, one per compositor. 2D tiles (rather than
//! scanline bands) are what gives direct-send its `O(n^{1/3})`
//! messages-per-compositor behaviour: with `m = n`, a block's square
//! screen footprint of area `A/n^{2/3}` overlaps about `n^{1/3}` tiles
//! of area `A/n` — the scaling the paper quotes.

use pvr_render::image::PixelRect;

/// Partition of a `width x height` image into an `mx x my` tile grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImagePartition {
    pub width: usize,
    pub height: usize,
    mx: usize,
    my: usize,
}

impl ImagePartition {
    /// Partition into exactly `m` tiles, factoring `m` into the
    /// near-squarest `mx x my` pair that fits the image (every tile is
    /// at least one pixel).
    pub fn new(width: usize, height: usize, m: usize) -> Self {
        assert!(m >= 1 && m <= width * height, "need 1 <= m <= pixels");
        let (mx, my) = Self::factor(width, height, m);
        ImagePartition {
            width,
            height,
            mx,
            my,
        }
    }

    /// Choose `mx * my == m` with tile aspect closest to square.
    fn factor(width: usize, height: usize, m: usize) -> (usize, usize) {
        let mut best = (m, 1);
        let mut best_score = f64::INFINITY;
        let mut d = 1;
        while d * d <= m {
            if m.is_multiple_of(d) {
                for (a, b) in [(d, m / d), (m / d, d)] {
                    if a <= width && b <= height {
                        // Tile aspect ratio distance from 1.
                        let tw = width as f64 / a as f64;
                        let th = height as f64 / b as f64;
                        let score = (tw / th).max(th / tw);
                        if score < best_score {
                            best_score = score;
                            best = (a, b);
                        }
                    }
                }
            }
            d += 1;
        }
        assert!(
            best.0 <= width && best.1 <= height,
            "cannot tile {width}x{height} into {m} regions"
        );
        best
    }

    pub fn num_pixels(&self) -> usize {
        self.width * self.height
    }

    /// Number of compositors (tiles).
    pub fn m(&self) -> usize {
        self.mx * self.my
    }

    /// Tile-grid dimensions.
    pub fn grid(&self) -> (usize, usize) {
        (self.mx, self.my)
    }

    /// The pixel rectangle owned by compositor `c`.
    pub fn tile(&self, c: usize) -> PixelRect {
        assert!(c < self.m());
        let ix = c % self.mx;
        let iy = c / self.mx;
        let x0 = ix * self.width / self.mx;
        let x1 = (ix + 1) * self.width / self.mx;
        let y0 = iy * self.height / self.my;
        let y1 = (iy + 1) * self.height / self.my;
        PixelRect::new(x0, y0, x1 - x0, y1 - y0)
    }

    /// Bytes of compositor `c`'s region on the wire.
    pub fn tile_bytes(&self, c: usize) -> u64 {
        self.tile(c).num_pixels() as u64 * crate::WIRE_BYTES_PER_PIXEL
    }

    /// The compositor owning pixel `(x, y)`.
    pub fn owner_of(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        let find = |v: usize, n: usize, cells: usize| -> usize {
            // Largest i with i*n/cells <= v.
            let mut i = (v * cells) / n;
            while (i + 1) * n / cells <= v {
                i += 1;
            }
            while i * n / cells > v {
                i -= 1;
            }
            i
        };
        let ix = find(x, self.width, self.mx);
        let iy = find(y, self.height, self.my);
        iy * self.mx + ix
    }

    /// The distinct compositors whose tiles overlap `rect`, with the
    /// overlap size in pixels, in compositor order.
    pub fn overlaps(&self, rect: &PixelRect) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        if rect.is_empty() {
            return out;
        }
        let c0 = self.owner_of(rect.x0, rect.y0);
        let c1 = self.owner_of(rect.x1() - 1, rect.y1() - 1);
        let (ix0, iy0) = (c0 % self.mx, c0 / self.mx);
        let (ix1, iy1) = (c1 % self.mx, c1 / self.mx);
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                let c = iy * self.mx + ix;
                if let Some(ov) = self.tile(c).intersect(rect) {
                    out.push((c, ov.num_pixels()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_partition_the_image() {
        for m in [1usize, 3, 7, 64, 100] {
            let p = ImagePartition::new(40, 25, m);
            assert_eq!(p.m(), m);
            let total: usize = (0..m).map(|c| p.tile(c).num_pixels()).sum();
            assert_eq!(total, 1000, "m={m}");
            // Tiles are disjoint: every pixel has exactly one owner.
            for y in 0..25 {
                for x in 0..40 {
                    let c = p.owner_of(x, y);
                    assert!(p.tile(c).contains(x, y), "pixel ({x},{y}) owner {c}");
                }
            }
        }
    }

    #[test]
    fn factor_prefers_square_tiles() {
        let p = ImagePartition::new(256, 256, 64);
        assert_eq!(p.grid(), (8, 8));
        let p = ImagePartition::new(512, 128, 32);
        let (mx, my) = p.grid();
        assert!(mx > my, "wide image should split more in x: {mx}x{my}");
    }

    #[test]
    fn overlaps_count_every_rect_pixel_once() {
        let p = ImagePartition::new(64, 64, 36);
        let rect = PixelRect::new(5, 10, 40, 30);
        let ov = p.overlaps(&rect);
        let total: usize = ov.iter().map(|(_, n)| n).sum();
        assert_eq!(total, rect.num_pixels());
        let mut cs: Vec<usize> = ov.iter().map(|(c, _)| *c).collect();
        cs.sort_unstable();
        cs.dedup();
        assert_eq!(cs.len(), ov.len());
    }

    #[test]
    fn full_image_rect_touches_all_compositors() {
        let p = ImagePartition::new(16, 16, 8);
        let ov = p.overlaps(&PixelRect::new(0, 0, 16, 16));
        assert_eq!(ov.len(), 8);
        for (c, n) in ov {
            assert_eq!(n, p.tile(c).num_pixels());
        }
    }

    #[test]
    fn footprint_overlap_scales_like_cube_root() {
        // m = n = 4096 on 1600^2: tiles 25x25 px; a 1600/16=100 px
        // square footprint overlaps ~(100/25+1)^2 = 25 tiles ~ n^{1/3}.
        let p = ImagePartition::new(1600, 1600, 4096);
        let ov = p.overlaps(&PixelRect::new(703, 703, 100, 100));
        assert!(ov.len() >= 16 && ov.len() <= 36, "overlaps {}", ov.len());
    }

    #[test]
    #[should_panic(expected = "need 1 <= m")]
    fn zero_compositors_panics() {
        ImagePartition::new(8, 8, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn overlap_counts_match_brute_force(
            w in 4usize..48, h in 4usize..48, m in 1usize..40,
            rx in 0usize..16, ry in 0usize..16, rw in 1usize..24, rh in 1usize..24,
        ) {
            prop_assume!(rx + rw <= w && ry + rh <= h);
            // A prime m must fit as a 1 x m (or m x 1) grid.
            prop_assume!(m <= h || m <= w);
            let p = ImagePartition::new(w, h, m);
            let rect = PixelRect::new(rx, ry, rw, rh);
            let ov = p.overlaps(&rect);
            let mut brute = std::collections::BTreeMap::new();
            for y in ry..ry + rh {
                for x in rx..rx + rw {
                    *brute.entry(p.owner_of(x, y)).or_insert(0usize) += 1;
                }
            }
            let got: std::collections::BTreeMap<usize, usize> = ov.into_iter().collect();
            prop_assert_eq!(got, brute);
        }

        #[test]
        fn tiles_are_an_exact_partition(w in 4usize..64, h in 4usize..64, m in 1usize..32) {
            prop_assume!(m <= h || m <= w);
            let p = ImagePartition::new(w, h, m);
            let total: usize = (0..p.m()).map(|c| p.tile(c).num_pixels()).sum();
            prop_assert_eq!(total, w * h);
        }
    }
}
