//! # pvr-compositing — sort-last image compositing
//!
//! The last stage of the paper's pipeline: reduce the `n` per-block
//! subimages into one final image. The paper's contribution here is the
//! observation that in **direct-send** compositing the number of
//! compositors `m` need not equal the number of renderers `n`: limiting
//! `m` (1K compositors for n ≤ 4K, 2K beyond) keeps per-message payloads
//! large enough to stay on the fat part of the network's
//! bandwidth-vs-message-size curve, cutting 32K-core compositing time
//! ~30x.
//!
//! * [`region`] — image-region ownership: the final image is split into
//!   `m` equal spans of row-major pixels, one per compositor.
//! * [`schedule`] — the direct-send message schedule computed from block
//!   footprints alone (no pixel data), used both to drive the real
//!   exchange and to feed the network simulator at paper scale.
//! * [`directsend`] — the real direct-send compositor (any `m ≤ n`).
//! * [`late`] — late-arrival tile assembly: first-wins dedup and
//!   re-open/re-blend semantics for fragments adopted after a fault.
//! * [`binaryswap`] — the classic binary-swap compositor (power-of-two
//!   `n`), the standard alternative the paper cites (Ma et al.).
//! * [`radixk`] — radix-k compositing, the authors' follow-on algorithm
//!   that generalizes both (direct-send = one round of radix n, binary
//!   swap = rounds of radix 2).
//! * [`serial`] — gather-to-root compositing: the ground truth.
//!
//! All compositors produce the same image (to f32 tolerance) on the same
//! input — the integration tests assert it — because *over* is
//! associative and every algorithm preserves front-to-back order.

pub mod binaryswap;
pub mod completeness;
pub mod directsend;
pub mod late;
pub mod radixk;
pub mod region;
pub mod schedule;
pub mod serial;
pub mod sparse;

pub use completeness::{CompletenessMap, TileCompleteness};
pub use directsend::{
    blend_fragments, composite_direct_send, composite_direct_send_degraded,
    composite_direct_send_traced,
};
pub use late::{InsertOutcome, TileAssembly};
pub use radixk::{composite_radix_k, composite_radix_k_degraded};
pub use region::ImagePartition;
pub use schedule::{build_schedule, CompositeMessage, Schedule};
pub use serial::composite_serial;
pub use sparse::{piece_wire_bytes, SparseSubImage};

/// Bytes per pixel on the compositing wire (RGBA8, as in the paper:
/// a 1600² image over 256 compositors is 40 KB per region message).
pub const WIRE_BYTES_PER_PIXEL: u64 = 4;

/// Sparse encoding: per-row span-count header (one word).
pub const WIRE_BYTES_PER_ROW: u64 = 4;

/// Sparse encoding: per-span header (start offset + length).
pub const WIRE_BYTES_PER_SPAN: u64 = 8;

/// The paper's compositor-count policy: direct-send with `m = n` up to
/// 1K renderers, 1K compositors for 1K < n ≤ 4K, 2K compositors beyond
/// ("we used 1K compositors when the number of renderers is between 1K
/// and 4K and then 2K compositors beyond that").
pub fn improved_compositor_count(renderers: usize) -> usize {
    if renderers <= 1024 {
        renderers
    } else if renderers <= 4096 {
        1024
    } else {
        2048
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compositor_policy_matches_paper() {
        assert_eq!(improved_compositor_count(64), 64);
        assert_eq!(improved_compositor_count(1024), 1024);
        assert_eq!(improved_compositor_count(2048), 1024);
        assert_eq!(improved_compositor_count(4096), 1024);
        assert_eq!(improved_compositor_count(8192), 2048);
        assert_eq!(improved_compositor_count(32768), 2048);
    }
}
