//! Late-arrival tile assembly: the compositing-side half of orphan
//! adoption.
//!
//! A fault-tolerant compositor no longer blends fragments as a closed
//! batch: a renderer may die and its fragment may arrive *late*, re-sent
//! by an adopting survivor, possibly more than once (a hedged duplicate
//! racing the straggling original). [`TileAssembly`] owns one tile's
//! open epoch:
//!
//! * **first-wins dedup** by renderer id — whichever copy of a block's
//!   fragment lands first is kept; the loser is counted, not blended.
//!   Adoption re-renders are deterministic, so either copy produces the
//!   same pixels and the race cannot affect the image.
//! * **re-open on late arrival** — sealing blends the fragments in the
//!   canonical `(depth, renderer)` order of [`blend_fragments`]; a
//!   fragment inserted after a seal invalidates the cached blend and
//!   the next seal re-blends from scratch. Sealing early and sealing
//!   late are therefore bit-identical, which is what lets a recovered
//!   frame match the fault-free run exactly.

use pvr_render::image::{PixelRect, SubImage};

use crate::directsend::blend_fragments;

/// Outcome of offering a fragment to an open tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// First copy for this renderer: accepted and will be blended.
    Fresh,
    /// A copy for this renderer already arrived; this one is discarded
    /// (first-wins).
    Duplicate,
    /// The renderer is not expected on this tile; discarded.
    Unexpected,
}

/// One compositor tile's open late-arrival epoch.
#[derive(Debug)]
pub struct TileAssembly {
    tile: usize,
    rect: PixelRect,
    /// `(renderer, expected_pixels)` per scheduled fragment.
    expected: Vec<(usize, f64)>,
    /// Arrived fragments: `(renderer, quality, pixels)`.
    frags: Vec<(usize, f64, SubImage)>,
    /// Renderers that explicitly refused (budget-exhausted adopter):
    /// stop waiting for them, count them absent.
    refused: Vec<usize>,
    sealed: Option<SubImage>,
    pub duplicates: u64,
}

impl TileAssembly {
    pub fn new(tile: usize, rect: PixelRect, expected: Vec<(usize, f64)>) -> TileAssembly {
        TileAssembly {
            tile,
            rect,
            expected,
            frags: Vec::new(),
            refused: Vec::new(),
            sealed: None,
            duplicates: 0,
        }
    }

    pub fn tile(&self) -> usize {
        self.tile
    }

    pub fn rect(&self) -> PixelRect {
        self.rect
    }

    /// Offer a fragment (already cropped to the tile rect). Re-opens a
    /// sealed tile when the fragment is fresh.
    pub fn insert(&mut self, renderer: usize, quality: f64, frag: SubImage) -> InsertOutcome {
        if !self.expected.iter().any(|(r, _)| *r == renderer) {
            return InsertOutcome::Unexpected;
        }
        if self.frags.iter().any(|(r, _, _)| *r == renderer) {
            self.duplicates += 1;
            return InsertOutcome::Duplicate;
        }
        self.refused.retain(|r| *r != renderer);
        self.frags.push((renderer, quality, frag));
        self.sealed = None;
        InsertOutcome::Fresh
    }

    /// Record that `renderer`'s fragment will never arrive (its adopter
    /// ran out of budget): the tile stops waiting for it.
    pub fn refuse(&mut self, renderer: usize) {
        if self.frags.iter().any(|(r, _, _)| *r == renderer) {
            return;
        }
        if !self.refused.contains(&renderer) {
            self.refused.push(renderer);
        }
    }

    /// Renderers still outstanding: expected, not arrived, not refused.
    pub fn missing(&self) -> Vec<usize> {
        self.expected
            .iter()
            .map(|(r, _)| *r)
            .filter(|r| !self.frags.iter().any(|(fr, _, _)| fr == r) && !self.refused.contains(r))
            .collect()
    }

    /// True when nothing is outstanding (every expected fragment either
    /// arrived or was refused).
    pub fn settled(&self) -> bool {
        self.missing().is_empty()
    }

    /// Expected blended area of the tile.
    pub fn expected_area(&self) -> f64 {
        self.expected.iter().map(|(_, px)| *px).sum()
    }

    /// Blended area that actually arrived, quality-weighted.
    pub fn arrived_area(&self) -> f64 {
        self.frags
            .iter()
            .map(|(r, q, _)| {
                let px = self
                    .expected
                    .iter()
                    .find(|(er, _)| er == r)
                    .map(|(_, px)| *px)
                    .unwrap_or(0.0);
                px * q.clamp(0.0, 1.0)
            })
            .sum()
    }

    /// Blend whatever has arrived, in the canonical order. Cached until
    /// the next fresh insert re-opens the tile.
    pub fn seal(&mut self) -> &SubImage {
        if self.sealed.is_none() {
            let frags: Vec<(usize, SubImage)> =
                self.frags.iter().map(|(r, _, f)| (*r, f.clone())).collect();
            self.sealed = Some(blend_fragments(self.rect, frags));
        }
        self.sealed.as_ref().expect("just sealed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(renderer: usize, rect: PixelRect, depth: f64, v: f32) -> SubImage {
        let mut s = SubImage::transparent(rect, depth);
        for p in &mut s.pixels {
            *p = [v, v, v, 0.5];
        }
        let _ = renderer;
        s
    }

    fn rect() -> PixelRect {
        PixelRect::new(0, 0, 4, 2)
    }

    #[test]
    fn seal_reopen_late_equals_one_shot_blend() {
        let expected = vec![(0usize, 8.0f64), (1, 8.0), (2, 8.0)];
        // One-shot: all three fragments up front.
        let mut oneshot = TileAssembly::new(0, rect(), expected.clone());
        for r in 0..3usize {
            oneshot.insert(r, 1.0, frag(r, rect(), r as f64, 0.1 + r as f32 * 0.2));
        }
        let want = oneshot.seal().pixels.clone();

        // Incremental: seal early, then a late arrival re-opens.
        let mut inc = TileAssembly::new(0, rect(), expected);
        inc.insert(0, 1.0, frag(0, rect(), 0.0, 0.1));
        inc.insert(2, 1.0, frag(2, rect(), 2.0, 0.5));
        let early = inc.seal().pixels.clone();
        assert_ne!(early, want, "partial blend must differ");
        assert_eq!(inc.missing(), vec![1]);
        // Late fragment arrives out of depth order; canonical re-blend
        // restores bit-identity.
        assert_eq!(
            inc.insert(1, 1.0, frag(1, rect(), 1.0, 0.3)),
            InsertOutcome::Fresh
        );
        assert!(inc.settled());
        assert_eq!(inc.seal().pixels, want);
    }

    #[test]
    fn first_wins_dedup_and_unexpected_rejection() {
        let mut t = TileAssembly::new(3, rect(), vec![(5, 8.0), (7, 8.0)]);
        assert_eq!(
            t.insert(5, 1.0, frag(5, rect(), 0.0, 0.2)),
            InsertOutcome::Fresh
        );
        // A hedged duplicate (identical by construction) is discarded.
        assert_eq!(
            t.insert(5, 1.0, frag(5, rect(), 0.0, 0.2)),
            InsertOutcome::Duplicate
        );
        assert_eq!(t.duplicates, 1);
        assert_eq!(
            t.insert(9, 1.0, frag(9, rect(), 0.0, 0.9)),
            InsertOutcome::Unexpected
        );
        assert_eq!(t.missing(), vec![7]);
        assert!(!t.settled());
    }

    #[test]
    fn refusal_settles_without_content_and_loses_to_a_real_fragment() {
        let mut t = TileAssembly::new(0, rect(), vec![(1, 8.0), (2, 8.0)]);
        t.insert(1, 1.0, frag(1, rect(), 0.0, 0.2));
        t.refuse(2);
        assert!(t.settled());
        assert_eq!(t.expected_area(), 16.0);
        assert_eq!(t.arrived_area(), 8.0);
        // The straggling original still lands if it makes it after all.
        assert_eq!(
            t.insert(2, 1.0, frag(2, rect(), 1.0, 0.4)),
            InsertOutcome::Fresh
        );
        assert_eq!(t.arrived_area(), 16.0);
    }

    #[test]
    fn quality_weights_arrived_area() {
        let mut t = TileAssembly::new(0, rect(), vec![(1, 10.0)]);
        t.insert(1, 0.5, frag(1, rect(), 0.0, 0.2));
        assert_eq!(t.arrived_area(), 5.0);
    }
}
