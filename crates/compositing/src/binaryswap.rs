//! Binary-swap compositing (Ma, Painter, Hansen, Krogh) — the classic
//! tree-structured alternative the paper's background section reviews.
//!
//! `n` processes (power of two), `log2 n` rounds. In round `r` each
//! process pairs with `rank ^ 2^r`, splits its current image region in
//! half, sends one half and blends the half it receives; after the last
//! round each process owns a fully composited `1/n` of the image.
//! Processes are relabeled in visibility order first, so every pairwise
//! blend combines two *contiguous* depth groups and associativity of
//! *over* yields the exact serial result.

use pvr_render::image::{over, Image, SubImage};

use crate::serial::visibility_order;
use crate::WIRE_BYTES_PER_PIXEL;

/// Statistics of one binary-swap execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinarySwapStats {
    pub rounds: usize,
    pub messages: usize,
    pub bytes: u64,
}

/// A process's working state: a span `[s, e)` of row-major pixels and
/// the blended colors over that span.
struct ProcState {
    span: (usize, usize),
    buf: Vec<[f32; 4]>,
}

/// Rasterize one subimage's contribution over a pixel span.
fn rasterize(sub: &SubImage, span: (usize, usize), width: usize) -> Vec<[f32; 4]> {
    let mut buf = vec![[0.0f32; 4]; span.1 - span.0];
    for y in sub.rect.y0..sub.rect.y1() {
        let row_s = y * width + sub.rect.x0;
        let row_e = row_s + sub.rect.w;
        let lo = row_s.max(span.0);
        let hi = row_e.min(span.1);
        for idx in lo..hi {
            buf[idx - span.0] = sub.get(idx - y * width, y);
        }
    }
    buf
}

/// Composite by binary swap. `subs.len()` must be a power of two.
pub fn composite_binary_swap(
    subs: &[SubImage],
    width: usize,
    height: usize,
) -> (Image, BinarySwapStats) {
    let n = subs.len();
    assert!(
        n.is_power_of_two(),
        "binary swap needs a power-of-two process count, got {n}"
    );
    let rounds = n.trailing_zeros() as usize;
    let total = width * height;

    // Relabel in visibility order: v-rank 0 is nearest the viewer.
    let order = visibility_order(subs);

    let mut procs: Vec<ProcState> = order
        .iter()
        .map(|&i| ProcState {
            span: (0, total),
            buf: rasterize(&subs[i], (0, total), width),
        })
        .collect();

    let mut stats = BinarySwapStats {
        rounds,
        messages: 0,
        bytes: 0,
    };

    for r in 0..rounds {
        let bit = 1usize << r;
        // Snapshot the halves each process sends, then apply receives.
        // (destination, sent span, pixel data)
        type Outgoing = (usize, (usize, usize), Vec<[f32; 4]>);
        let mut outgoing: Vec<Outgoing> = Vec::with_capacity(n);
        for (rank, p) in procs.iter().enumerate() {
            let partner = rank ^ bit;
            let (s, e) = p.span;
            let mid = (s + e) / 2;
            // The lower-ranked member of the pair keeps the low half.
            let keeps_low = rank & bit == 0;
            let send_span = if keeps_low { (mid, e) } else { (s, mid) };
            let buf = p.buf[send_span.0 - s..send_span.1 - s].to_vec();
            outgoing.push((partner, send_span, buf));
            stats.messages += 1;
            stats.bytes += (send_span.1 - send_span.0) as u64 * WIRE_BYTES_PER_PIXEL;
        }
        // Shrink to kept half, then blend the received half.
        for (rank, p) in procs.iter_mut().enumerate() {
            let (s, e) = p.span;
            let mid = (s + e) / 2;
            let keeps_low = rank & bit == 0;
            let kept = if keeps_low { (s, mid) } else { (mid, e) };
            let buf = if keeps_low {
                p.buf.truncate(mid - s);
                std::mem::take(&mut p.buf)
            } else {
                p.buf.split_off(mid - s)
            };
            p.span = kept;
            p.buf = buf;
        }
        for (to, span, data) in outgoing {
            let p = &mut procs[to];
            debug_assert_eq!(p.span, span);
            // The sender whose v-rank is lower is in front.
            let from = to ^ bit;
            let front_is_received = from < to;
            for (k, recv) in data.into_iter().enumerate() {
                p.buf[k] = if front_is_received {
                    over(recv, p.buf[k])
                } else {
                    over(p.buf[k], recv)
                };
            }
        }
    }

    // Gather: each process owns a disjoint 1/n of the image.
    let mut img = Image::new(width, height);
    for p in &procs {
        for (k, &px) in p.buf.iter().enumerate() {
            let idx = p.span.0 + k;
            img.set(idx % width, idx / width, px);
        }
    }
    (img, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite_serial;
    use pvr_render::image::PixelRect;

    fn random_subs(seed: u64, n: usize, w: usize, h: usize) -> Vec<SubImage> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = move |m: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m.max(1)
        };
        (0..n)
            .map(|_| {
                let x0 = next(w - 2);
                let y0 = next(h - 2);
                let rw = 1 + next(w - x0 - 1);
                let rh = 1 + next(h - y0 - 1);
                let mut s =
                    SubImage::transparent(PixelRect::new(x0, y0, rw, rh), next(1000) as f64);
                for p in s.pixels.iter_mut() {
                    *p = [
                        next(100) as f32 / 200.0,
                        next(100) as f32 / 200.0,
                        next(100) as f32 / 200.0,
                        next(100) as f32 / 160.0,
                    ];
                }
                s
            })
            .collect()
    }

    #[test]
    fn matches_serial() {
        for n in [1usize, 2, 4, 8, 16, 32] {
            let subs = random_subs(n as u64, n, 24, 24);
            let reference = composite_serial(&subs, 24, 24);
            let (img, stats) = composite_binary_swap(&subs, 24, 24);
            let d = img.max_abs_diff(&reference);
            assert!(d < 1e-5, "n={n}: max diff {d}");
            assert_eq!(stats.rounds, n.trailing_zeros() as usize);
            assert_eq!(stats.messages, n * stats.rounds);
        }
    }

    #[test]
    fn bytes_halve_each_round() {
        // Total bytes = n * sum_r (WH/2^{r+1}) * 4 = 4*WH*(n-1).
        let n = 8;
        let subs = random_subs(5, n, 16, 16);
        let (_, stats) = composite_binary_swap(&subs, 16, 16);
        let wh = 16 * 16_u64;
        assert_eq!(stats.bytes, 4 * wh * (n as u64 - 1));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        let subs = random_subs(1, 3, 8, 8);
        composite_binary_swap(&subs, 8, 8);
    }

    #[test]
    fn single_process_is_identity() {
        let subs = random_subs(2, 1, 8, 8);
        let (img, stats) = composite_binary_swap(&subs, 8, 8);
        assert_eq!(stats.messages, 0);
        let reference = composite_serial(&subs, 8, 8);
        assert_eq!(img.max_abs_diff(&reference), 0.0);
    }
}
