//! Radix-k compositing — the generalization of binary swap and
//! direct-send that this paper's authors published as follow-on work
//! (Peterka, Goodell, Ross, Shen, Thakur: "A configurable algorithm for
//! parallel image-compositing applications", SC'09). Implemented here
//! as the natural "future work" extension of the paper's compositing
//! study.
//!
//! The `n` processes are factored into rounds `k = [k_1, k_2, ...]`
//! with `k_1 * k_2 * ... = n`. In round `i` the processes split into
//! groups of `k_i` partners; each group divides its current image
//! region into `k_i` pieces and runs a direct-send within the group, so
//! every partner ends the round owning `1/k_i` of its previous region,
//! fully composited within the group.
//!
//! * `k = [n]`       → one round of pure direct-send (m = n)
//! * `k = [2,2,...]` → binary swap
//! * intermediate factorizations trade message count against rounds —
//!   the knob the follow-on paper tunes per interconnect.
//!
//! As everywhere in this crate, processes are relabeled in visibility
//! order first, so each pairwise blend combines contiguous depth groups
//! and associativity of *over* gives the exact serial image.

use pvr_render::image::{over, Image, SubImage};

use crate::serial::visibility_order;
use crate::WIRE_BYTES_PER_PIXEL;

/// Statistics of one radix-k execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RadixKStats {
    /// The factorization actually used.
    pub radices: Vec<usize>,
    pub messages: usize,
    pub bytes: u64,
}

/// Factor `n` into the given radices, checking the product.
fn check_radices(n: usize, radices: &[usize]) -> Result<(), String> {
    let prod: usize = radices.iter().product();
    if prod != n {
        return Err(format!("radices {radices:?} multiply to {prod}, need {n}"));
    }
    if radices.iter().any(|&k| k < 2) {
        return Err("every radix must be >= 2".into());
    }
    Ok(())
}

/// A standard factorization: repeatedly pull the largest prime factor,
/// largest first (good default per the radix-k paper for tori).
pub fn default_radices(n: usize) -> Vec<usize> {
    assert!(n >= 1);
    let mut out = Vec::new();
    let mut m = n;
    let mut p = 2;
    while p * p <= m {
        while m.is_multiple_of(p) {
            out.push(p);
            m /= p;
        }
        p += 1;
    }
    if m > 1 {
        out.push(m);
    }
    out.sort_unstable_by(|a, b| b.cmp(a));
    out
}

/// One message of a radix-k round (no pixel data — for pricing the
/// algorithm on the machine model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundMessage {
    pub from: usize,
    pub to: usize,
    pub bytes: u64,
}

/// The communication schedule of radix-k over an image of
/// `image_pixels`, round by round, computed with the same span
/// arithmetic the real compositor uses. Rank indices are v-ranks.
pub fn radix_k_schedule(
    n: usize,
    image_pixels: usize,
    radices: &[usize],
) -> Vec<Vec<RoundMessage>> {
    check_radices(n, radices).unwrap_or_else(|e| panic!("{e}"));
    let mut spans: Vec<(usize, usize)> = vec![(0, image_pixels); n];
    let mut rounds = Vec::with_capacity(radices.len());
    let mut g_prev = 1usize;
    for &k in radices {
        let g = g_prev * k;
        let mut msgs = Vec::new();
        for (rank, &(s, e)) in spans.iter().enumerate() {
            let within = rank % g;
            let member = within / g_prev;
            let lane_base = rank - within + (within % g_prev);
            let len = e - s;
            for j in 0..k {
                if j == member {
                    continue;
                }
                let p0 = s + len * j / k;
                let p1 = s + len * (j + 1) / k;
                msgs.push(RoundMessage {
                    from: rank,
                    to: lane_base + j * g_prev,
                    bytes: (p1 - p0) as u64 * WIRE_BYTES_PER_PIXEL,
                });
            }
        }
        for (rank, span) in spans.iter_mut().enumerate() {
            let member = (rank % g) / g_prev;
            let (s, e) = *span;
            let len = e - s;
            *span = (s + len * member / k, s + len * (member + 1) / k);
        }
        rounds.push(msgs);
        g_prev = g;
    }
    rounds
}

/// One process's working state.
struct ProcState {
    span: (usize, usize),
    buf: Vec<[f32; 4]>,
}

fn rasterize(sub: &SubImage, span: (usize, usize), width: usize) -> Vec<[f32; 4]> {
    let mut buf = vec![[0.0f32; 4]; span.1 - span.0];
    for y in sub.rect.y0..sub.rect.y1() {
        let row_s = y * width + sub.rect.x0;
        let row_e = row_s + sub.rect.w;
        let lo = row_s.max(span.0);
        let hi = row_e.min(span.1);
        for idx in lo..hi {
            buf[idx - span.0] = sub.get(idx - y * width, y);
        }
    }
    buf
}

/// Composite by radix-k with the given round factorization
/// (`radices.iter().product() == subs.len()`), or the default
/// factorization when `radices` is `None`.
pub fn composite_radix_k(
    subs: &[SubImage],
    width: usize,
    height: usize,
    radices: Option<&[usize]>,
) -> (Image, RadixKStats) {
    let n = subs.len();
    assert!(n >= 1);
    let radices: Vec<usize> = match radices {
        Some(r) => {
            check_radices(n, r).unwrap_or_else(|e| panic!("{e}"));
            r.to_vec()
        }
        None => default_radices(n),
    };
    let total = width * height;

    // Relabel in visibility order (v-rank 0 nearest the viewer).
    let order = visibility_order(subs);
    let mut procs: Vec<ProcState> = order
        .iter()
        .map(|&i| ProcState {
            span: (0, total),
            buf: rasterize(&subs[i], (0, total), width),
        })
        .collect();

    let mut stats = RadixKStats {
        radices: radices.clone(),
        messages: 0,
        bytes: 0,
    };

    // Rounds merge *adjacent* v-rank blocks first (exactly like binary
    // swap's lowest-bit-first pairing): after round i, every process's
    // buffer holds the fully composited content of a contiguous block
    // of g_i = k_1*...*k_i v-ranks, so the next round again blends
    // contiguous depth groups and associativity of `over` suffices.
    let mut g_prev = 1usize;
    for &k in &radices {
        let g = g_prev * k;
        // Collect the pieces to deliver after the whole round's sends
        // are "posted" (direct-send within each group).
        struct Delivery {
            to: usize,
            from_vrank: usize,
            piece: (usize, usize),
            data: Vec<[f32; 4]>,
        }
        let mut deliveries: Vec<Delivery> = Vec::new();

        for (rank, p) in procs.iter().enumerate() {
            let within = rank % g;
            let member = within / g_prev; // 0..k
            let lane_base = rank - within + (within % g_prev);
            let (s, e) = p.span;
            let len = e - s;
            // Partition my current span into k pieces; piece j goes to
            // the partner with member index j (same lane).
            for j in 0..k {
                let p0 = s + len * j / k;
                let p1 = s + len * (j + 1) / k;
                if j == member {
                    continue; // my own piece stays
                }
                let to = lane_base + j * g_prev;
                let data = p.buf[p0 - s..p1 - s].to_vec();
                stats.messages += 1;
                stats.bytes += (p1 - p0) as u64 * WIRE_BYTES_PER_PIXEL;
                deliveries.push(Delivery {
                    to,
                    from_vrank: rank,
                    piece: (p0, p1),
                    data,
                });
            }
        }

        // Shrink every process to its kept piece.
        for (rank, p) in procs.iter_mut().enumerate() {
            let member = (rank % g) / g_prev;
            let (s, e) = p.span;
            let len = e - s;
            let p0 = s + len * member / k;
            let p1 = s + len * (member + 1) / k;
            let kept: Vec<[f32; 4]> = p.buf[p0 - s..p1 - s].to_vec();
            p.span = (p0, p1);
            p.buf = kept;
        }

        // Blend incoming pieces. Within a group, the member with the
        // smaller v-rank is in front; blends must respect that order,
        // so sort deliveries per receiver by sender v-rank and fold
        // with the receiver inserted at its own position.
        let mut per_recv: Vec<Vec<Delivery>> = (0..n).map(|_| Vec::new()).collect();
        for d in deliveries {
            per_recv[d.to].push(d);
        }
        for (rank, mut incoming) in per_recv.into_iter().enumerate() {
            if incoming.is_empty() {
                continue;
            }
            incoming.sort_by_key(|d| d.from_vrank);
            let (s, e) = procs[rank].span;
            debug_assert!(incoming.iter().all(|d| d.piece == (s, e)));
            // Fold front-to-back: senders with v-rank < mine are in
            // front of my buffer; the rest behind.
            let mut acc = vec![[0.0f32; 4]; e - s];
            let mut own_done = false;
            for d in &incoming {
                if !own_done && d.from_vrank > rank {
                    for (a, b) in acc.iter_mut().zip(&procs[rank].buf) {
                        *a = over(*a, *b);
                    }
                    own_done = true;
                }
                for (a, b) in acc.iter_mut().zip(&d.data) {
                    *a = over(*a, *b);
                }
            }
            if !own_done {
                for (a, b) in acc.iter_mut().zip(&procs[rank].buf) {
                    *a = over(*a, *b);
                }
            }
            procs[rank].buf = acc;
        }

        g_prev = g;
    }

    // Gather: all spans are disjoint and cover the image.
    let mut img = Image::new(width, height);
    for p in &procs {
        for (i, &px) in p.buf.iter().enumerate() {
            let idx = p.span.0 + i;
            img.set(idx % width, idx / width, px);
        }
    }
    (img, stats)
}

/// The final row-major pixel span each process owns after all rounds —
/// the "tiles" of radix-k, derived with the same span arithmetic the
/// compositor and [`radix_k_schedule`] use.
pub fn final_spans(n: usize, image_pixels: usize, radices: &[usize]) -> Vec<(usize, usize)> {
    check_radices(n, radices).unwrap_or_else(|e| panic!("{e}"));
    let mut spans: Vec<(usize, usize)> = vec![(0, image_pixels); n];
    let mut g_prev = 1usize;
    for &k in radices {
        let g = g_prev * k;
        for (rank, span) in spans.iter_mut().enumerate() {
            let member = (rank % g) / g_prev;
            let (s, e) = *span;
            let len = e - s;
            *span = (s + len * member / k, s + len * (member + 1) / k);
        }
        g_prev = g;
    }
    spans
}

/// Deadline-mode radix-k: composite with absent processes' fragments
/// treated as fully transparent (a lost input contributes nothing at
/// any round, so every downstream exchange still lines up and the run
/// terminates), reporting per-final-span completeness. `present[i]`
/// refers to renderer `i`'s input subimage, `quality`-weighted as in
/// [`crate::directsend::composite_direct_send_degraded`]. With all
/// inputs present at quality 1.0 the image is bit-identical to
/// [`composite_radix_k`].
pub fn composite_radix_k_degraded(
    subs: &[SubImage],
    width: usize,
    height: usize,
    radices: Option<&[usize]>,
    present: &[Option<f64>],
) -> (Image, RadixKStats, crate::completeness::CompletenessMap) {
    use crate::completeness::{span_overlap, CompletenessMap, TileCompleteness};
    assert_eq!(subs.len(), present.len());
    let n = subs.len();
    assert!(n >= 1);
    let radices_v: Vec<usize> = match radices {
        Some(r) => r.to_vec(),
        None => default_radices(n),
    };

    // Absent inputs become transparent placeholders with the same
    // footprint and depth, so the visibility relabeling — and with it
    // the whole round structure — is unchanged from the healthy run.
    let effective: Vec<SubImage> = subs
        .iter()
        .zip(present)
        .map(|(s, p)| {
            if p.is_some() {
                s.clone()
            } else {
                SubImage::transparent(s.rect, s.depth)
            }
        })
        .collect();
    let (img, stats) = composite_radix_k(&effective, width, height, Some(&radices_v));

    // Completeness per final span: every input's footprint overlap with
    // the span is expected; present inputs contribute quality-weighted.
    let spans = final_spans(n, width * height, &radices_v);
    let order = visibility_order(subs);
    let mut map = CompletenessMap::default();
    for (proc_idx, &span) in spans.iter().enumerate() {
        let mut expected = 0.0f64;
        let mut arrived = 0.0f64;
        for &i in &order {
            let area = span_overlap(&subs[i].rect, span, width) as f64;
            expected += area;
            if let Some(q) = present[i] {
                arrived += area * q.clamp(0.0, 1.0);
            }
        }
        map.tiles.push(TileCompleteness {
            tile: proc_idx,
            rect: None,
            expected,
            arrived,
        });
    }
    (img, stats, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite_serial;
    use pvr_render::image::PixelRect;

    fn random_subs(seed: u64, n: usize, w: usize, h: usize) -> Vec<SubImage> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = move |m: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m.max(1)
        };
        (0..n)
            .map(|_| {
                let x0 = next(w - 2);
                let y0 = next(h - 2);
                let rw = 1 + next(w - x0 - 1);
                let rh = 1 + next(h - y0 - 1);
                let mut s =
                    SubImage::transparent(PixelRect::new(x0, y0, rw, rh), next(1000) as f64);
                for p in s.pixels.iter_mut() {
                    *p = [
                        next(100) as f32 / 250.0,
                        next(100) as f32 / 250.0,
                        next(100) as f32 / 250.0,
                        next(100) as f32 / 170.0,
                    ];
                }
                s
            })
            .collect()
    }

    #[test]
    fn default_factorizations() {
        assert_eq!(default_radices(8), vec![2, 2, 2]);
        assert_eq!(default_radices(12), vec![3, 2, 2]);
        assert_eq!(default_radices(7), vec![7]);
        assert_eq!(default_radices(1), Vec::<usize>::new());
    }

    #[test]
    fn matches_serial_for_default_radices() {
        for n in [1usize, 2, 4, 6, 8, 12, 16, 24, 32] {
            let subs = random_subs(n as u64 + 7, n, 20, 20);
            let reference = composite_serial(&subs, 20, 20);
            let (img, stats) = composite_radix_k(&subs, 20, 20, None);
            let d = img.max_abs_diff(&reference);
            assert!(d < 1e-5, "n={n} radices {:?}: diff {d}", stats.radices);
        }
    }

    #[test]
    fn matches_serial_for_explicit_radices() {
        let subs = random_subs(3, 16, 24, 24);
        let reference = composite_serial(&subs, 24, 24);
        for radices in [
            vec![16],
            vec![4, 4],
            vec![2, 2, 2, 2],
            vec![8, 2],
            vec![2, 8],
        ] {
            let (img, _) = composite_radix_k(&subs, 24, 24, Some(&radices));
            let d = img.max_abs_diff(&reference);
            assert!(d < 1e-5, "radices {radices:?}: diff {d}");
        }
    }

    #[test]
    fn radix_n_is_direct_send_message_count() {
        // One round of radix n: every process sends k-1 = n-1 pieces.
        let n = 8;
        let subs = random_subs(5, n, 16, 16);
        let (_, stats) = composite_radix_k(&subs, 16, 16, Some(&[n]));
        assert_eq!(stats.messages, n * (n - 1));
    }

    #[test]
    fn radix_2_is_binary_swap_message_count() {
        let n = 16;
        let subs = random_subs(9, n, 16, 16);
        let (_, stats) = composite_radix_k(&subs, 16, 16, Some(&[2, 2, 2, 2]));
        // n messages per round, log2(n) rounds — binary swap's count.
        assert_eq!(stats.messages, n * 4);
        let (_, bs) = crate::binaryswap::composite_binary_swap(&subs, 16, 16);
        assert_eq!(stats.messages, bs.messages);
        assert_eq!(stats.bytes, bs.bytes);
    }

    #[test]
    fn intermediate_radices_trade_messages_for_rounds() {
        let n = 16;
        let subs = random_subs(11, n, 32, 32);
        let (_, r2) = composite_radix_k(&subs, 32, 32, Some(&[2, 2, 2, 2]));
        let (_, r4) = composite_radix_k(&subs, 32, 32, Some(&[4, 4]));
        let (_, r16) = composite_radix_k(&subs, 32, 32, Some(&[16]));
        assert!(r2.messages < r4.messages && r4.messages < r16.messages);
        // Fewer rounds = fewer total bytes shipped (each round re-ships
        // a shrinking region).
        assert!(r16.bytes >= r4.bytes && r4.bytes >= r2.bytes * 3 / 4);
    }

    #[test]
    #[should_panic(expected = "multiply to")]
    fn wrong_factorization_panics() {
        let subs = random_subs(1, 8, 8, 8);
        composite_radix_k(&subs, 8, 8, Some(&[3, 3]));
    }

    #[test]
    fn schedule_matches_real_execution() {
        // The bytes-only schedule must agree with what the real
        // compositor actually ships, round totals included.
        let n = 12;
        let subs = random_subs(21, n, 24, 24);
        for radices in [vec![12], vec![3, 4], vec![2, 2, 3]] {
            let (_, stats) = composite_radix_k(&subs, 24, 24, Some(&radices));
            let sched = radix_k_schedule(n, 24 * 24, &radices);
            let sched_msgs: usize = sched.iter().map(|r| r.len()).sum();
            let sched_bytes: u64 = sched.iter().flat_map(|r| r.iter().map(|m| m.bytes)).sum();
            assert_eq!(sched_msgs, stats.messages, "radices {radices:?}");
            assert_eq!(sched_bytes, stats.bytes, "radices {radices:?}");
            assert_eq!(sched.len(), radices.len());
        }
    }

    #[test]
    fn random_radices_match_serial() {
        // Any valid factorization composites correctly.
        use proptest::prelude::*;
        use proptest::strategy::ValueTree;
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let strategy = proptest::collection::vec(2usize..5, 1..4);
        for _ in 0..24 {
            let radices = strategy.new_tree(&mut runner).unwrap().current();
            let n: usize = radices.iter().product();
            if n > 64 {
                continue;
            }
            let subs = random_subs(n as u64 * 31 + 5, n, 16, 16);
            let reference = composite_serial(&subs, 16, 16);
            let (img, stats) = composite_radix_k(&subs, 16, 16, Some(&radices));
            let d = img.max_abs_diff(&reference);
            assert!(d < 1e-5, "radices {radices:?} (n={n}): diff {d}");
            // Message count formula: n * sum(k_i - 1).
            let expect: usize = radices.iter().map(|k| k - 1).sum::<usize>() * n;
            assert_eq!(stats.messages, expect, "radices {radices:?}");
        }
    }

    #[test]
    fn degraded_with_everything_present_is_bit_identical() {
        let subs = random_subs(17, 12, 24, 24);
        let present = vec![Some(1.0); 12];
        let (img, stats) = composite_radix_k(&subs, 24, 24, Some(&[3, 4]));
        let (img_d, stats_d, map) =
            composite_radix_k_degraded(&subs, 24, 24, Some(&[3, 4]), &present);
        assert_eq!(img.pixels(), img_d.pixels(), "must be bit-identical");
        assert_eq!(stats, stats_d);
        assert!(map.fully_complete());
        assert_eq!(map.tiles.len(), 12);
    }

    #[test]
    fn absent_process_reduces_span_completeness_but_terminates() {
        let subs = random_subs(23, 8, 16, 16);
        let mut present = vec![Some(1.0); 8];
        present[3] = None;
        let (img, _, map) = composite_radix_k_degraded(&subs, 16, 16, None, &present);
        assert!(map.frame_fraction() < 1.0);
        assert!(!map.fully_complete());
        // The composite still differs from serial only where the lost
        // input contributed.
        let reference = composite_serial(&subs, 16, 16);
        assert!(img.max_abs_diff(&reference) > 0.0);
        // And spans partition the image.
        let spans = final_spans(8, 256, &default_radices(8));
        let covered: usize = spans.iter().map(|(s, e)| e - s).sum();
        assert_eq!(covered, 256);
    }

    #[test]
    fn schedule_partners_stay_in_groups() {
        let sched = radix_k_schedule(8, 64, &[2, 2, 2]);
        // Round 0: partners differ by 1 within pairs.
        for m in &sched[0] {
            assert_eq!(m.from ^ 1, m.to);
        }
        // Round 1: partners differ by 2.
        for m in &sched[1] {
            assert_eq!(m.from ^ 2, m.to);
        }
        // Round 2: partners differ by 4.
        for m in &sched[2] {
            assert_eq!(m.from ^ 4, m.to);
        }
    }
}
