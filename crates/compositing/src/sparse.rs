//! Sparse subimage wire encoding: per-row run-length spans of
//! non-transparent pixels.
//!
//! A renderer's footprint rectangle is conservative — the projected
//! bounding box of its block — so most of its pixels are exactly
//! transparent (`[0.0; 4]`), and shipping them dense wastes most of the
//! compositing message volume. The sparse encoding keeps, per row, only
//! the runs of non-transparent pixels:
//!
//! ```text
//! header:  rect (x0, y0, w, h) + depth
//! per row: span count                      (1 word  = 4 wire bytes)
//! per span: start offset + length          (2 words = 8 wire bytes)
//! per pixel: RGBA payload                  (4 wire bytes, as dense)
//! ```
//!
//! Wire cost is priced with the same paper-scale model as the dense
//! format (4 bytes per RGBA pixel, see
//! [`WIRE_BYTES_PER_PIXEL`](crate::WIRE_BYTES_PER_PIXEL)); the per-row
//! and per-span headers are charged honestly, so a fully lit piece is
//! *more* expensive sparse than dense — which is why the exchange picks
//! the cheaper encoding per piece (the occupancy threshold is exactly
//! the break-even point of the two cost formulas).
//!
//! Skipping a transparent pixel is a bitwise no-op under *over*
//! (`out = front + 0.0 * t`, and the accumulators are never `-0.0`), so
//! sparse exchange is bit-identical to dense, not approximate.

use pvr_render::image::{PixelRect, Rgba, SubImage};

use crate::{WIRE_BYTES_PER_PIXEL, WIRE_BYTES_PER_ROW, WIRE_BYTES_PER_SPAN};

/// One horizontal run of non-transparent pixels.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Start offset within the row, relative to `rect.x0`.
    pub x0: u32,
    /// The run's pixels (premultiplied RGBA).
    pub pixels: Vec<Rgba>,
}

/// A [`SubImage`] with its transparent pixels elided.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSubImage {
    pub rect: PixelRect,
    pub depth: f64,
    /// `rect.h` rows of spans, top to bottom, spans left to right.
    pub rows: Vec<Vec<Span>>,
}

impl SparseSubImage {
    /// Encode a subimage (lossless: [`SparseSubImage::decode`] returns
    /// a bit-identical pixel buffer).
    pub fn encode(sub: &SubImage) -> Self {
        let rect = sub.rect;
        let mut rows = Vec::with_capacity(rect.h);
        for y in 0..rect.h {
            let row = &sub.pixels[y * rect.w..(y + 1) * rect.w];
            let mut spans: Vec<Span> = Vec::new();
            let mut open = false;
            for (x, &p) in row.iter().enumerate() {
                if p == [0.0; 4] {
                    open = false;
                    continue;
                }
                if !open {
                    spans.push(Span {
                        x0: x as u32,
                        pixels: Vec::new(),
                    });
                    open = true;
                }
                spans.last_mut().unwrap().pixels.push(p);
            }
            rows.push(spans);
        }
        SparseSubImage {
            rect,
            depth: sub.depth,
            rows,
        }
    }

    /// Reconstruct the dense subimage (elided pixels become `[0.0; 4]`,
    /// which is what they were).
    pub fn decode(&self) -> SubImage {
        let mut sub = SubImage::transparent(self.rect, self.depth);
        for (y, spans) in self.rows.iter().enumerate() {
            for span in spans {
                let base = y * self.rect.w + span.x0 as usize;
                sub.pixels[base..base + span.pixels.len()].copy_from_slice(&span.pixels);
            }
        }
        sub
    }

    pub fn num_spans(&self) -> usize {
        self.rows.iter().map(|r| r.len()).sum()
    }

    pub fn payload_pixels(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|r| r.iter().map(|s| s.pixels.len()))
            .sum()
    }

    /// Honest wire cost of this encoding under the paper's pricing.
    pub fn wire_bytes(&self) -> u64 {
        sparse_cost(self.rect.h, self.num_spans(), self.payload_pixels())
    }
}

/// Sparse wire cost formula shared by the encoder and the in-place
/// accounting scans.
#[inline]
pub fn sparse_cost(rows: usize, spans: usize, payload_pixels: usize) -> u64 {
    rows as u64 * WIRE_BYTES_PER_ROW
        + spans as u64 * WIRE_BYTES_PER_SPAN
        + payload_pixels as u64 * WIRE_BYTES_PER_PIXEL
}

/// Wire cost of shipping the `region` piece of `sub`, without
/// materializing an encoding: `(dense, sparse)` bytes. `region` must be
/// contained in `sub.rect`.
pub fn piece_wire_bytes(sub: &SubImage, region: &PixelRect) -> (u64, u64) {
    let dense = region.num_pixels() as u64 * WIRE_BYTES_PER_PIXEL;
    let mut spans = 0usize;
    let mut payload = 0usize;
    for y in region.y0..region.y1() {
        let mut open = false;
        for x in region.x0..region.x1() {
            if sub.get(x, y) == [0.0; 4] {
                open = false;
                continue;
            }
            if !open {
                spans += 1;
                open = true;
            }
            payload += 1;
        }
    }
    (dense, sparse_cost(region.h, spans, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkerboard(rect: PixelRect) -> SubImage {
        let mut s = SubImage::transparent(rect, 3.5);
        for y in 0..rect.h {
            for x in 0..rect.w {
                if (x + y) % 2 == 0 {
                    s.pixels[y * rect.w + x] = [0.1 * x as f32, 0.2, 0.3, 0.5];
                }
            }
        }
        s
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        for sub in [
            checkerboard(PixelRect::new(3, 5, 7, 4)),
            SubImage::transparent(PixelRect::new(0, 0, 6, 6), 1.0),
            {
                let mut s = SubImage::transparent(PixelRect::new(1, 1, 5, 3), 2.0);
                s.pixels.fill([0.2, 0.3, 0.4, 0.9]);
                s
            },
        ] {
            let enc = SparseSubImage::encode(&sub);
            let dec = enc.decode();
            assert_eq!(dec.rect, sub.rect);
            assert_eq!(dec.depth, sub.depth);
            assert_eq!(dec.pixels, sub.pixels);
        }
    }

    #[test]
    fn transparent_subimage_costs_only_row_headers() {
        let sub = SubImage::transparent(PixelRect::new(0, 0, 100, 10), 0.0);
        let enc = SparseSubImage::encode(&sub);
        assert_eq!(enc.num_spans(), 0);
        assert_eq!(enc.wire_bytes(), 10 * WIRE_BYTES_PER_ROW);
        assert!(enc.wire_bytes() < sub.wire_bytes());
    }

    #[test]
    fn fully_lit_subimage_costs_more_sparse_than_dense() {
        let mut sub = SubImage::transparent(PixelRect::new(0, 0, 16, 16), 0.0);
        sub.pixels.fill([0.5; 4]);
        let enc = SparseSubImage::encode(&sub);
        assert_eq!(enc.payload_pixels(), 256);
        assert_eq!(enc.num_spans(), 16);
        assert!(enc.wire_bytes() > sub.wire_bytes());
    }

    #[test]
    fn piece_scan_matches_encoder_on_crops() {
        let sub = checkerboard(PixelRect::new(2, 2, 9, 7));
        for region in [
            sub.rect,
            PixelRect::new(3, 3, 4, 4),
            PixelRect::new(2, 2, 1, 7),
        ] {
            let (dense, sparse) = piece_wire_bytes(&sub, &region);
            let crop = sub.crop(&region).unwrap();
            assert_eq!(dense, crop.wire_bytes());
            assert_eq!(sparse, SparseSubImage::encode(&crop).wire_bytes());
        }
    }
}
