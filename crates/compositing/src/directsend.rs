//! Direct-send compositing with a decoupled compositor count.
//!
//! Each of `m` compositors owns one span of the final image and blends,
//! front to back, the fragments of every renderer whose footprint
//! overlaps its span (Hsu's direct-send, as in the paper). The paper's
//! improvement — `m < n` when `n` grows past ~1K — is just a different
//! [`ImagePartition`]; the algorithm is identical.
//!
//! Compositors run in parallel (rayon), mirroring the machine where each
//! compositor is an independent core.

use rayon::prelude::*;

use pvr_render::image::{over, Image, PixelRect, SubImage};

use crate::region::ImagePartition;
use crate::serial::visibility_order;
use crate::{WIRE_BYTES_PER_PIXEL, WIRE_BYTES_PER_ROW, WIRE_BYTES_PER_SPAN};

/// Message-level statistics of one direct-send execution (what actually
/// got exchanged, cross-checkable against the precomputed
/// [`crate::Schedule`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DirectSendStats {
    /// Total renderer-to-compositor messages.
    pub messages: usize,
    /// Honest wire bytes: each piece ships in whichever of the dense
    /// (4 bytes/pixel of overlap) or sparse (run-length spans of
    /// non-transparent pixels, see [`crate::sparse`]) encoding is
    /// smaller.
    pub bytes: u64,
    /// What dense shipping would have cost — the old accounting, and
    /// exactly what [`crate::Schedule::total_bytes`] predicts from
    /// footprints alone (the schedule cannot see pixel occupancy).
    pub dense_bytes: u64,
    /// Of [`DirectSendStats::messages`], how many chose the sparse
    /// encoding.
    pub sparse_messages: usize,
    /// Messages received per compositor.
    pub per_compositor: Vec<usize>,
}

/// Blend the `ov` piece of `sub` into a compositor tile buffer, using
/// the sparse row spans both to skip the (bitwise no-op) transparent
/// pixels and to price the piece's wire cost in the same pass.
///
/// Returns `(dense_bytes, sparse_bytes)` for the piece.
fn blend_piece(buf: &mut SubImage, tile: &PixelRect, sub: &SubImage, ov: &PixelRect) -> (u64, u64) {
    let dense = ov.num_pixels() as u64 * WIRE_BYTES_PER_PIXEL;
    let mut sparse = ov.h as u64 * WIRE_BYTES_PER_ROW;
    for y in ov.y0..ov.y1() {
        let mut open = false;
        for x in ov.x0..ov.x1() {
            let p = sub.get(x, y);
            if p == [0.0; 4] {
                open = false;
                continue;
            }
            if !open {
                sparse += WIRE_BYTES_PER_SPAN;
                open = true;
            }
            sparse += WIRE_BYTES_PER_PIXEL;
            let idx = (y - tile.y0) * tile.w + (x - tile.x0);
            buf.pixels[idx] = over(buf.pixels[idx], p);
        }
    }
    (dense, sparse)
}

/// Composite `subs` into the final image using `m = partition.m`
/// compositors.
pub fn composite_direct_send(
    subs: &[SubImage],
    partition: ImagePartition,
) -> (Image, DirectSendStats) {
    composite_direct_send_traced(subs, partition, &pvr_obs::Tracer::disabled())
}

/// [`composite_direct_send`] with span tracing: each compositor's blend
/// becomes a `composite.tile` span on its own track (args: messages
/// blended and wire bytes), making per-compositor load imbalance
/// visible on the timeline. A disabled tracer makes this identical to
/// the plain call.
pub fn composite_direct_send_traced(
    subs: &[SubImage],
    partition: ImagePartition,
    tracer: &pvr_obs::Tracer,
) -> (Image, DirectSendStats) {
    let order = visibility_order(subs);
    let width = partition.width;
    let height = partition.height;

    // Each compositor independently: blend the overlapping fragment of
    // every subimage, in visibility order, into its tile buffer.
    let results: Vec<(SubImage, DirectSendStats)> = (0..partition.m())
        .into_par_iter()
        .map(|c| {
            let track = c as pvr_obs::span::TrackId;
            tracer.begin(track, "composite.tile");
            let tile = partition.tile(c);
            let mut buf = SubImage::transparent(tile, 0.0);
            let mut st = DirectSendStats::default();
            for &i in &order {
                let sub = &subs[i];
                let Some(ov) = sub.rect.intersect(&tile) else {
                    continue;
                };
                let (dense, sparse) = blend_piece(&mut buf, &tile, sub, &ov);
                st.messages += 1;
                st.dense_bytes += dense;
                if sparse < dense {
                    st.sparse_messages += 1;
                    st.bytes += sparse;
                } else {
                    st.bytes += dense;
                }
            }
            tracer.end_args(
                track,
                "composite.tile",
                pvr_obs::Args::two("messages", st.messages as u64, "bytes", st.bytes),
            );
            (buf, st)
        })
        .collect();

    // Gather compositor tiles into the final image.
    let mut img = Image::new(width, height);
    let mut stats = DirectSendStats::default();
    for (buf, st) in results {
        img.paste(&buf);
        stats.messages += st.messages;
        stats.bytes += st.bytes;
        stats.dense_bytes += st.dense_bytes;
        stats.sparse_messages += st.sparse_messages;
        stats.per_compositor.push(st.messages);
    }
    (img, stats)
}

/// Blend received fragments into a compositor's tile buffer in the
/// canonical `(depth, renderer)` order. Both message-passing link modes
/// (plain and fault-tolerant) blend through this one function, so a
/// frame's pixels cannot depend on message arrival order — the property
/// the bit-identity and recovery tests pin.
///
/// Every fragment must already be cropped to `tile`.
pub fn blend_fragments(tile: PixelRect, mut frags: Vec<(usize, SubImage)>) -> SubImage {
    frags.sort_by(|a, b| a.1.depth.total_cmp(&b.1.depth).then(a.0.cmp(&b.0)));
    let mut buf = SubImage::transparent(tile, 0.0);
    for (_, frag) in &frags {
        for y in frag.rect.y0..frag.rect.y1() {
            for x in frag.rect.x0..frag.rect.x1() {
                let p = frag.get(x, y);
                // Blending an exactly transparent pixel is a bitwise
                // no-op; skip it.
                if p == [0.0; 4] {
                    continue;
                }
                let idx = (y - tile.y0) * tile.w + (x - tile.x0);
                buf.pixels[idx] = over(buf.pixels[idx], p);
            }
        }
    }
    buf
}

/// Deadline-mode direct-send: composite whatever fragments arrived.
///
/// `present[i]` is `Some(quality)` when renderer `i`'s fragment made it
/// before the deadline (`quality` in [0, 1] is the sender's own data
/// quality — degraded I/O propagates into the completeness accounting),
/// `None` when it was lost or late. Absent fragments are skipped; the
/// per-tile [`CompletenessMap`](crate::completeness::CompletenessMap)
/// reports the fraction of each tile's expected blended footprint that
/// arrived. With every fragment present the image is bit-identical to
/// [`composite_direct_send`] and every tile reports 1.0.
pub fn composite_direct_send_degraded(
    subs: &[SubImage],
    partition: ImagePartition,
    present: &[Option<f64>],
) -> (Image, DirectSendStats, crate::completeness::CompletenessMap) {
    use crate::completeness::{CompletenessMap, TileCompleteness};
    assert_eq!(subs.len(), present.len());
    let order = visibility_order(subs);

    let results: Vec<(SubImage, DirectSendStats, TileCompleteness)> = (0..partition.m())
        .into_par_iter()
        .map(|c| {
            let tile = partition.tile(c);
            let mut buf = SubImage::transparent(tile, 0.0);
            let mut st = DirectSendStats::default();
            let mut expected = 0.0f64;
            let mut arrived = 0.0f64;
            for &i in &order {
                let sub = &subs[i];
                let Some(ov) = sub.rect.intersect(&tile) else {
                    continue;
                };
                let area = ov.num_pixels() as f64;
                expected += area;
                let Some(quality) = present[i] else {
                    continue;
                };
                arrived += area * quality.clamp(0.0, 1.0);
                let (dense, sparse) = blend_piece(&mut buf, &tile, sub, &ov);
                st.messages += 1;
                st.dense_bytes += dense;
                if sparse < dense {
                    st.sparse_messages += 1;
                    st.bytes += sparse;
                } else {
                    st.bytes += dense;
                }
            }
            let tc = TileCompleteness {
                tile: c,
                rect: Some(tile),
                expected,
                arrived,
            };
            (buf, st, tc)
        })
        .collect();

    let mut img = Image::new(partition.width, partition.height);
    let mut stats = DirectSendStats::default();
    let mut map = CompletenessMap::default();
    for (buf, st, tc) in results {
        img.paste(&buf);
        stats.messages += st.messages;
        stats.bytes += st.bytes;
        stats.dense_bytes += st.dense_bytes;
        stats.sparse_messages += st.sparse_messages;
        stats.per_compositor.push(st.messages);
        map.tiles.push(tc);
    }
    (img, stats, map)
}

/// Convenience: footprint rectangles of a set of subimages (inputs to
/// [`crate::build_schedule`] when real subimages exist).
pub fn footprints(subs: &[SubImage]) -> Vec<PixelRect> {
    subs.iter().map(|s| s.rect).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite_serial;

    fn solid(rect: PixelRect, rgba: [f32; 4], depth: f64) -> SubImage {
        let mut s = SubImage::transparent(rect, depth);
        s.pixels.fill(rgba);
        s
    }

    fn random_subs(seed: u64, n: usize, w: usize, h: usize) -> Vec<SubImage> {
        // Simple deterministic LCG so tests need no rand dependency here.
        let mut state = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1;
        let mut next = move |m: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m.max(1)
        };
        (0..n)
            .map(|i| {
                let x0 = next(w - 2);
                let y0 = next(h - 2);
                let rw = 1 + next(w - x0 - 1);
                let rh = 1 + next(h - y0 - 1);
                let mut s =
                    SubImage::transparent(PixelRect::new(x0, y0, rw, rh), next(1000) as f64);
                for p in s.pixels.iter_mut() {
                    *p = [
                        next(100) as f32 / 100.0 * 0.5,
                        next(100) as f32 / 100.0 * 0.5,
                        next(100) as f32 / 100.0 * 0.5,
                        next(100) as f32 / 100.0 * 0.6,
                    ];
                }
                let _ = i;
                s
            })
            .collect()
    }

    #[test]
    fn matches_serial_for_any_m() {
        let subs = random_subs(7, 24, 32, 32);
        let reference = composite_serial(&subs, 32, 32);
        for m in [1usize, 2, 5, 16, 24, 100] {
            let (img, stats) = composite_direct_send(&subs, ImagePartition::new(32, 32, m));
            let d = img.max_abs_diff(&reference);
            assert!(d < 1e-5, "m={m}: max diff {d}");
            assert_eq!(stats.per_compositor.len(), m);
            assert_eq!(stats.per_compositor.iter().sum::<usize>(), stats.messages);
        }
    }

    #[test]
    fn stats_match_schedule_prediction() {
        let subs = random_subs(11, 16, 64, 64);
        let part = ImagePartition::new(64, 64, 12);
        let (_, stats) = composite_direct_send(&subs, part);
        let sched = crate::build_schedule(&footprints(&subs), part);
        assert_eq!(stats.messages, sched.num_messages());
        // The schedule prices footprints dense (it cannot see pixel
        // occupancy); honest bytes pick the cheaper encoding per piece.
        assert_eq!(stats.dense_bytes, sched.total_bytes());
        assert!(stats.bytes <= stats.dense_bytes);
        assert_eq!(stats.per_compositor, sched.per_compositor_counts());
    }

    #[test]
    fn sparse_footprints_ship_fewer_honest_bytes() {
        // A footprint with one lit pixel per row: dense pricing charges
        // the whole rectangle, honest pricing only headers + payload.
        let mut sub = SubImage::transparent(PixelRect::new(0, 0, 32, 32), 0.0);
        for y in 0..32 {
            sub.pixels[y * 32 + (y % 32)] = [0.1, 0.2, 0.3, 0.9];
        }
        let part = ImagePartition::new(32, 32, 4);
        let (img, stats) = composite_direct_send(std::slice::from_ref(&sub), part);
        assert_eq!(stats.dense_bytes, 32 * 32 * 4);
        assert!(stats.bytes < stats.dense_bytes, "{:?}", stats);
        assert_eq!(stats.sparse_messages, stats.messages);
        // And the image is still exact.
        let reference = composite_serial(std::slice::from_ref(&sub), 32, 32);
        assert_eq!(img.pixels(), reference.pixels());
    }

    #[test]
    fn opaque_front_hides_back_across_span_boundaries() {
        let front = solid(PixelRect::new(0, 0, 8, 8), [0.0, 0.0, 1.0, 1.0], 0.0);
        let back = solid(PixelRect::new(0, 0, 8, 8), [1.0, 0.0, 0.0, 1.0], 9.0);
        let (img, _) = composite_direct_send(&[back, front], ImagePartition::new(8, 8, 7));
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(img.get(x, y), [0.0, 0.0, 1.0, 1.0]);
            }
        }
    }

    #[test]
    fn fewer_compositors_fewer_messages_same_image() {
        let subs = random_subs(3, 64, 64, 64);
        let (img_n, stats_n) = composite_direct_send(&subs, ImagePartition::new(64, 64, 64));
        let (img_m, stats_m) = composite_direct_send(&subs, ImagePartition::new(64, 64, 8));
        assert!(stats_m.messages < stats_n.messages);
        assert!(img_n.max_abs_diff(&img_m) < 1e-5);
    }

    #[test]
    fn degraded_with_everything_present_is_bit_identical() {
        let subs = random_subs(13, 20, 32, 32);
        let part = ImagePartition::new(32, 32, 6);
        let (img, stats) = composite_direct_send(&subs, part);
        let present = vec![Some(1.0); subs.len()];
        let (img_d, stats_d, map) = composite_direct_send_degraded(&subs, part, &present);
        assert_eq!(img.pixels(), img_d.pixels(), "must be bit-identical");
        assert_eq!(stats, stats_d);
        assert!(map.fully_complete());
        assert_eq!(map.frame_fraction(), 1.0);
        assert_eq!(map.tiles.len(), 6);
    }

    #[test]
    fn missing_fragment_degrades_only_its_tiles() {
        let front = solid(PixelRect::new(0, 0, 8, 4), [0.0, 0.0, 1.0, 1.0], 0.0);
        let back = solid(PixelRect::new(0, 4, 8, 4), [1.0, 0.0, 0.0, 1.0], 9.0);
        let part = ImagePartition::new(8, 8, 2); // tile 0 = top, tile 1 = bottom
        let present = vec![Some(1.0), None]; // lose the bottom fragment
        let (img, _, map) = composite_direct_send_degraded(&[front, back], part, &present);
        assert_eq!(map.tiles[0].fraction(), 1.0);
        assert_eq!(map.tiles[1].fraction(), 0.0);
        assert!(map.frame_fraction() < 1.0);
        // The surviving fragment still renders; the lost one is blank.
        assert_eq!(img.get(0, 0), [0.0, 0.0, 1.0, 1.0]);
        assert_eq!(img.get(0, 7), [0.0; 4]);
    }

    #[test]
    fn sender_quality_weights_completeness() {
        let subs = vec![solid(PixelRect::new(0, 0, 4, 4), [0.5; 4], 1.0)];
        let (_, _, map) =
            composite_direct_send_degraded(&subs, ImagePartition::new(4, 4, 1), &[Some(0.25)]);
        assert!((map.frame_fraction() - 0.25).abs() < 1e-12);
        assert!(!map.fully_complete());
    }

    #[test]
    fn no_subimages_gives_empty_image_and_no_messages() {
        let (img, stats) = composite_direct_send(&[], ImagePartition::new(16, 16, 4));
        assert_eq!(stats.messages, 0);
        assert!(img.pixels().iter().all(|p| *p == [0.0; 4]));
    }
}
