//! The direct-send message schedule.
//!
//! Built from block *footprints* alone — no pixel data — so paper-scale
//! schedules (32K renderers) are cheap to generate and can be fed
//! straight into the network simulator. "The number of compositors is
//! known at initialization time, and the schedule of messages is built
//! around this number from the beginning."

use pvr_render::image::PixelRect;

use crate::region::ImagePartition;
use crate::WIRE_BYTES_PER_PIXEL;

/// One renderer-to-compositor message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompositeMessage {
    pub renderer: usize,
    /// Compositor index (0..m); the owning *rank* is assigned by the
    /// pipeline layer.
    pub compositor: usize,
    /// Overlap between the renderer's footprint and the compositor's
    /// span, in pixels.
    pub pixels: usize,
}

impl CompositeMessage {
    pub fn wire_bytes(&self) -> u64 {
        self.pixels as u64 * WIRE_BYTES_PER_PIXEL
    }
}

/// A complete direct-send schedule plus summary statistics.
#[derive(Debug, Clone)]
pub struct Schedule {
    pub partition: ImagePartition,
    pub messages: Vec<CompositeMessage>,
}

impl Schedule {
    pub fn num_messages(&self) -> usize {
        self.messages.len()
    }

    pub fn total_bytes(&self) -> u64 {
        self.messages.iter().map(|m| m.wire_bytes()).sum()
    }

    /// Mean messages received per compositor — the paper's `O(n^{1/3})`
    /// per-recipient factor.
    pub fn mean_messages_per_compositor(&self) -> f64 {
        self.messages.len() as f64 / self.partition.m() as f64
    }

    /// Nominal per-message size the paper plots in Figure 4:
    /// `image_bytes / m`.
    pub fn nominal_message_bytes(&self) -> u64 {
        self.partition.num_pixels() as u64 * WIRE_BYTES_PER_PIXEL / self.partition.m() as u64
    }

    /// Messages received by each compositor.
    pub fn per_compositor_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.partition.m()];
        for m in &self.messages {
            counts[m.compositor] += 1;
        }
        counts
    }
}

/// Build the schedule for `n` renderers with the given screen
/// footprints, compositing into `m` regions of a `width x height` image.
/// Empty footprints contribute no messages.
pub fn build_schedule(footprints: &[PixelRect], partition: ImagePartition) -> Schedule {
    let mut messages = Vec::new();
    for (renderer, fp) in footprints.iter().enumerate() {
        for (compositor, pixels) in partition.overlaps(fp) {
            messages.push(CompositeMessage {
                renderer,
                compositor,
                pixels,
            });
        }
    }
    Schedule {
        partition,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Footprints of a b^3 block lattice under an axis-aligned view that
    /// fills the image.
    fn lattice_footprints(b: usize, image: usize) -> Vec<PixelRect> {
        let mut fps = Vec::new();
        for _z in 0..b {
            for y in 0..b {
                for x in 0..b {
                    let x0 = x * image / b;
                    let x1 = (x + 1) * image / b;
                    let y0 = y * image / b;
                    let y1 = (y + 1) * image / b;
                    fps.push(PixelRect::new(x0, y0, x1 - x0, y1 - y0));
                }
            }
        }
        fps
    }

    #[test]
    fn message_count_scales_like_m_times_cuberoot_n() {
        // The paper: on average n^(1/3) messages to each of m
        // recipients. With a b^3 lattice, the b blocks stacked in depth
        // share a footprint, so each compositor hears from ~b = n^{1/3}
        // renderers per overlapping column.
        let image = 256;
        for b in [2usize, 4, 8] {
            let n = b * b * b;
            let fps = lattice_footprints(b, image);
            let part = ImagePartition::new(image, image, n);
            let s = build_schedule(&fps, part);
            let per = s.mean_messages_per_compositor();
            let nroot = (n as f64).cbrt();
            assert!(
                per >= nroot * 0.9 && per <= nroot * 3.0,
                "b={b}: {per} per compositor vs n^1/3={nroot}"
            );
        }
    }

    #[test]
    fn total_pixels_equal_footprint_pixels() {
        let fps = lattice_footprints(4, 128);
        let part = ImagePartition::new(128, 128, 16);
        let s = build_schedule(&fps, part);
        let sched_pixels: usize = s.messages.iter().map(|m| m.pixels).sum();
        let fp_pixels: usize = fps.iter().map(|f| f.num_pixels()).sum();
        assert_eq!(sched_pixels, fp_pixels);
    }

    #[test]
    fn fewer_compositors_mean_fewer_bigger_messages() {
        let fps = lattice_footprints(8, 512);
        let part_eq = ImagePartition::new(512, 512, 512);
        let part_lim = ImagePartition::new(512, 512, 64);
        let s_eq = build_schedule(&fps, part_eq);
        let s_lim = build_schedule(&fps, part_lim);
        assert!(s_lim.num_messages() < s_eq.num_messages());
        // Same pixels overall.
        assert_eq!(s_eq.total_bytes(), s_lim.total_bytes());
        let mean_eq = s_eq.total_bytes() as f64 / s_eq.num_messages() as f64;
        let mean_lim = s_lim.total_bytes() as f64 / s_lim.num_messages() as f64;
        assert!(mean_lim > mean_eq * 2.0, "{mean_lim} vs {mean_eq}");
    }

    #[test]
    fn nominal_message_size_matches_paper_axis() {
        // 1600^2, m = 256 -> 40 KB; m = 32768 -> 312 B (Figure 4 axis).
        let p1 = ImagePartition::new(1600, 1600, 256);
        assert_eq!(build_schedule(&[], p1).nominal_message_bytes(), 40_000);
        let p2 = ImagePartition::new(1600, 1600, 32_768);
        assert_eq!(build_schedule(&[], p2).nominal_message_bytes(), 312);
    }

    #[test]
    fn empty_footprints_send_nothing() {
        let fps = vec![PixelRect::new(0, 0, 0, 0); 10];
        let s = build_schedule(&fps, ImagePartition::new(64, 64, 8));
        assert_eq!(s.num_messages(), 0);
        assert_eq!(s.total_bytes(), 0);
    }

    #[test]
    fn per_compositor_counts_sum_to_total() {
        let fps = lattice_footprints(4, 64);
        let s = build_schedule(&fps, ImagePartition::new(64, 64, 9));
        let counts = s.per_compositor_counts();
        assert_eq!(counts.iter().sum::<usize>(), s.num_messages());
    }
}
