//! Distributed particle tracing over real message passing.
//!
//! Each rank owns one block of the grid (plus a two-cell ghost layer)
//! and integrates the particles currently inside its owned region; a
//! particle crossing a block face is shipped to the owner of its new
//! position as a real `pvr-mpisim` message. Rank 0 counts trace
//! terminations and broadcasts a finish marker — the classic
//! master-counted termination of Peterka et al.'s IPDPS'11 tracer.
//!
//! **Exactness.** Blocks sample the same analytic field at the same
//! global lattice points the serial tracer uses, and the ghost layer is
//! wide enough for every RK4 probe (`h * max_speed + 1 ≤ ghost`), so
//! distributed trajectories are bit-identical to serial ones; the tests
//! assert equality step by step.

use pvr_formats::Subvolume;
use pvr_volume::{BlockDecomposition, Volume};

use crate::field::SampledVecField;
use crate::tracer::{trace_leg, Particle, StopReason, TracerOpts};

/// Ghost width used by the distributed tracer.
pub const TRACER_GHOST: usize = 2;

const TAG: u32 = 40;

/// Message type bytes.
const MSG_PARTICLE: u8 = 0;
const MSG_DONE: u8 = 1;
const MSG_FINISH: u8 = 2;

/// One fully assembled trace.
#[derive(Debug, Clone)]
pub struct AssembledTrace {
    pub id: u32,
    pub reason: StopReason,
    pub steps: u32,
    pub path: Vec<[f32; 3]>,
}

/// Per-axis block boundaries for owner lookup.
struct OwnerMap {
    bounds: [Vec<usize>; 3],
    counts: [usize; 3],
}

impl OwnerMap {
    fn new(decomp: &BlockDecomposition) -> Self {
        let counts = decomp.counts();
        let mut bounds: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for a in 0..3 {
            // Offsets of each block along this axis (block 0 along the
            // other axes).
            for i in 0..counts[a] {
                let mut coords = [0usize; 3];
                coords[a] = i;
                let id =
                    (coords[2] * decomp.counts()[1] + coords[1]) * decomp.counts()[0] + coords[0];
                bounds[a].push(decomp.block(id).sub.offset[a]);
            }
        }
        OwnerMap { bounds, counts }
    }

    /// Rank (= block id) owning a cell-space position inside the grid.
    fn owner_of(&self, p: [f32; 3]) -> usize {
        let mut coords = [0usize; 3];
        for a in 0..3 {
            // Last boundary <= p.
            let mut i = 0;
            while i + 1 < self.bounds[a].len() && self.bounds[a][i + 1] as f32 <= p[a] {
                i += 1;
            }
            coords[a] = i;
        }
        (coords[2] * self.counts[1] + coords[1]) * self.counts[0] + coords[0]
    }
}

fn encode_particle(p: &Particle) -> Vec<u8> {
    let mut m = vec![MSG_PARTICLE];
    m.extend(p.id.to_le_bytes());
    m.extend(p.steps.to_le_bytes());
    for c in p.pos {
        m.extend(c.to_le_bytes());
    }
    m
}

fn decode_particle(m: &[u8]) -> Particle {
    let id = u32::from_le_bytes(m[1..5].try_into().unwrap());
    let steps = u32::from_le_bytes(m[5..9].try_into().unwrap());
    let f = |i: usize| f32::from_le_bytes(m[9 + i * 4..13 + i * 4].try_into().unwrap());
    Particle {
        id,
        steps,
        pos: [f(0), f(1), f(2)],
    }
}

/// Encode a completed/suspended leg for rank 0: id, start step of this
/// leg, stop reason, final step count, and the leg's path points.
fn encode_done(
    id: u32,
    start_step: u32,
    reason: StopReason,
    steps: u32,
    path: &[[f32; 3]],
) -> Vec<u8> {
    let mut m = vec![MSG_DONE];
    m.extend(id.to_le_bytes());
    m.extend(start_step.to_le_bytes());
    m.push(match reason {
        StopReason::LeftDomain => 0,
        StopReason::MaxSteps => 1,
        StopReason::CriticalPoint => 2,
        StopReason::LeftBlock => 3,
    });
    m.extend(steps.to_le_bytes());
    m.extend((path.len() as u32).to_le_bytes());
    for p in path {
        for c in p {
            m.extend(c.to_le_bytes());
        }
    }
    m
}

pub(crate) struct DoneLeg {
    id: u32,
    start_step: u32,
    reason: StopReason,
    steps: u32,
    path: Vec<[f32; 3]>,
}

fn decode_done(m: &[u8]) -> DoneLeg {
    let id = u32::from_le_bytes(m[1..5].try_into().unwrap());
    let start_step = u32::from_le_bytes(m[5..9].try_into().unwrap());
    let reason = match m[9] {
        0 => StopReason::LeftDomain,
        1 => StopReason::MaxSteps,
        2 => StopReason::CriticalPoint,
        _ => StopReason::LeftBlock,
    };
    let steps = u32::from_le_bytes(m[10..14].try_into().unwrap());
    let npts = u32::from_le_bytes(m[14..18].try_into().unwrap()) as usize;
    let mut path = Vec::with_capacity(npts);
    for i in 0..npts {
        let f = |k: usize| {
            f32::from_le_bytes(
                m[18 + i * 12 + k * 4..22 + i * 12 + k * 4]
                    .try_into()
                    .unwrap(),
            )
        };
        path.push([f(0), f(1), f(2)]);
    }
    DoneLeg {
        id,
        start_step,
        reason,
        steps,
        path,
    }
}

/// How the tracer's master-counted termination shuts the world down.
///
/// The acked protocol is the production one. The unacked variant is the
/// bug this protocol originally shipped with, kept compilable under
/// `cfg(test)` as a model-checking fixture: `verify_mc`'s seeded-mutant
/// check proves the DPOR explorer finds the schedule that loses a leg
/// report, with a replayable counterexample. It must never be
/// constructible in production builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShutdownMode {
    /// Rank 0 broadcasts FINISH, then drains until every worker acks;
    /// per-(src, tag) non-overtaking guarantees each worker's leg
    /// reports are delivered before its ack.
    Acked,
    /// Rank 0 exits as soon as its termination count completes and
    /// workers never ack — intermediate leg reports from handoff
    /// chains can still be in flight and are silently lost on
    /// schedules where a third rank's finish report overtakes them.
    #[cfg(test)]
    UnackedMutant,
}

impl ShutdownMode {
    fn acked(self) -> bool {
        match self {
            ShutdownMode::Acked => true,
            #[cfg(test)]
            ShutdownMode::UnackedMutant => false,
        }
    }
}

/// One rank of the distributed tracer: integrate local particles, ship
/// block-crossers to their new owner, report every leg to rank 0, and
/// take part in master-counted termination. Returns the legs this rank
/// collected (non-empty on rank 0 only).
///
/// Extracted from [`trace_parallel`] so the model checker can run the
/// *real* protocol body — including its `#[cfg(test)]` mutant — under
/// `pvr-mc`'s guided schedules.
pub(crate) async fn tracer_rank(
    mut comm: pvr_mpisim::Comm,
    grid: [usize; 3],
    seeds: &[[f32; 3]],
    opts: &TracerOpts,
    field_fn: impl Fn([f32; 3]) -> [f32; 3],
    mode: ShutdownMode,
) -> Vec<DoneLeg> {
    let rank = comm.rank();
    let n = comm.size();
    let decomp = BlockDecomposition::new(grid, n);
    let owner_map = OwnerMap::new(&decomp);
    let block = decomp.block(rank);
    let stored = decomp.with_ghost(&block, TRACER_GHOST);
    let field = sample_block_field(grid, &stored, field_fn);
    let own_lo = [
        block.sub.offset[0] as f32,
        block.sub.offset[1] as f32,
        block.sub.offset[2] as f32,
    ];
    let oe = block.sub.end();
    let own_hi = [oe[0] as f32, oe[1] as f32, oe[2] as f32];

    // Seed my particles.
    let mut queue: Vec<Particle> = seeds
        .iter()
        .enumerate()
        .filter(|(_, s)| owner_map.owner_of(**s) == rank)
        .map(|(i, s)| Particle::new(i as u32, *s))
        .collect();

    let mut done_total = 0usize; // rank 0 only
    let mut legs: Vec<DoneLeg> = Vec::new(); // rank 0 only
    let mut finished = false;

    while !finished {
        // Drain local work.
        while let Some(p) = queue.pop() {
            let start_step = p.steps;
            let leg = trace_leg(&field, p, own_lo, own_hi, grid, opts);
            // Report the leg's path to rank 0.
            let msg = encode_done(
                leg.particle.id,
                start_step,
                leg.reason,
                leg.particle.steps,
                &leg.path,
            );
            if rank == 0 {
                legs.push(decode_done(&msg));
            } else {
                comm.send(0, TAG, msg).await;
            }
            match leg.reason {
                StopReason::LeftBlock => {
                    // The ownership test and the leg's inside test
                    // use identical comparisons, so the new owner is
                    // always a different rank.
                    let to = owner_map.owner_of(leg.particle.pos);
                    assert_ne!(to, rank, "handoff to self at {:?}", leg.particle.pos);
                    comm.send(to, TAG, encode_particle(&leg.particle)).await;
                }
                _ => {
                    if rank == 0 {
                        done_total += 1;
                    } else {
                        comm.send(0, TAG, vec![MSG_FINISH, 0]).await;
                    }
                }
            }
        }

        // Rank 0: all traces accounted for? Tell everyone, then
        // drain until every rank acks shutdown. Leg reports from
        // other ranks race with the finish report that completed
        // the count, so pending `MSG_DONE`s may still sit in the
        // queue; per-(src, tag) non-overtaking guarantees each
        // rank's legs are delivered before its ack, so seeing all
        // acks means all legs have been collected.
        if rank == 0 && done_total == seeds.len() {
            for r in 1..n {
                comm.send(r, TAG, vec![MSG_FINISH, 1]).await;
            }
            if mode.acked() {
                let mut acks = 0usize;
                while acks < n - 1 {
                    let (_, m) = comm.recv_any(TAG).await;
                    match m[0] {
                        MSG_DONE => legs.push(decode_done(&m)),
                        MSG_FINISH if m[1] == 2 => acks += 1,
                        other => unreachable!("unexpected message {other} during shutdown"),
                    }
                }
            }
            break;
        }
        if n == 1 {
            // Single rank with an empty queue and unfinished traces
            // cannot happen; guard against a hang regardless.
            break;
        }

        // Wait for work or control traffic.
        let (_, m) = comm.recv_any(TAG).await;
        match m[0] {
            MSG_PARTICLE => queue.push(decode_particle(&m)),
            MSG_DONE => legs.push(decode_done(&m)),
            MSG_FINISH => {
                if rank == 0 {
                    // A remote rank reports one terminal trace.
                    done_total += 1;
                } else {
                    // Shutdown order: ack it so rank 0 knows all
                    // our leg reports have been delivered.
                    if mode.acked() {
                        comm.send(0, TAG, vec![MSG_FINISH, 2]).await;
                    }
                    finished = true;
                }
            }
            other => unreachable!("unknown message type {other}"),
        }
    }
    legs
}

/// Trace `seeds` through the field defined by `field_fn` (an analytic
/// ground-truth velocity over cell space), distributed over `nprocs`
/// rank threads with block handoffs. Returns assembled traces sorted by
/// id; every leg's path points are preserved.
pub fn trace_parallel(
    grid: [usize; 3],
    nprocs: usize,
    seeds: &[[f32; 3]],
    opts: &TracerOpts,
    field_fn: impl Fn([f32; 3]) -> [f32; 3] + Send + Sync + Copy,
) -> Vec<AssembledTrace> {
    let seeds = seeds.to_vec();
    let opts = *opts;
    let seeds_ref = &seeds;
    let opts_ref = &opts;

    let mut results = pvr_mpisim::World::run(nprocs, move |comm| async move {
        tracer_rank(
            comm,
            grid,
            seeds_ref,
            opts_ref,
            field_fn,
            ShutdownMode::Acked,
        )
        .await
    });

    // Assemble at "rank 0"'s result.
    let legs = results.remove(0);
    let mut by_id: std::collections::BTreeMap<u32, Vec<DoneLeg>> =
        std::collections::BTreeMap::new();
    for l in legs {
        by_id.entry(l.id).or_default().push(l);
    }
    by_id
        .into_iter()
        .map(|(id, mut legs)| {
            legs.sort_by_key(|l| l.start_step);
            let mut path: Vec<[f32; 3]> = Vec::new();
            let mut reason = StopReason::LeftBlock;
            let mut steps = 0;
            for l in legs {
                let skip = usize::from(!path.is_empty()); // joint point repeats
                path.extend(l.path.into_iter().skip(skip));
                reason = l.reason;
                steps = l.steps;
            }
            AssembledTrace {
                id,
                reason,
                steps,
                path,
            }
        })
        .collect()
}

/// Sample the analytic field into a block's stored region (three
/// component volumes), matching the global lattice exactly.
fn sample_block_field(
    grid: [usize; 3],
    stored: &Subvolume,
    field_fn: impl Fn([f32; 3]) -> [f32; 3],
) -> SampledVecField {
    let mut comps = [
        Volume::zeros(stored.shape),
        Volume::zeros(stored.shape),
        Volume::zeros(stored.shape),
    ];
    let e = stored.end();
    for z in stored.offset[2]..e[2] {
        for y in stored.offset[1]..e[1] {
            for x in stored.offset[0]..e[0] {
                // Voxel centers in cell space.
                let v = field_fn([x as f32 + 0.5, y as f32 + 0.5, z as f32 + 0.5]);
                for (c, comp) in comps.iter_mut().enumerate() {
                    comp.set(
                        x - stored.offset[0],
                        y - stored.offset[1],
                        z - stored.offset[2],
                        v[c],
                    );
                }
            }
        }
    }
    let _ = grid;
    let [vx, vy, vz] = comps;
    SampledVecField::new(vx, vy, vz, stored.offset)
}

/// The serial reference: sample the same analytic field over the whole
/// grid and trace with the same options.
pub fn trace_serial_sampled(
    grid: [usize; 3],
    seeds: &[[f32; 3]],
    opts: &TracerOpts,
    field_fn: impl Fn([f32; 3]) -> [f32; 3],
) -> Vec<crate::tracer::TraceResult> {
    let whole = Subvolume::whole(grid);
    let field = sample_block_field(grid, &whole, field_fn);
    crate::tracer::trace(&field, seeds, grid, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vortex(p: [f32; 3]) -> [f32; 3] {
        // A tilted vortex plus drift: exercises all block faces,
        // bounded speed (< 2) so h = 0.5 keeps probes inside ghost.
        let (cx, cy) = (12.0, 12.0);
        [
            -(p[1] - cy) * 0.12 + 0.3,
            (p[0] - cx) * 0.12,
            0.25 * ((p[0] - cx) * 0.05).sin(),
        ]
    }

    #[test]
    fn distributed_equals_serial_bitwise() {
        let grid = [24usize, 24, 24];
        let seeds: Vec<[f32; 3]> = vec![
            [4.2, 4.7, 12.0],
            [12.0, 12.0, 4.0],
            [20.0, 6.0, 18.0],
            [7.5, 19.5, 9.1],
            [12.5, 3.2, 20.2],
        ];
        let opts = TracerOpts {
            h: 0.5,
            max_steps: 400,
            min_speed: 1e-7,
        };
        let serial = trace_serial_sampled(grid, &seeds, &opts, vortex);
        for nprocs in [2usize, 8, 12] {
            let par = trace_parallel(grid, nprocs, &seeds, &opts, vortex);
            assert_eq!(par.len(), seeds.len());
            for (t, s) in par.iter().zip(&serial) {
                assert_eq!(t.reason, s.reason, "id {} ({nprocs} ranks)", t.id);
                assert_eq!(t.steps, s.particle.steps, "id {}", t.id);
                assert_eq!(t.path.len(), s.path.len(), "id {}", t.id);
                for (a, b) in t.path.iter().zip(&s.path) {
                    assert_eq!(a, b, "id {}: paths diverge ({nprocs} ranks)", t.id);
                }
            }
        }
    }

    #[test]
    fn particles_cross_many_blocks() {
        // A fast straight field forces handoffs through every x block.
        let grid = [32usize, 8, 8];
        let f = |_: [f32; 3]| [1.5f32, 0.0, 0.0];
        let opts = TracerOpts {
            h: 0.5,
            max_steps: 200,
            min_speed: 1e-9,
        };
        let par = trace_parallel(grid, 4, &[[0.5, 4.0, 4.0]], &opts, f);
        assert_eq!(par.len(), 1);
        assert_eq!(par[0].reason, StopReason::LeftDomain);
        let end = par[0].path.last().unwrap();
        assert!(end[0] > 30.0, "stopped early at {end:?}");
        // Path is strictly monotone in x (no duplicated joints).
        for w in par[0].path.windows(2) {
            assert!(w[1][0] > w[0][0]);
        }
    }

    #[test]
    fn owner_map_matches_decomposition() {
        let decomp = BlockDecomposition::new([20, 14, 9], 12);
        let m = OwnerMap::new(&decomp);
        for b in decomp.blocks() {
            let e = b.sub.end();
            let probe = [
                b.sub.offset[0] as f32 + 0.1,
                b.sub.offset[1] as f32 + 0.1,
                b.sub.offset[2] as f32 + 0.1,
            ];
            assert_eq!(m.owner_of(probe), b.id, "low corner of block {}", b.id);
            let probe_hi = [e[0] as f32 - 0.1, e[1] as f32 - 0.1, e[2] as f32 - 0.1];
            assert_eq!(m.owner_of(probe_hi), b.id, "high corner of block {}", b.id);
        }
    }

    #[test]
    fn single_rank_works() {
        let grid = [16usize, 16, 16];
        let opts = TracerOpts::default();
        let par = trace_parallel(grid, 1, &[[8.0, 8.0, 8.0]], &opts, vortex);
        let ser = trace_serial_sampled(grid, &[[8.0, 8.0, 8.0]], &opts, vortex);
        assert_eq!(par[0].path, ser[0].path);
    }

    /// The tracer's rank body as a model-checkable program: sorted
    /// encoded legs, so per-rank results are comparable bit-for-bit
    /// regardless of collection order.
    type BoxFut<T> = std::pin::Pin<Box<dyn std::future::Future<Output = T>>>;

    fn mc_program(
        mode: ShutdownMode,
    ) -> impl Fn(pvr_mpisim::Comm) -> BoxFut<Vec<Vec<u8>>> + Send + Sync {
        // One seed in the middle block of three, swept straight
        // through the last block and out of the domain: rank 1 ships
        // the particle to rank 2 and reports an intermediate leg whose
        // MSG_DONE races rank 2's terminal finish report at rank 0.
        let grid = [24usize, 8, 8];
        let seeds = vec![[9.0f32, 4.0, 4.0]];
        let opts = TracerOpts {
            h: 0.5,
            max_steps: 200,
            min_speed: 1e-9,
        };
        let field = |_: [f32; 3]| [2.0f32, 0.0, 0.0];
        move |comm| {
            let seeds = seeds.clone();
            Box::pin(async move {
                let legs = tracer_rank(comm, grid, &seeds, &opts, field, mode).await;
                let mut enc: Vec<Vec<u8>> = legs
                    .iter()
                    .map(|l| encode_done(l.id, l.start_step, l.reason, l.steps, &l.path))
                    .collect();
                enc.sort();
                enc
            }) as BoxFut<Vec<Vec<u8>>>
        }
    }

    #[test]
    fn mc_verifies_acked_shutdown_exhaustively() {
        // The production protocol survives *every* wildcard-match
        // interleaving of the handoff scenario: same legs at rank 0,
        // no deadlock, no message lost.
        let report = pvr_mc::explore(3, mc_program(ShutdownMode::Acked), &Default::default());
        assert!(report.verified(), "violations: {:?}", report.violations);
        assert!(
            report.stats.traces > 1,
            "the scenario must actually race (got {} trace)",
            report.stats.traces
        );
    }

    #[test]
    fn mc_catches_unacked_shutdown_mutant_with_replayable_counterexample() {
        // Reintroduce the original unacked-shutdown bug: rank 0 exits
        // as soon as its count completes. Sampled probes usually see
        // the benign order; exhaustive DPOR must find the schedule
        // where rank 2's finish report overtakes rank 1's leg report
        // — and hand back a schedule that reproduces it.
        use pvr_mc::Schedule;
        use pvr_mpisim::{MatchPolicy, RunOptions, World};
        use std::sync::Arc;

        let report = pvr_mc::explore(
            3,
            mc_program(ShutdownMode::UnackedMutant),
            &Default::default(),
        );
        assert!(
            !report.violations.is_empty(),
            "the mutant must be caught (explored {} traces)",
            report.stats.traces
        );
        let baseline = report.baseline.as_ref().expect("baseline run succeeds");
        let v = &report.violations[0];

        // Persist → parse → replay: the counterexample survives the
        // JSON round-trip and deterministically reproduces the lost
        // leg under a guided run.
        let schedule = Schedule::from_json(&v.schedule.to_json()).unwrap();
        let replayed = World::run_opts(
            3,
            RunOptions::default().policy(MatchPolicy::Guided(Arc::new(schedule.to_guided()))),
            mc_program(ShutdownMode::UnackedMutant),
        )
        .expect("counterexample replays without deadlock");
        assert_ne!(
            &replayed.results, baseline,
            "replaying the counterexample must reproduce the divergence"
        );
    }

    #[test]
    fn supernova_velocity_traces() {
        // Trace through the actual supernova velocity field (sampled),
        // seeds ringed around the shock.
        use pvr_volume::SupernovaField;
        let grid = [24usize, 24, 24];
        let sn = SupernovaField::new(1530);
        let f = move |p: [f32; 3]| {
            let (x, y, z) = (p[0] / 24.0, p[1] / 24.0, p[2] / 24.0);
            [
                sn.sample_var(2, x, y, z) * 2.0,
                sn.sample_var(3, x, y, z) * 2.0,
                sn.sample_var(4, x, y, z) * 2.0,
            ]
        };
        let seeds: Vec<[f32; 3]> = (0..6)
            .map(|i| {
                let a = i as f32 / 6.0 * std::f32::consts::TAU;
                [12.0 + 9.0 * a.cos(), 12.0 + 9.0 * a.sin(), 12.0]
            })
            .collect();
        let opts = TracerOpts {
            h: 0.4,
            max_steps: 300,
            min_speed: 1e-5,
        };
        let par = trace_parallel(grid, 8, &seeds, &opts, f);
        let ser = trace_serial_sampled(grid, &seeds, &opts, f);
        assert_eq!(par.len(), 6);
        let mut moved = 0;
        for (t, s) in par.iter().zip(&ser) {
            assert_eq!(t.path, s.path, "id {}", t.id);
            if t.path.len() > 5 {
                moved += 1;
            }
        }
        assert!(moved >= 4, "only {moved} seeds moved");
    }
}
