//! Vector fields over the grid's cell space.

use pvr_volume::Volume;

/// A 3-component vector field over cell coordinates `[0, N]³`.
pub trait VecField {
    /// Sample the velocity at a cell-space position.
    fn sample(&self, p: [f32; 3]) -> [f32; 3];
}

impl<F: Fn([f32; 3]) -> [f32; 3]> VecField for F {
    fn sample(&self, p: [f32; 3]) -> [f32; 3] {
        self(p)
    }
}

/// A vector field sampled from three scalar volumes (e.g. the
/// supernova's velocity-x/y/z variables), each covering the same stored
/// region of the global grid.
///
/// Positions are *global* cell coordinates; `offset` locates the stored
/// region, exactly like `BlockDomain::stored` in the renderer — so a
/// block's field and the serial whole-grid field interpolate the same
/// lattice values.
pub struct SampledVecField {
    components: [Volume; 3],
    offset: [usize; 3],
}

impl SampledVecField {
    /// Wrap three component volumes stored at `offset` of the global
    /// grid. Panics if their dims disagree.
    pub fn new(vx: Volume, vy: Volume, vz: Volume, offset: [usize; 3]) -> Self {
        assert_eq!(vx.dims(), vy.dims());
        assert_eq!(vy.dims(), vz.dims());
        SampledVecField {
            components: [vx, vy, vz],
            offset,
        }
    }

    /// Whole-grid convenience (offset zero).
    pub fn whole(vx: Volume, vy: Volume, vz: Volume) -> Self {
        Self::new(vx, vy, vz, [0, 0, 0])
    }

    pub fn dims(&self) -> [usize; 3] {
        self.components[0].dims()
    }
}

impl VecField for SampledVecField {
    fn sample(&self, p: [f32; 3]) -> [f32; 3] {
        // Cell-space position -> voxel-center lattice of the stored
        // region (identical transform to the renderer's sampling).
        let local = [
            p[0] - self.offset[0] as f32 - 0.5,
            p[1] - self.offset[1] as f32 - 0.5,
            p[2] - self.offset[2] as f32 - 0.5,
        ];
        [
            self.components[0].sample_trilinear(local),
            self.components[1].sample_trilinear(local),
            self.components[2].sample_trilinear(local),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_fields_work() {
        let f = |p: [f32; 3]| [p[0], 2.0 * p[1], -p[2]];
        assert_eq!(f.sample([1.0, 2.0, 3.0]), [1.0, 4.0, -3.0]);
    }

    #[test]
    fn sampled_field_interpolates_components_independently() {
        let n = 4;
        let mut vx = Volume::zeros([n, n, n]);
        let vy = Volume::zeros([n, n, n]);
        let mut vz = Volume::zeros([n, n, n]);
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    vx.set(x, y, z, x as f32);
                    vz.set(x, y, z, 7.0);
                }
            }
        }
        let f = SampledVecField::whole(vx, vy, vz);
        let v = f.sample([2.0, 2.0, 2.0]); // voxel-center lattice 1.5
        assert!((v[0] - 1.5).abs() < 1e-6);
        assert_eq!(v[1], 0.0);
        assert_eq!(v[2], 7.0);
    }

    #[test]
    fn offset_field_matches_whole_field_inside() {
        // A window of a larger field samples identically where defined.
        let n = 8;
        let fill = |v: &mut Volume, off: [usize; 3]| {
            let d = v.dims();
            for z in 0..d[2] {
                for y in 0..d[1] {
                    for x in 0..d[0] {
                        let (gx, gy, gz) = (x + off[0], y + off[1], z + off[2]);
                        v.set(x, y, z, (gx + 10 * gy + 100 * gz) as f32);
                    }
                }
            }
        };
        let mut wx = Volume::zeros([n, n, n]);
        fill(&mut wx, [0, 0, 0]);
        let whole = SampledVecField::whole(wx.clone(), wx.clone(), wx.clone());

        let off = [2, 1, 3];
        let mut bx = Volume::zeros([4, 5, 4]);
        fill(&mut bx, off);
        let block = SampledVecField::new(bx.clone(), bx.clone(), bx, off);

        for probe in [[3.2f32, 2.7, 4.4], [4.0, 3.0, 5.0], [5.1, 4.9, 5.9]] {
            let a = whole.sample(probe);
            let b = block.sample(probe);
            for c in 0..3 {
                assert!(
                    (a[c] - b[c]).abs() < 1e-4,
                    "{probe:?} comp {c}: {a:?} vs {b:?}"
                );
            }
        }
    }
}
