//! RK4 streamline integration.

use crate::field::VecField;

/// A particle: position plus bookkeeping that survives block handoffs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    /// Trace identifier (stable across handoffs).
    pub id: u32,
    /// Current cell-space position.
    pub pos: [f32; 3],
    /// RK4 steps taken so far.
    pub steps: u32,
}

impl Particle {
    pub fn new(id: u32, pos: [f32; 3]) -> Self {
        Particle { id, pos, steps: 0 }
    }
}

/// Integration options.
#[derive(Debug, Clone, Copy)]
pub struct TracerOpts {
    /// RK4 step in cells. Must be ≤ 1 for the distributed tracer's
    /// ghost-layer guarantee.
    pub h: f32,
    /// Hard step limit per trace.
    pub max_steps: u32,
    /// Velocity magnitude below which a trace terminates (critical
    /// point).
    pub min_speed: f32,
}

impl Default for TracerOpts {
    fn default() -> Self {
        TracerOpts {
            h: 0.5,
            max_steps: 2000,
            min_speed: 1e-6,
        }
    }
}

/// Why a trace (or a block-local leg of one) stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Left the global domain.
    LeftDomain,
    /// Hit the step limit.
    MaxSteps,
    /// Velocity fell below `min_speed`.
    CriticalPoint,
    /// Left the *owned* region (distributed tracing only — hand off).
    LeftBlock,
}

/// A completed (or suspended) trace leg.
#[derive(Debug, Clone)]
pub struct TraceResult {
    pub particle: Particle,
    pub reason: StopReason,
    /// Positions visited (including start; excluding any position
    /// outside the global domain).
    pub path: Vec<[f32; 3]>,
}

#[inline]
fn add(a: [f32; 3], b: [f32; 3], s: f32) -> [f32; 3] {
    [a[0] + b[0] * s, a[1] + b[1] * s, a[2] + b[2] * s]
}

#[inline]
fn inside(p: [f32; 3], lo: [f32; 3], hi: [f32; 3]) -> bool {
    p[0] >= lo[0] && p[0] < hi[0] && p[1] >= lo[1] && p[1] < hi[1] && p[2] >= lo[2] && p[2] < hi[2]
}

/// One classical RK4 step through `field`.
#[inline]
pub fn rk4_step(field: &impl VecField, p: [f32; 3], h: f32) -> ([f32; 3], f32) {
    let k1 = field.sample(p);
    let k2 = field.sample(add(p, k1, h * 0.5));
    let k3 = field.sample(add(p, k2, h * 0.5));
    let k4 = field.sample(add(p, k3, h));
    let v = [
        (k1[0] + 2.0 * k2[0] + 2.0 * k3[0] + k4[0]) / 6.0,
        (k1[1] + 2.0 * k2[1] + 2.0 * k3[1] + k4[1]) / 6.0,
        (k1[2] + 2.0 * k2[2] + 2.0 * k3[2] + k4[2]) / 6.0,
    ];
    let speed = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    (add(p, v, h), speed)
}

/// Trace `particle` through `field` while it stays inside
/// `[owned_lo, owned_hi)`, bounded by the global domain `[0, grid)`.
/// For serial tracing pass the whole grid as the owned region.
pub fn trace_leg(
    field: &impl VecField,
    mut particle: Particle,
    owned_lo: [f32; 3],
    owned_hi: [f32; 3],
    grid: [usize; 3],
    opts: &TracerOpts,
) -> TraceResult {
    let glo = [0.0f32; 3];
    let ghi = [grid[0] as f32, grid[1] as f32, grid[2] as f32];
    let mut path = vec![particle.pos];
    loop {
        if particle.steps >= opts.max_steps {
            return TraceResult {
                particle,
                reason: StopReason::MaxSteps,
                path,
            };
        }
        let (next, speed) = rk4_step(field, particle.pos, opts.h);
        if speed < opts.min_speed {
            return TraceResult {
                particle,
                reason: StopReason::CriticalPoint,
                path,
            };
        }
        particle.steps += 1;
        if !inside(next, glo, ghi) {
            return TraceResult {
                particle,
                reason: StopReason::LeftDomain,
                path,
            };
        }
        particle.pos = next;
        path.push(next);
        if !inside(next, owned_lo, owned_hi) {
            return TraceResult {
                particle,
                reason: StopReason::LeftBlock,
                path,
            };
        }
    }
}

/// Serial tracing of many seeds through a whole-grid field.
pub fn trace(
    field: &impl VecField,
    seeds: &[[f32; 3]],
    grid: [usize; 3],
    opts: &TracerOpts,
) -> Vec<TraceResult> {
    let hi = [grid[0] as f32, grid[1] as f32, grid[2] as f32];
    seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| trace_leg(field, Particle::new(i as u32, s), [0.0; 3], hi, grid, opts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_field_moves_straight() {
        let f = |_: [f32; 3]| [1.0f32, 0.0, 0.0];
        let opts = TracerOpts {
            h: 0.5,
            max_steps: 10,
            min_speed: 1e-9,
        };
        let r = trace(&f, &[[1.0, 4.0, 4.0]], [64, 8, 8], &opts);
        assert_eq!(r[0].reason, StopReason::MaxSteps);
        let end = *r[0].path.last().unwrap();
        assert!((end[0] - 6.0).abs() < 1e-5);
        assert_eq!(end[1], 4.0);
        assert_eq!(end[2], 4.0);
        assert_eq!(r[0].particle.steps, 10);
    }

    #[test]
    fn trace_leaves_domain() {
        let f = |_: [f32; 3]| [-2.0f32, 0.0, 0.0];
        let r = trace(&f, &[[1.0, 2.0, 2.0]], [8, 4, 4], &TracerOpts::default());
        assert_eq!(r[0].reason, StopReason::LeftDomain);
        // The path never contains an outside position.
        for p in &r[0].path {
            assert!(p[0] >= 0.0);
        }
    }

    #[test]
    fn rotational_field_conserves_radius() {
        // v = (-y, x, 0) around the center of a 32^3 domain.
        let c = 16.0f32;
        let f = move |p: [f32; 3]| [-(p[1] - c), p[0] - c, 0.0];
        let opts = TracerOpts {
            h: 0.01,
            max_steps: 5000,
            min_speed: 1e-9,
        };
        let r = trace(&f, &[[22.0, 16.0, 16.0]], [32, 32, 32], &opts);
        let r0 = 6.0f32;
        for p in &r[0].path {
            let rad = ((p[0] - c).powi(2) + (p[1] - c).powi(2)).sqrt();
            assert!((rad - r0).abs() < 0.01, "radius drifted to {rad}");
        }
        // It actually went around (covers > half the circle).
        assert!(r[0].particle.steps as f32 * 0.01 * r0 > std::f32::consts::PI * r0);
    }

    #[test]
    fn critical_point_stops_the_trace() {
        let f = |p: [f32; 3]| {
            let d = 8.0 - p[0];
            [d * 0.5, 0.0, 0.0] // converges toward x = 8
        };
        let opts = TracerOpts {
            h: 0.5,
            max_steps: 100_000,
            min_speed: 1e-4,
        };
        let r = trace(&f, &[[2.0, 2.0, 2.0]], [16, 4, 4], &opts);
        assert_eq!(r[0].reason, StopReason::CriticalPoint);
        let end = r[0].path.last().unwrap();
        assert!((end[0] - 8.0).abs() < 0.01);
    }

    #[test]
    fn rk4_is_fourth_order_on_rotation() {
        // One full revolution error shrinks ~16x when h halves.
        let f = |p: [f32; 3]| [-(p[1]), p[0], 0.0];
        let start = [1.0f32, 0.0, 0.0];
        // Integrate exactly one revolution with N steps of h = 2*pi/N so
        // the endpoint error is pure truncation error.
        let err = |n: usize| {
            let h = 2.0 * std::f32::consts::PI / n as f32;
            let mut p = start;
            for _ in 0..n {
                p = rk4_step(&f, p, h).0;
            }
            ((p[0] - start[0]).powi(2) + (p[1] - start[1]).powi(2)).sqrt()
        };
        // Coarse steps so truncation dominates f32 roundoff.
        let e1 = err(8);
        let e2 = err(16);
        assert!(e1 / e2 > 8.0, "convergence order too low: {e1} / {e2}");
    }
}
