//! # pvr-flow — parallel particle tracing
//!
//! The paper's Section VI promises to "implement and test other
//! visualization algorithms at these scales"; the authors' next major
//! system was exactly this — parallel particle tracing over
//! block-decomposed vector fields (Peterka et al., "A Study of Parallel
//! Particle Tracing for Steady-State and Time-Varying Flow Fields",
//! IPDPS 2011). This crate implements that algorithm on the same
//! substrate as the volume renderer:
//!
//! * [`field`] — vector fields over cell space: analytic, or three
//!   sampled component [`pvr_volume::Volume`]s (the supernova's
//!   velocity components, read through the same I/O machinery).
//! * [`tracer`] — fourth-order Runge–Kutta streamline integration with
//!   fixed step, domain exit, and step limits.
//! * [`parallel`] — distributed tracing: each rank holds one block
//!   (plus ghost); a particle advances while inside its owner's region
//!   and is handed off over real `pvr-mpisim` messages when it crosses
//!   a block face, with rank-0 termination detection. With a two-cell
//!   ghost layer and steps ≤ 1 cell, distributed trajectories are
//!   **bit-identical** to the serial tracer's — the same guarantee the
//!   renderer provides, and the tests assert it.

pub mod field;
pub mod parallel;
pub mod tracer;

pub use field::{SampledVecField, VecField};
pub use parallel::trace_parallel;
pub use tracer::{trace, Particle, TraceResult, TracerOpts};
