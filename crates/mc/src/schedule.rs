//! Persistent counterexample schedules.
//!
//! A schedule is the per-rank list of sources the explorer forced each
//! wildcard receive to match — the same shape
//! [`ReplayLog`](pvr_mpisim::trace::ReplayLog) records and
//! [`GuidedSchedule`](pvr_mpisim::GuidedSchedule) forces. Violations
//! are persisted as JSON (hand-rolled; the workspace builds with no
//! registry access, so the small parser in `pvr-faults` is reused) so
//! a failing exploration leaves behind a file a later session can load
//! and replay without re-exploring anything.

use pvr_faults::json::{parse, Json};
use pvr_mpisim::trace::ReplayLog;
use pvr_mpisim::GuidedSchedule;

/// A wildcard-match schedule: `prefix[rank][i]` is the source rank
/// `rank`'s `i`-th wildcard receive matches. When `complete` (see
/// [`crate::Violation::complete`]) it covers every wildcard of the run
/// and can be replayed via `MatchPolicy::Replay`; otherwise replay it
/// via `MatchPolicy::Guided`, which pins the prefix and continues
/// deterministically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    pub prefix: Vec<Vec<usize>>,
}

impl Schedule {
    pub fn new(prefix: Vec<Vec<usize>>) -> Self {
        Schedule { prefix }
    }

    /// As a replay log (for `MatchPolicy::Replay`; panics at runtime if
    /// the program needs more wildcards than the schedule covers —
    /// only use on complete schedules).
    pub fn to_replay(&self) -> ReplayLog {
        ReplayLog::from_choices(self.prefix.clone())
    }

    /// As a guided schedule (for `MatchPolicy::Guided`; always safe —
    /// wildcards past the prefix fall back to min-source).
    pub fn to_guided(&self) -> GuidedSchedule {
        GuidedSchedule::new(self.prefix.clone())
    }

    /// Serialize: `{"version":1,"prefix":[[...],...]}`.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("version".into(), Json::Num(1.0)),
            (
                "prefix".into(),
                Json::Arr(
                    self.prefix
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(|&s| Json::Num(s as f64)).collect()))
                        .collect(),
                ),
            ),
        ])
        .to_string()
    }

    /// Parse what [`Schedule::to_json`] emits.
    pub fn from_json(text: &str) -> Result<Schedule, String> {
        let root = parse(text)?;
        let obj = root.as_obj().ok_or("schedule: expected a JSON object")?;
        let version = obj
            .iter()
            .find(|(k, _)| k == "version")
            .and_then(|(_, v)| v.as_num())
            .ok_or("schedule: missing version")?;
        if version != 1.0 {
            return Err(format!("schedule: unsupported version {version}"));
        }
        let prefix_val = obj
            .iter()
            .find(|(k, _)| k == "prefix")
            .map(|(_, v)| v)
            .ok_or("schedule: missing prefix")?;
        let Json::Arr(rows) = prefix_val else {
            return Err("schedule: prefix must be an array".into());
        };
        let mut prefix = Vec::with_capacity(rows.len());
        for (r, row) in rows.iter().enumerate() {
            let Json::Arr(cells) = row else {
                return Err(format!("schedule: prefix[{r}] must be an array"));
            };
            let mut out = Vec::with_capacity(cells.len());
            for c in cells {
                let v = c
                    .as_num()
                    .ok_or_else(|| format!("schedule: prefix[{r}] holds a non-number"))?;
                if v < 0.0 || v.fract() != 0.0 {
                    return Err(format!("schedule: prefix[{r}] holds non-index {v}"));
                }
                out.push(v as usize);
            }
            prefix.push(out);
        }
        Ok(Schedule { prefix })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let s = Schedule::new(vec![vec![2, 1, 1], vec![], vec![0]]);
        let text = s.to_json();
        assert_eq!(Schedule::from_json(&text).unwrap(), s);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Schedule::from_json("[]").is_err());
        assert!(Schedule::from_json("{\"version\":2,\"prefix\":[]}").is_err());
        assert!(Schedule::from_json("{\"version\":1,\"prefix\":[[1.5]]}").is_err());
        assert!(Schedule::from_json("{\"version\":1}").is_err());
    }
}
