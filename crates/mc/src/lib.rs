//! Stateless model checking of `pvr-mpisim` programs with dynamic
//! partial-order reduction (DPOR).
//!
//! The randomized probes in `pvr-verify` (`MatchPolicy::Perturb`,
//! single-swap replays) sample wildcard-match interleavings; they prove
//! nothing about the orders they never draw. This crate turns the probe
//! into a *sound verdict at small n*: every inequivalent way the
//! program's wildcard receives could have matched its sends is
//! enumerated, and every enumerated trace is checked for result
//! bit-identity, deadlock-freedom, and message conservation.
//!
//! ## How exploration works
//!
//! An execution of a deterministic rank program is fully determined by
//! its *match function*: which send each wildcard receive consumed
//! (payloads, branches, and every `recv_from` follow from that). Two
//! schedulings with the same match function are Mazurkiewicz-equivalent
//! for our invariants — per-rank results are functions of the messages
//! each rank consumed, in the order it consumed them. So the explorer
//! enumerates match functions, never raw thread schedules:
//!
//! 1. **Run** the program under [`MatchPolicy::Guided`] with some
//!    forced prefix (initially empty ⇒ plain min-source), tracing on.
//! 2. **Derive backtracks**: for every wildcard receive `w` in the
//!    trace, every send `s` that `w` could have matched instead —
//!    `s` targets the same (receiver, tag), is next-in-stream under
//!    per-(source, tag) FIFO given the receives before `w` in program
//!    order, and is not happens-after `w` (vector clocks, recorded in
//!    the trace) — yields a new forced prefix: every choice made
//!    before `w` in this execution, then `w := s`.
//! 3. **Prune**: a proposed prefix already enqueued or explored is
//!    dropped (the sleep-set discipline: a branch is explored from one
//!    representative only); a run whose complete match function was
//!    already seen contributes no new proposals.
//! 4. Repeat depth-first until the frontier is empty.
//!
//! Candidate sends are *feasible* by the standard DPOR argument: every
//! event the forced prefix needs happens-before `w`, and forcing
//! `w := s` cannot unpost `s` because `s` does not causally depend on
//! `w`. Pruning is *sound* for our invariants because they are
//! functions of the match function alone, so checking one
//! representative per class checks the class.
//!
//! On a violation the offending schedule is returned (and can be
//! persisted as JSON via [`Schedule`]) for deterministic replay through
//! `MatchPolicy::Replay`/`Guided` — no re-exploration needed to debug.
//!
//! ## What this is not
//!
//! Exploration is exhaustive over *blocking* wildcard receives of a
//! deterministic program. Timed/poll receives (`recv_any_timeout`,
//! `try_recv_any`) resolve by wall clock and are not choice points;
//! programs built on them (the ft pipeline's deadlined receives) must
//! be model-checked through a blocking model of their protocol, which
//! is what `verify_mc`'s ack/retransmit model does.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pvr_mpisim::trace::{clock_leq, Clock, ReplayLog, TraceEvent, TraceLog};
use pvr_mpisim::{Comm, GuidedSchedule, MatchPolicy, RunError, RunOptions, World};

mod schedule;
pub use schedule::Schedule;

/// Exploration knobs.
#[derive(Clone)]
pub struct McOptions {
    /// Hard cap on executions (a state-space blowup becomes an
    /// incomplete report, not a hang).
    pub max_runs: u64,
    /// Wall-clock budget for the whole exploration.
    pub time_budget: Option<Duration>,
    /// Stop at the first violation (default) or keep enumerating.
    pub stop_on_violation: bool,
    /// Check per-link send/receive conservation on every trace.
    pub check_conservation: bool,
    /// Registry to emit `mc.*` explorer stats into, with this label
    /// (e.g. `"model=direct,n=6,m=2"`).
    pub metrics: Option<(Arc<pvr_obs::Registry>, String)>,
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions {
            max_runs: 500_000,
            time_budget: None,
            stop_on_violation: true,
            check_conservation: true,
            metrics: None,
        }
    }
}

/// Exploration statistics (the ISSUE's explored/pruned trace counts).
#[derive(Debug, Clone, Default)]
pub struct McStats {
    /// Executions performed.
    pub runs: u64,
    /// Distinct match-function classes explored (≤ `runs`).
    pub traces: u64,
    /// Executions that converged to an already-explored class
    /// (distinct guided prefixes, same completion).
    pub redundant_runs: u64,
    /// Wildcard receives across all distinct traces.
    pub choice_points: u64,
    /// Sound alternative matches identified (branch proposals).
    pub backtrack_points: u64,
    /// Proposals dropped because an identical prefix was already
    /// enqueued or explored — the sleep-set prunes.
    pub sleep_prunes: u64,
    /// Per-choice-point alternatives excluded by per-(source, tag)
    /// FIFO order or by happens-before (the partial-order reduction
    /// itself, counted against a policy-blind enumerator).
    pub candidate_prunes: u64,
    /// Peak depth-first frontier size.
    pub peak_frontier: usize,
    /// `W!` for the baseline trace's `W` wildcard receives: the global
    /// match orderings a reduction-free stateless checker would have
    /// to consider. `f64` because it overflows u64 immediately.
    pub naive_orderings: f64,
    /// Wall time spent exploring.
    pub wall: Duration,
    /// False iff `max_runs`/`time_budget` stopped exploration early.
    pub complete: bool,
}

impl McStats {
    /// Fraction of the naive ordering space DPOR never had to run:
    /// `1 - runs / naive_orderings` (0 when nothing was saved).
    pub fn pruned_fraction(&self) -> f64 {
        if self.naive_orderings <= 0.0 {
            return 0.0;
        }
        (1.0 - self.runs as f64 / self.naive_orderings).max(0.0)
    }
}

/// Why a trace failed.
#[derive(Debug, Clone)]
pub enum ViolationKind {
    /// Per-rank results differ from the baseline trace's (bit-identity
    /// broken; `ranks` lists the differing ranks).
    Divergence { ranks: Vec<usize> },
    /// The guided run deadlocked (report names the wait-for cycle).
    Deadlock { report: String },
    /// The guided run stalled out the watchdog.
    Stall { report: String },
    /// A rank panicked (assertion failure, protocol bug, ...).
    Panic { message: String },
    /// A built-in invariant failed (currently: message conservation).
    Invariant { message: String },
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViolationKind::Divergence { ranks } => {
                write!(f, "result diverges from baseline at ranks {ranks:?}")
            }
            ViolationKind::Deadlock { report } => write!(f, "deadlock: {report}"),
            ViolationKind::Stall { report } => write!(f, "stall: {report}"),
            ViolationKind::Panic { message } => write!(f, "panic: {message}"),
            ViolationKind::Invariant { message } => write!(f, "invariant: {message}"),
        }
    }
}

/// A failing trace with the schedule that reproduces it.
#[derive(Debug, Clone)]
pub struct Violation {
    pub kind: ViolationKind,
    /// Replay this to reproduce the failure deterministically.
    pub schedule: Schedule,
    /// True when `schedule` covers every wildcard of the failing run
    /// (replayable via `MatchPolicy::Replay`); false when the run died
    /// before completing (deadlock/panic) — replay those via
    /// `MatchPolicy::Guided`, which pins the prefix that triggers the
    /// failure and lets the rest run deterministically.
    pub complete: bool,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [schedule: {}{}]",
            self.kind,
            self.schedule.to_json(),
            if self.complete { "" } else { " (prefix)" }
        )
    }
}

/// Outcome of an exhaustive exploration.
#[derive(Debug)]
pub struct McReport<T> {
    /// Per-rank results of the baseline (empty-schedule, min-source)
    /// run; `None` iff the baseline itself failed.
    pub baseline: Option<Vec<T>>,
    pub stats: McStats,
    /// Empty iff every explored trace satisfied every invariant.
    pub violations: Vec<Violation>,
}

impl<T> McReport<T> {
    /// Sound verdict: every inequivalent interleaving explored, none
    /// violated anything.
    pub fn verified(&self) -> bool {
        self.violations.is_empty() && self.stats.complete
    }
}

/// One wildcard receive of a trace, with what the backtrack analysis
/// needs.
struct WildcardSite {
    rank: usize,
    /// Rank-local wildcard ordinal.
    widx: u64,
    /// Global position in the trace's event order.
    pos: usize,
    /// Sound alternative sources (≠ chosen) this receive could have
    /// matched instead.
    alternatives: Vec<usize>,
}

/// Per-trace analysis: every wildcard site with its sound alternative
/// matches, plus pruning counters.
fn analyze(
    trace: &TraceLog,
    n: usize,
    stats: &mut McStats,
) -> (Vec<WildcardSite>, Vec<Vec<usize>>) {
    // Sends per (from, to, tag), indexed by seq.
    use std::collections::HashMap;
    let mut sends: HashMap<(usize, usize, u32), Vec<&Clock>> = HashMap::new();
    for e in &trace.events {
        if let TraceEvent::Send {
            from,
            to,
            tag,
            seq,
            clock,
            ..
        } = e
        {
            let v = sends.entry((*from, *to, *tag)).or_default();
            debug_assert_eq!(*seq as usize, v.len(), "sends scanned in seq order");
            v.push(clock);
        }
    }

    let mut sites = Vec::new();
    // Per rank, the global event position of each wildcard in widx
    // order (trace events append in execution order, so per-rank
    // positions increase with program order).
    let mut wildcard_positions: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Next expected seq per (rank, src, tag) stream as receives occur
    // in program order.
    let mut matched: HashMap<(usize, usize, u32), usize> = HashMap::new();
    for (pos, e) in trace.events.iter().enumerate() {
        let TraceEvent::Recv {
            rank,
            src,
            tag,
            wildcard,
            recv_clock,
            ..
        } = e
        else {
            continue;
        };
        if let Some(w) = wildcard {
            let mut alternatives = Vec::new();
            for q in 0..n {
                if q == *src {
                    continue;
                }
                let next = *matched.get(&(*rank, q, *tag)).unwrap_or(&0);
                let Some(stream) = sends.get(&(q, *rank, *tag)) else {
                    continue;
                };
                if next >= stream.len() {
                    continue; // stream fully consumed before w
                }
                // Later messages of the stream can never be matched by
                // w: FIFO pins them behind `next`.
                stats.candidate_prunes += (stream.len() - next - 1) as u64;
                if clock_leq(recv_clock, stream[next]) {
                    // The send happens-after w: it only exists because
                    // w matched what it matched.
                    stats.candidate_prunes += 1;
                } else {
                    alternatives.push(q);
                }
            }
            debug_assert_eq!(
                *w as usize,
                wildcard_positions[*rank].len(),
                "wildcards appear in widx order per rank"
            );
            wildcard_positions[*rank].push(pos);
            sites.push(WildcardSite {
                rank: *rank,
                widx: *w,
                pos,
                alternatives,
            });
        }
        *matched.entry((*rank, *src, *tag)).or_insert(0) += 1;
    }
    (sites, wildcard_positions)
}

/// The forced prefix that reverses site `w` to match `alt` instead:
/// rank `w.rank` keeps its choices before `w`, then forces `alt`;
/// every other rank keeps exactly the choices it had already made when
/// `w` executed (the execution-order prefix, as in classic DPOR).
/// Those choices were made before `w` matched, so they cannot depend
/// on it and stay feasible; trimming them any further (e.g. to the
/// happens-before set) loses the context that distinguishes branches
/// and makes the prefix dedupe unsound.
fn reversal_prefix(
    full: &[Vec<usize>],
    wildcard_positions: &[Vec<usize>],
    w: &WildcardSite,
    alt: usize,
) -> Vec<Vec<usize>> {
    let n = full.len();
    let mut prefix: Vec<Vec<usize>> = Vec::with_capacity(n);
    for r in 0..n {
        if r == w.rank {
            let mut row = full[r][..w.widx as usize].to_vec();
            row.push(alt);
            prefix.push(row);
        } else {
            let keep = wildcard_positions[r]
                .iter()
                .take_while(|&&p| p < w.pos)
                .count();
            prefix.push(full[r][..keep].to_vec());
        }
    }
    prefix
}

fn factorial_f64(k: u64) -> f64 {
    let mut acc = 1.0f64;
    for i in 2..=k {
        acc *= i as f64;
        if !acc.is_finite() {
            break;
        }
    }
    acc
}

/// Message conservation: every send delivered, per (from, to, tag).
/// (Dropped sends record no `Send` event, so fault-injected drops do
/// not trip this.) A surplus send at exit means a rank terminated with
/// traffic still in flight — the unacked-shutdown class of bug.
fn check_conservation(trace: &TraceLog) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut balance: BTreeMap<(usize, usize, u32), i64> = BTreeMap::new();
    for e in &trace.events {
        match e {
            TraceEvent::Send { from, to, tag, .. } => {
                *balance.entry((*from, *to, *tag)).or_default() += 1
            }
            TraceEvent::Recv { rank, src, tag, .. } => {
                *balance.entry((*src, *rank, *tag)).or_default() -= 1
            }
            _ => {}
        }
    }
    let lost: Vec<String> = balance
        .iter()
        .filter(|(_, &d)| d != 0)
        .map(|((f, t, tag), d)| format!("link {f}->{t} tag {tag}: {d} sends undelivered"))
        .collect();
    if lost.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "message conservation violated: {}",
            lost.join("; ")
        ))
    }
}

/// Exhaustively explore every inequivalent wildcard-match interleaving
/// of `program` on `n` ranks, checking bit-identity against the
/// baseline run, deadlock-freedom, and message conservation.
///
/// Never returns `Err` for schedule-induced failures — those are
/// [`Violation`]s in the report. (The `Result` is kept for future
/// explorer-internal errors; exploration itself is total.)
pub fn explore<T, F, Fut>(n: usize, program: F, opts: &McOptions) -> McReport<T>
where
    T: Send + PartialEq + Clone,
    F: Fn(Comm) -> Fut + Send + Sync,
    Fut: std::future::Future<Output = T>,
{
    let t0 = Instant::now();
    let mut stats = McStats {
        complete: true,
        ..McStats::default()
    };
    let mut violations: Vec<Violation> = Vec::new();
    let mut baseline: Option<Vec<T>> = None;

    let root: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut stack: Vec<Vec<Vec<usize>>> = vec![root.clone()];
    let mut seen_prefixes: HashSet<Vec<Vec<usize>>> = HashSet::new();
    seen_prefixes.insert(root);
    let mut seen_traces: HashSet<Vec<Vec<usize>>> = HashSet::new();

    while let Some(prefix) = stack.pop() {
        if stats.runs >= opts.max_runs || opts.time_budget.is_some_and(|b| t0.elapsed() >= b) {
            stats.complete = false;
            break;
        }
        stats.runs += 1;
        let sched = Arc::new(GuidedSchedule::new(prefix.clone()));
        let run_opts = RunOptions::default()
            .policy(MatchPolicy::Guided(sched))
            .traced();
        let outcome = catch_unwind(AssertUnwindSafe(|| World::run_opts(n, run_opts, &program)));
        let out = match outcome {
            Err(payload) => {
                let message = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic".into());
                violations.push(Violation {
                    kind: ViolationKind::Panic { message },
                    schedule: Schedule::new(prefix),
                    complete: false,
                });
                if opts.stop_on_violation {
                    break;
                }
                continue;
            }
            Ok(Err(e)) => {
                let kind = match &e {
                    RunError::Deadlock { report } => ViolationKind::Deadlock {
                        report: report.clone(),
                    },
                    RunError::Stalled { report } => ViolationKind::Stall {
                        report: report.clone(),
                    },
                };
                violations.push(Violation {
                    kind,
                    schedule: Schedule::new(prefix),
                    complete: false,
                });
                if opts.stop_on_violation {
                    break;
                }
                continue;
            }
            Ok(Ok(out)) => out,
        };

        let trace = out.trace.expect("guided runs are traced");
        let full = ReplayLog::from_trace(&trace).per_rank().to_vec();
        debug_assert!(
            full.iter()
                .zip(&prefix)
                .all(|(f, p)| f.len() >= p.len() && f[..p.len()] == p[..]),
            "guided run did not honour its forced prefix — does the \
             program use timed receives as choice points?"
        );
        if !seen_traces.insert(full.clone()) {
            // Same match function as an earlier run: identical
            // execution, identical proposals. Nothing new.
            stats.redundant_runs += 1;
            continue;
        }
        stats.traces += 1;

        // Invariants.
        match &baseline {
            None => {
                stats.naive_orderings = factorial_f64(trace.wildcard_count() as u64);
                baseline = Some(out.results);
            }
            Some(base) => {
                if out.results != *base {
                    let ranks: Vec<usize> = out
                        .results
                        .iter()
                        .zip(base)
                        .enumerate()
                        .filter(|(_, (a, b))| a != b)
                        .map(|(r, _)| r)
                        .collect();
                    violations.push(Violation {
                        kind: ViolationKind::Divergence { ranks },
                        schedule: Schedule::new(full.clone()),
                        complete: true,
                    });
                    if opts.stop_on_violation {
                        break;
                    }
                }
            }
        }
        if opts.check_conservation {
            if let Err(message) = check_conservation(&trace) {
                violations.push(Violation {
                    kind: ViolationKind::Invariant { message },
                    schedule: Schedule::new(full.clone()),
                    complete: true,
                });
                if opts.stop_on_violation {
                    break;
                }
            }
        }

        // Backtrack-set computation and branch enqueueing.
        let (sites, wildcard_positions) = analyze(&trace, n, &mut stats);
        stats.choice_points += sites.len() as u64;
        for site in &sites {
            for &alt in &site.alternatives {
                stats.backtrack_points += 1;
                let proposal = reversal_prefix(&full, &wildcard_positions, site, alt);
                if seen_prefixes.insert(proposal.clone()) {
                    stack.push(proposal);
                    stats.peak_frontier = stats.peak_frontier.max(stack.len());
                } else {
                    stats.sleep_prunes += 1;
                }
            }
        }
    }

    stats.wall = t0.elapsed();
    if let Some((registry, label)) = &opts.metrics {
        registry.counter_add("mc.runs", label, stats.runs);
        registry.counter_add("mc.traces", label, stats.traces);
        registry.counter_add("mc.redundant_runs", label, stats.redundant_runs);
        registry.counter_add("mc.choice_points", label, stats.choice_points);
        registry.counter_add("mc.backtrack_points", label, stats.backtrack_points);
        registry.counter_add("mc.sleep_prunes", label, stats.sleep_prunes);
        registry.counter_add("mc.candidate_prunes", label, stats.candidate_prunes);
        registry.counter_add("mc.violations", label, violations.len() as u64);
        registry.gauge_set("mc.peak_frontier", label, stats.peak_frontier as i64);
        registry.gauge_set("mc.complete", label, i64::from(stats.complete));
    }

    McReport {
        baseline,
        stats,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Boxed rank-program future: helpers returning closures cannot
    /// name the async block's type, so they box it.
    type BoxFut<T> = std::pin::Pin<Box<dyn std::future::Future<Output = T>>>;

    /// `k` senders (ranks 1..=k) each send one message to rank 0; rank
    /// 0 matches them with wildcards and returns the match order.
    fn fan_in(k: usize) -> impl Fn(Comm) -> BoxFut<Vec<usize>> + Send + Sync {
        move |mut comm: Comm| -> BoxFut<Vec<usize>> {
            Box::pin(async move {
                if comm.rank() == 0 {
                    let mut v = Vec::with_capacity(k);
                    for _ in 0..k {
                        v.push(comm.recv_any(1).await.0);
                    }
                    v
                } else {
                    comm.send(0, 1, vec![comm.rank() as u8]).await;
                    Vec::new()
                }
            })
        }
    }

    /// Order-*independent* fan-in: rank 0 sorts what it matched.
    fn fan_in_sorted(k: usize) -> impl Fn(Comm) -> BoxFut<Vec<usize>> + Send + Sync {
        let inner = fan_in(k);
        move |comm: Comm| -> BoxFut<Vec<usize>> {
            let fut = inner(comm);
            Box::pin(async move {
                let mut v = fut.await;
                v.sort_unstable();
                v
            })
        }
    }

    #[test]
    fn enumerates_all_match_orders_of_a_fan_in() {
        // 3 concurrent single-message senders: exactly 3! inequivalent
        // match functions, none violating anything (results sorted).
        let report = explore(4, fan_in_sorted(3), &McOptions::default());
        assert!(report.verified(), "violations: {:?}", report.violations);
        assert_eq!(report.stats.traces, 6);
        assert!(report.stats.complete);
        // Every run converged to a distinct class or was counted
        // redundant; nothing lost.
        assert_eq!(
            report.stats.runs,
            report.stats.traces + report.stats.redundant_runs
        );
    }

    #[test]
    fn independent_receivers_multiply() {
        // Ranks 1, 2 each send to ranks 0 and 3: two independent 2-way
        // fan-ins ⇒ 2! × 2! = 4 classes.
        let program = |mut comm: Comm| async move {
            match comm.rank() {
                0 | 3 => {
                    let mut v = Vec::with_capacity(2);
                    for _ in 0..2 {
                        v.push(comm.recv_any(1).await.0);
                    }
                    v.sort_unstable();
                    v
                }
                r => {
                    comm.send(0, 1, vec![r as u8]).await;
                    comm.send(3, 1, vec![r as u8]).await;
                    Vec::new()
                }
            }
        };
        let report = explore(4, program, &McOptions::default());
        assert!(report.verified(), "violations: {:?}", report.violations);
        assert_eq!(report.stats.traces, 4);
    }

    #[test]
    fn fifo_streams_prune_candidates() {
        // Rank 1 sends two messages (FIFO-pinned), rank 2 one: the
        // distinct interleavings of [a, a, b] are 3, not 3!.
        let program = |mut comm: Comm| async move {
            match comm.rank() {
                0 => {
                    let mut v = Vec::with_capacity(3);
                    for _ in 0..3 {
                        v.push(comm.recv_any(1).await.0);
                    }
                    v.sort_unstable();
                    v
                }
                1 => {
                    comm.send(0, 1, vec![1]).await;
                    comm.send(0, 1, vec![2]).await;
                    Vec::new()
                }
                _ => {
                    comm.send(0, 1, vec![3]).await;
                    Vec::new()
                }
            }
        };
        let report = explore(3, program, &McOptions::default());
        assert!(report.verified(), "violations: {:?}", report.violations);
        assert_eq!(report.stats.traces, 3);
        assert!(
            report.stats.candidate_prunes > 0,
            "the second message of rank 1's stream must be FIFO-pruned"
        );
    }

    #[test]
    fn causal_chains_have_one_class() {
        // rank 1 -> 0; then 0 -> 2; then 2 -> 0. The second wildcard's
        // send happens-after the first receive: no reversal exists.
        let program = |mut comm: Comm| async move {
            match comm.rank() {
                0 => {
                    let a = comm.recv_any(1).await.0;
                    comm.send(2, 2, vec![0]).await;
                    let b = comm.recv_any(1).await.0;
                    vec![a, b]
                }
                1 => {
                    comm.send(0, 1, vec![1]).await;
                    Vec::new()
                }
                _ => {
                    let _ = comm.recv_from(0, 2).await;
                    comm.send(0, 1, vec![2]).await;
                    Vec::new()
                }
            }
        };
        let report = explore(3, program, &McOptions::default());
        assert!(report.verified(), "violations: {:?}", report.violations);
        assert_eq!(report.stats.traces, 1);
        assert_eq!(report.stats.backtrack_points, 0);
    }

    #[test]
    fn order_dependent_result_is_caught_with_replayable_schedule() {
        // Raw match order escapes as the result: every order but the
        // baseline's diverges. The counterexample must reproduce under
        // plain Replay after a JSON round-trip.
        let report = explore(4, fan_in(3), &McOptions::default());
        assert!(!report.verified());
        let v = report
            .violations
            .iter()
            .find(|v| matches!(v.kind, ViolationKind::Divergence { .. }))
            .expect("a divergence violation");
        assert!(v.complete, "a completed run yields a full schedule");

        let schedule = Schedule::from_json(&v.schedule.to_json()).unwrap();
        let replay = Arc::new(schedule.to_replay());
        let replayed = World::run_opts(
            4,
            RunOptions::default().policy(MatchPolicy::Replay(replay)),
            fan_in(3),
        )
        .unwrap();
        assert_ne!(
            replayed.results,
            report.baseline.as_ref().unwrap().clone(),
            "replaying the counterexample must reproduce the divergence"
        );
    }

    #[test]
    fn schedule_dependent_deadlock_is_caught() {
        // Rank 0 deadlocks iff its first wildcard matches rank 2: it
        // then waits for a tag-9 message nobody sends. Only DPOR-style
        // enumeration finds this reliably.
        let program = |mut comm: Comm| async move {
            match comm.rank() {
                0 => {
                    let (src, _) = comm.recv_any(1).await;
                    if src == 2 {
                        let _ = comm.recv_from(2, 9).await;
                    }
                    let _ = comm.recv_any(1).await;
                }
                r => comm.send(0, 1, vec![r as u8]).await,
            };
            0usize
        };
        let report = explore(3, program, &McOptions::default());
        let v = report
            .violations
            .iter()
            .find(|v| matches!(v.kind, ViolationKind::Deadlock { .. }))
            .expect("the src==2-first schedule must deadlock");
        // The prefix pins rank 0's first wildcard to source 2.
        assert_eq!(v.schedule.prefix[0][0], 2);
        assert!(!v.complete);
    }

    #[test]
    fn lost_message_violates_conservation() {
        // Rank 1 sends two messages but rank 0 consumes only one: the
        // second send is never delivered.
        let program = |mut comm: Comm| async move {
            match comm.rank() {
                0 => {
                    let _ = comm.recv_any(1).await;
                }
                _ => {
                    comm.send(0, 1, vec![1]).await;
                    comm.send(0, 1, vec![2]).await;
                }
            };
            0usize
        };
        let report = explore(2, program, &McOptions::default());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::Invariant { .. })));
    }

    #[test]
    fn run_cap_reports_incomplete() {
        let opts = McOptions {
            max_runs: 3,
            ..McOptions::default()
        };
        let report = explore(5, fan_in_sorted(4), &opts);
        assert!(!report.stats.complete);
        assert!(!report.verified());
        assert!(report.violations.is_empty());
    }

    #[test]
    fn metrics_are_emitted() {
        let registry = Arc::new(pvr_obs::Registry::new());
        let opts = McOptions {
            metrics: Some((Arc::clone(&registry), "model=test".into())),
            ..McOptions::default()
        };
        let report = explore(3, fan_in_sorted(2), &opts);
        assert!(report.verified());
        assert_eq!(
            registry.counter_value("mc.traces", "model=test"),
            Some(report.stats.traces)
        );
        assert_eq!(
            registry.counter_value("mc.runs", "model=test"),
            Some(report.stats.runs)
        );
    }
}
