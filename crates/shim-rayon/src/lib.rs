//! In-tree stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so the workspace cannot
//! depend on the real rayon. This shim implements the subset of rayon's
//! API this workspace actually uses — `par_iter`, `into_par_iter`,
//! `par_chunks_mut`, plus the `enumerate`/`zip`/`map`/`for_each`/
//! `collect` combinators — with *real* data parallelism: terminal
//! operations split the item list into contiguous chunks and run them on
//! `std::thread::scope` workers, one per available core, preserving item
//! order in the output.
//!
//! Differences from rayon, by design:
//!
//! * Combinator chains are materialized eagerly into an item vector
//!   (items are references, indices or chunk handles — cheap), then the
//!   single trailing `map`/`for_each` body runs in parallel. That covers
//!   every call site in this workspace; it is not a general work-stealing
//!   pool.
//! * Nested parallelism spawns nested scoped threads instead of reusing
//!   a global pool. Correct, possibly oversubscribed; fine at the
//!   problem sizes where nesting occurs here.
//! * Worker panics are re-raised on the caller via `resume_unwind`, like
//!   rayon.

use std::cell::Cell;
use std::panic::resume_unwind;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

std::thread_local! {
    /// Parallelism cap installed by [`ThreadPool::install`]; `0` means
    /// uncapped (use every available core).
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Builder-pattern stand-in for `rayon::ThreadPoolBuilder`. The shim
/// has no persistent worker threads, so a "pool" reduces to the one
/// property call sites rely on: how many workers a parallel terminal
/// operation may use.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
    thread_name: Option<Box<dyn Fn(usize) -> String>>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` (the default) means one worker per available core, like
    /// rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn thread_name<F>(mut self, f: F) -> Self
    where
        F: Fn(usize) -> String + 'static,
    {
        self.thread_name = Some(Box::new(f));
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error type mirroring `rayon::ThreadPoolBuildError`. The shim builder
/// cannot actually fail; the type exists so call sites written against
/// rayon's fallible `build()` compile unchanged.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped parallelism cap. `install(op)` runs `op` with the pool's
/// thread budget: any shim parallel terminal operation reached from
/// inside `op` (on this thread) splits its work across at most
/// `num_threads` workers. Distinct pools installed on distinct threads
/// do not share anything, so two subsystems given separate pools can no
/// longer oversubscribe each other's budget on the same operation.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Worker budget of this pool: the builder's `num_threads`, or the
    /// machine's available parallelism when unset.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            available_threads()
        } else {
            self.num_threads
        }
    }

    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(self.current_num_threads()));
        // Restore on unwind too, so a panicking op cannot leak the cap
        // into unrelated work on this thread.
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A materialized "parallel iterator": an ordered list of items awaiting
/// a parallel terminal operation.
pub struct Par<I> {
    items: Vec<I>,
}

/// A `Par` with a pending `map` stage; terminal operations apply the map
/// in parallel.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

/// Run `f` over `items` on scoped worker threads, preserving order.
fn par_apply<I, O, F>(items: Vec<I>, f: &F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let cap = POOL_THREADS.with(|c| c.get());
    let threads = if cap == 0 { available_threads() } else { cap };
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let nchunks = threads.min(n);
    // Balanced contiguous chunks, in order.
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(nchunks);
    let mut it = items.into_iter();
    for c in 0..nchunks {
        let take = (n * (c + 1)) / nchunks - (n * c) / nchunks;
        chunks.push(it.by_ref().take(take).collect());
    }
    let mut out: Vec<Vec<O>> = Vec::with_capacity(nchunks);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        for h in handles {
            out.push(h.join().unwrap_or_else(|e| resume_unwind(e)));
        }
    });
    out.into_iter().flatten().collect()
}

impl<I: Send> Par<I> {
    pub fn enumerate(self) -> Par<(usize, I)> {
        Par {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Pair items with another iterable, truncating to the shorter side
    /// (rayon zips equal-length sides; every call site here complies).
    pub fn zip<J>(self, other: J) -> Par<(I, J::Item)>
    where
        J: IntoIterator,
        J::Item: Send,
    {
        Par {
            items: self.items.into_iter().zip(other).collect(),
        }
    }

    pub fn map<O, F>(self, f: F) -> ParMap<I, F>
    where
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        par_apply(self.items, &f);
    }

    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn count(self) -> usize {
        self.items.len()
    }
}

impl<I, O, F> ParMap<I, F>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    pub fn collect<C: FromIterator<O>>(self) -> C {
        par_apply(self.items, &self.f).into_iter().collect()
    }

    pub fn for_each<G>(self, g: G)
    where
        G: Fn(O) + Sync,
    {
        let f = self.f;
        par_apply(self.items, &move |i| g(f(i)));
    }
}

/// `into_par_iter()` for owned sources (ranges, vectors).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> Par<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> Par<usize> {
        Par {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> Par<T> {
        Par { items: self }
    }
}

/// `par_iter()` for slices and anything that derefs to one.
pub trait IntoParallelRefIterator<T> {
    fn par_iter(&self) -> Par<&T>;
}

impl<T: Sync> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> Par<&T> {
        Par {
            items: self.iter().collect(),
        }
    }
}

/// `par_chunks_mut()` for mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        Par {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_enumerate_map() {
        let base = [10u64, 20, 30, 40];
        let v: Vec<u64> = base
            .par_iter()
            .enumerate()
            .map(|(i, x)| i as u64 + x)
            .collect();
        assert_eq!(v, vec![10, 21, 32, 43]);
    }

    #[test]
    fn zip_pairs_in_order() {
        let a = [1, 2, 3];
        let b = vec!["x", "y", "z"];
        let v: Vec<(i32, &str)> = a.par_iter().zip(&b).map(|(x, s)| (*x, *s)).collect();
        assert_eq!(v, vec![(1, "x"), (2, "y"), (3, "z")]);
    }

    #[test]
    fn chunks_mut_writes_every_chunk() {
        let mut data = vec![0u32; 97];
        data.par_chunks_mut(10).enumerate().for_each(|(c, chunk)| {
            for x in chunk.iter_mut() {
                *x = c as u32 + 1;
            }
        });
        assert!(data.iter().all(|&x| x != 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[96], 10);
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            (0..64)
                .into_par_iter()
                .map(|i| if i == 63 { panic!("boom") } else { i })
                .collect::<Vec<_>>()
        });
        assert!(r.is_err());
    }

    #[test]
    fn pool_caps_worker_threads() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .thread_name(|i| format!("test-pool-{i}"))
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 2);
        let ids: std::collections::HashSet<_> = pool
            .install(|| {
                (0..256)
                    .into_par_iter()
                    .map(|_| std::thread::current().id())
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .collect();
        assert!(ids.len() <= 2, "cap 2, saw {} distinct workers", ids.len());

        // A single-thread pool runs inline on the caller.
        let one = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let here = std::thread::current().id();
        let ids: Vec<_> = one.install(|| {
            (0..32)
                .into_par_iter()
                .map(|_| std::thread::current().id())
                .collect::<Vec<_>>()
        });
        assert!(ids.iter().all(|&id| id == here));
    }

    #[test]
    fn install_restores_cap_even_on_panic() {
        let one = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let r = std::panic::catch_unwind(|| one.install(|| panic!("boom")));
        assert!(r.is_err());
        // Back to uncapped: a parallel op may use several workers again
        // (cannot assert the count on a 1-core machine, but the cap
        // cell itself must be cleared).
        assert_eq!(crate::POOL_THREADS.with(|c| c.get()), 0);
    }
}
