//! In-memory structured-grid volumes with trilinear sampling.

use rayon::prelude::*;

use crate::field::ScalarField;

/// A dense 3D scalar volume, row-major with x fastest.
///
/// Volumes are the unit of data each rank holds after I/O: its block of
/// the global grid (usually padded by a one-voxel ghost layer so ray
/// samples near block faces interpolate correctly).
///
/// ```
/// use pvr_volume::{SupernovaField, Volume};
///
/// // Sample the synthetic supernova's X velocity at 32^3.
/// let field = SupernovaField::new(1530).variable(2);
/// let vol = Volume::from_field(&field, [32, 32, 32]);
/// assert_eq!(vol.dims(), [32, 32, 32]);
///
/// // Trilinear sampling between voxel centers is bounded by the data.
/// let (lo, hi) = vol.min_max();
/// let s = vol.sample_trilinear([15.3, 16.7, 15.9]);
/// assert!(s >= lo && s <= hi);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Volume {
    dims: [usize; 3],
    /// Row stride (`dims[0]`) and slab stride (`dims[0] * dims[1]`),
    /// precomputed once so the hot fetch paths do no per-access
    /// multiply chain over `dims`.
    row_stride: usize,
    slab_stride: usize,
    data: Vec<f32>,
}

impl Volume {
    fn with_data(dims: [usize; 3], data: Vec<f32>) -> Self {
        debug_assert_eq!(data.len(), dims[0] * dims[1] * dims[2]);
        Volume {
            dims,
            row_stride: dims[0],
            slab_stride: dims[0] * dims[1],
            data,
        }
    }

    /// Create a zero-filled volume.
    pub fn zeros(dims: [usize; 3]) -> Self {
        Self::with_data(dims, vec![0.0; dims[0] * dims[1] * dims[2]])
    }

    /// Wrap existing data (length must match `dims`).
    pub fn from_data(dims: [usize; 3], data: Vec<f32>) -> Self {
        assert_eq!(data.len(), dims[0] * dims[1] * dims[2]);
        Self::with_data(dims, data)
    }

    /// Sample `field` over the unit cube at `dims` resolution
    /// (voxel centers), in parallel.
    pub fn from_field(field: &(impl ScalarField + Sync), dims: [usize; 3]) -> Self {
        let [nx, ny, nz] = dims;
        let inv = [1.0 / nx as f32, 1.0 / ny as f32, 1.0 / nz as f32];
        let mut data = vec![0.0f32; nx * ny * nz];
        data.par_chunks_mut(nx * ny)
            .enumerate()
            .for_each(|(z, slab)| {
                let pz = (z as f32 + 0.5) * inv[2];
                for y in 0..ny {
                    let py = (y as f32 + 0.5) * inv[1];
                    for x in 0..nx {
                        let px = (x as f32 + 0.5) * inv[0];
                        slab[y * nx + x] = field.sample(px, py, pz);
                    }
                }
            });
        Self::with_data(dims, data)
    }

    /// Sample a *window* of a larger logical grid: voxels
    /// `offset .. offset+dims` of a `global` grid over the unit cube.
    /// This is how a rank materializes its block of a procedural field.
    pub fn from_field_window(
        field: &(impl ScalarField + Sync),
        global: [usize; 3],
        offset: [usize; 3],
        dims: [usize; 3],
    ) -> Self {
        let [nx, ny, _] = dims;
        let inv = [
            1.0 / global[0] as f32,
            1.0 / global[1] as f32,
            1.0 / global[2] as f32,
        ];
        let mut data = vec![0.0f32; dims[0] * dims[1] * dims[2]];
        data.par_chunks_mut(nx * ny)
            .enumerate()
            .for_each(|(z, slab)| {
                let pz = ((offset[2] + z) as f32 + 0.5) * inv[2];
                for y in 0..ny {
                    let py = ((offset[1] + y) as f32 + 0.5) * inv[1];
                    for x in 0..nx {
                        let px = ((offset[0] + x) as f32 + 0.5) * inv[0];
                        slab[y * nx + x] = field.sample(px, py, pz);
                    }
                }
            });
        Self::with_data(dims, data)
    }

    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.dims[0] && y < self.dims[1] && z < self.dims[2]);
        z * self.slab_stride + y * self.row_stride + x
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f32 {
        self.data[self.index(x, y, z)]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f32) {
        let i = self.index(x, y, z);
        self.data[i] = v;
    }

    /// Trilinear interpolation at a continuous voxel-space position
    /// (`0.0 ..= dims-1` per axis); coordinates are clamped to the
    /// volume, so sampling just outside returns the boundary value.
    ///
    /// Interior positions (`0 <= p[axis] < dims[axis]-1`) take an
    /// unchecked stride-indexed path: the clamp is the identity there
    /// and all eight corners are in bounds, so the fast path performs
    /// the exact same lerps on the exact same corners and is
    /// bit-identical to the general path.
    #[inline]
    pub fn sample_trilinear(&self, p: [f32; 3]) -> f32 {
        let [nx, ny, nz] = self.dims;
        if p[0] >= 0.0
            && p[0] < (nx - 1) as f32
            && p[1] >= 0.0
            && p[1] < (ny - 1) as f32
            && p[2] >= 0.0
            && p[2] < (nz - 1) as f32
        {
            return self.sample_trilinear_interior(p);
        }
        self.sample_trilinear_clamped(p)
    }

    /// The general clamped path (boundary and out-of-volume positions).
    fn sample_trilinear_clamped(&self, p: [f32; 3]) -> f32 {
        let [nx, ny, nz] = self.dims;
        let cx = p[0].clamp(0.0, (nx - 1) as f32);
        let cy = p[1].clamp(0.0, (ny - 1) as f32);
        let cz = p[2].clamp(0.0, (nz - 1) as f32);
        let (x0, y0, z0) = (cx as usize, cy as usize, cz as usize);
        let x1 = (x0 + 1).min(nx - 1);
        let y1 = (y0 + 1).min(ny - 1);
        let z1 = (z0 + 1).min(nz - 1);
        let (fx, fy, fz) = (cx - x0 as f32, cy - y0 as f32, cz - z0 as f32);

        let lerp = |a: f32, b: f32, t: f32| a + (b - a) * t;
        let c00 = lerp(self.get(x0, y0, z0), self.get(x1, y0, z0), fx);
        let c10 = lerp(self.get(x0, y1, z0), self.get(x1, y1, z0), fx);
        let c01 = lerp(self.get(x0, y0, z1), self.get(x1, y0, z1), fx);
        let c11 = lerp(self.get(x0, y1, z1), self.get(x1, y1, z1), fx);
        lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz)
    }

    /// Interior fetch: no clamps, no per-corner index multiplies —
    /// one base offset plus precomputed row/slab strides, bounds checks
    /// elided in release. Caller must guarantee
    /// `0 <= p[axis] < dims[axis]-1` for every axis.
    #[inline]
    fn sample_trilinear_interior(&self, p: [f32; 3]) -> f32 {
        let (x0, y0, z0) = (p[0] as usize, p[1] as usize, p[2] as usize);
        let (fx, fy, fz) = (p[0] - x0 as f32, p[1] - y0 as f32, p[2] - z0 as f32);
        debug_assert!(
            x0 + 1 < self.dims[0] && y0 + 1 < self.dims[1] && z0 + 1 < self.dims[2],
            "interior precondition violated: p = {p:?}, dims = {:?}",
            self.dims
        );
        let base = z0 * self.slab_stride + y0 * self.row_stride + x0;
        // The largest offset fetched below is the (x0+1, y0+1, z0+1)
        // corner; assert it strictly in bounds, not just <= len.
        debug_assert!(base + self.slab_stride + self.row_stride + 1 < self.data.len());
        // SAFETY: the caller guarantees 0 <= p[axis] < dims[axis]-1, so
        // x0+1 <= nx-1, y0+1 <= ny-1, z0+1 <= nz-1 (debug-asserted
        // above). The eight corners fetched are base + {0,1} +
        // {0,row_stride} + {0,slab_stride}; the largest is
        // (z0+1)*slab + (y0+1)*row + (x0+1) <= (nz-1)*slab +
        // (ny-1)*row + (nx-1) = data.len()-1, with row_stride = nx and
        // slab_stride = nx*ny as set in `Volume::zeros`. `data` is a
        // plain owned Vec<f32> borrowed shared here — no aliasing or
        // validity concerns beyond the bounds.
        let at = |off: usize| unsafe { *self.data.get_unchecked(base + off) };
        let (sy, sz) = (self.row_stride, self.slab_stride);
        let lerp = |a: f32, b: f32, t: f32| a + (b - a) * t;
        let c00 = lerp(at(0), at(1), fx);
        let c10 = lerp(at(sy), at(sy + 1), fx);
        let c01 = lerp(at(sz), at(sz + 1), fx);
        let c11 = lerp(at(sz + sy), at(sz + sy + 1), fx);
        lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz)
    }

    /// Packet variant of [`Volume::sample_trilinear`]: up to `W`
    /// gathered fetches per call, one per enabled lane, positions in
    /// structure-of-arrays form (`xs[i], ys[i], zs[i]`). Each enabled
    /// lane's result is **bit-identical** to calling
    /// [`Volume::sample_trilinear`] on that lane's position alone — the
    /// packet only batches the address computation, the eight-corner
    /// gathers, and the (lane-independent) lerp arithmetic into
    /// branch-free lane-parallel passes the compiler can vectorize.
    /// Disabled lanes return `0.0`; their position values may be
    /// arbitrary (even NaN) — they are arithmetically processed with a
    /// safe dummy base offset and the result discarded, never
    /// dereferencing out of bounds.
    ///
    /// When every enabled lane is interior (`0 <= p[a] < dims[a]-1`),
    /// the corners are gathered over the precomputed-stride unchecked
    /// path; a single enabled boundary lane demotes the whole packet to
    /// the general clamped path, which is rare — only rays grazing the
    /// stored region's faces produce such packets.
    pub fn sample_trilinear_packet<const W: usize>(
        &self,
        xs: &[f32; W],
        ys: &[f32; W],
        zs: &[f32; W],
        mask: &[bool; W],
    ) -> [f32; W] {
        let [nx, ny, nz] = self.dims;
        let (hx, hy, hz) = ((nx - 1) as f32, (ny - 1) as f32, (nz - 1) as f32);
        let mut interior = true;
        let mut any = false;
        for i in 0..W {
            let inb = xs[i] >= 0.0
                && xs[i] < hx
                && ys[i] >= 0.0
                && ys[i] < hy
                && zs[i] >= 0.0
                && zs[i] < hz;
            interior &= inb | !mask[i];
            any |= mask[i];
        }
        let mut out = [0.0f32; W];
        if !any {
            return out;
        }
        if !interior {
            for i in 0..W {
                if mask[i] {
                    out[i] = self.sample_trilinear([xs[i], ys[i], zs[i]]);
                }
            }
            return out;
        }
        // Pass 1: per-lane base offsets and interpolation fractions,
        // unconditionally — disabled lanes are forced to base 0 (their
        // float coordinates may be garbage; the `as usize` saturating
        // cast could otherwise build a wild offset).
        let mut base = [0usize; W];
        let mut fx = [0.0f32; W];
        let mut fy = [0.0f32; W];
        let mut fz = [0.0f32; W];
        for i in 0..W {
            let (x0, y0, z0) = (xs[i] as usize, ys[i] as usize, zs[i] as usize);
            fx[i] = xs[i] - x0 as f32;
            fy[i] = ys[i] - y0 as f32;
            fz[i] = zs[i] - z0 as f32;
            base[i] = if mask[i] {
                z0 * self.slab_stride + y0 * self.row_stride + x0
            } else {
                0
            };
        }
        // Pass 2: gather the eight corners, transposed (corner-major) so
        // pass 3 is a straight W-wide lerp per corner pair.
        let (sy, sz) = (self.row_stride, self.slab_stride);
        let mut c0 = [0.0f32; W];
        let mut c1 = [0.0f32; W];
        let mut c2 = [0.0f32; W];
        let mut c3 = [0.0f32; W];
        let mut c4 = [0.0f32; W];
        let mut c5 = [0.0f32; W];
        let mut c6 = [0.0f32; W];
        let mut c7 = [0.0f32; W];
        for i in 0..W {
            debug_assert!(base[i] + sz + sy + 1 < self.data.len());
            // SAFETY: every enabled lane passed the interior test above,
            // so the bounds argument of `sample_trilinear_interior`
            // applies verbatim: the largest offset, base + slab + row +
            // 1, addresses the (x0+1, y0+1, z0+1) corner, strictly
            // inside `data`. Disabled lanes read from base 0; because at
            // least one enabled interior lane exists (checked above),
            // every axis has >= 2 voxels, so slab + row + 1 =
            // nx*ny + nx + 1 < 2*nx*ny <= data.len().
            let at = |off: usize| unsafe { *self.data.get_unchecked(base[i] + off) };
            c0[i] = at(0);
            c1[i] = at(1);
            c2[i] = at(sy);
            c3[i] = at(sy + 1);
            c4[i] = at(sz);
            c5[i] = at(sz + 1);
            c6[i] = at(sz + sy);
            c7[i] = at(sz + sy + 1);
        }
        // Pass 3: the same lerp tree as the scalar interior path, in the
        // same order, W lanes wide and branch-free.
        let lerp = |a: f32, b: f32, t: f32| a + (b - a) * t;
        for i in 0..W {
            let c00 = lerp(c0[i], c1[i], fx[i]);
            let c10 = lerp(c2[i], c3[i], fx[i]);
            let c01 = lerp(c4[i], c5[i], fx[i]);
            let c11 = lerp(c6[i], c7[i], fx[i]);
            out[i] = lerp(lerp(c00, c10, fy[i]), lerp(c01, c11, fy[i]), fz[i]);
        }
        // Disabled lanes computed garbage above; restore their
        // documented 0.0.
        for i in 0..W {
            if !mask[i] {
                out[i] = 0.0;
            }
        }
        out
    }

    /// Minimum and maximum voxel values.
    pub fn min_max(&self) -> (f32, f32) {
        self.data
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            })
    }

    /// Trilinear upsampling by an integer factor per axis — the
    /// preprocessing step the paper used to build its 2240³ and 4480³
    /// time steps from the 1120³ original ("upsampling preserves the
    /// structure of the data").
    pub fn upsample(&self, factor: usize) -> Volume {
        assert!(factor >= 1);
        let nd = [
            self.dims[0] * factor,
            self.dims[1] * factor,
            self.dims[2] * factor,
        ];
        let mut out = Volume::zeros(nd);
        let scale = 1.0 / factor as f32;
        let nx = nd[0];
        let ny = nd[1];
        out.data
            .par_chunks_mut(nx * ny)
            .enumerate()
            .for_each(|(z, slab)| {
                let pz = z as f32 * scale;
                for y in 0..ny {
                    let py = y as f32 * scale;
                    for x in 0..nx {
                        slab[y * nx + x] = self.sample_trilinear([x as f32 * scale, py, pz]);
                    }
                }
            });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trip() {
        let mut v = Volume::zeros([4, 3, 2]);
        v.set(3, 2, 1, 7.5);
        assert_eq!(v.get(3, 2, 1), 7.5);
        assert_eq!(v.data()[v.index(3, 2, 1)], 7.5);
    }

    #[test]
    fn trilinear_at_grid_points_is_exact() {
        let mut v = Volume::zeros([3, 3, 3]);
        for z in 0..3 {
            for y in 0..3 {
                for x in 0..3 {
                    v.set(x, y, z, (x + 10 * y + 100 * z) as f32);
                }
            }
        }
        for z in 0..3 {
            for y in 0..3 {
                for x in 0..3 {
                    let s = v.sample_trilinear([x as f32, y as f32, z as f32]);
                    assert_eq!(s, (x + 10 * y + 100 * z) as f32);
                }
            }
        }
    }

    #[test]
    fn trilinear_is_linear_along_axes() {
        let mut v = Volume::zeros([2, 2, 2]);
        v.set(1, 0, 0, 2.0);
        v.set(1, 1, 0, 2.0);
        v.set(1, 0, 1, 2.0);
        v.set(1, 1, 1, 2.0);
        assert!((v.sample_trilinear([0.25, 0.5, 0.5]) - 0.5).abs() < 1e-6);
        assert!((v.sample_trilinear([0.75, 0.0, 0.9]) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn sampling_outside_clamps() {
        let mut v = Volume::zeros([2, 2, 2]);
        v.set(0, 0, 0, 5.0);
        assert_eq!(v.sample_trilinear([-3.0, -3.0, -3.0]), 5.0);
    }

    #[test]
    fn upsample_preserves_linear_ramp() {
        let mut v = Volume::zeros([4, 4, 4]);
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    v.set(x, y, z, x as f32);
                }
            }
        }
        let u = v.upsample(2);
        assert_eq!(u.dims(), [8, 8, 8]);
        // The x ramp is reproduced at half steps.
        assert!((u.get(2, 3, 3) - 1.0).abs() < 1e-6);
        assert!((u.get(3, 3, 3) - 1.5).abs() < 1e-6);
        let (lo, hi) = u.min_max();
        let (lo0, hi0) = v.min_max();
        assert_eq!((lo, hi), (lo0, hi0));
    }

    #[test]
    fn min_max() {
        let v = Volume::from_data([2, 1, 1], vec![-3.5, 9.0]);
        assert_eq!(v.min_max(), (-3.5, 9.0));
    }

    #[test]
    fn packet_fetch_is_bit_identical_to_scalar() {
        use crate::field::SupernovaField;
        let f = SupernovaField::new(7).variable(2);
        let v = Volume::from_field(&f, [13, 10, 9]);
        // Probe packets spanning interior, boundary, and outside lanes,
        // with assorted masks (including all-off).
        for w8 in 0..40 {
            let mut xs = [0.0f32; 8];
            let mut ys = [0.0f32; 8];
            let mut zs = [0.0f32; 8];
            let mut mask = [false; 8];
            for i in 0..8 {
                let s = (w8 * 8 + i) as f32;
                xs[i] = (s * 0.37).rem_euclid(15.0) - 1.0;
                ys[i] = (s * 0.73).rem_euclid(12.0) - 1.0;
                zs[i] = (s * 1.19).rem_euclid(11.0) - 1.0;
                mask[i] = (w8 + i) % 5 != 0;
            }
            let got = v.sample_trilinear_packet::<8>(&xs, &ys, &zs, &mask);
            for i in 0..8 {
                let want = if mask[i] {
                    v.sample_trilinear([xs[i], ys[i], zs[i]])
                } else {
                    0.0
                };
                assert_eq!(
                    got[i].to_bits(),
                    want.to_bits(),
                    "lane {i} pos ({}, {}, {})",
                    xs[i],
                    ys[i],
                    zs[i]
                );
            }
        }
        // A fully-interior width-4 packet exercises the gather path,
        // including a disabled lane carrying NaN garbage.
        let xs4 = [1.2, 5.5, 2.0, f32::NAN];
        let ys4 = [2.3, 4.4, 2.0, f32::NAN];
        let zs4 = [3.4, 3.3, 2.0, -1.0e30];
        let mask4 = [true, true, true, false];
        let got = v.sample_trilinear_packet::<4>(&xs4, &ys4, &zs4, &mask4);
        for i in 0..3 {
            assert_eq!(
                got[i].to_bits(),
                v.sample_trilinear([xs4[i], ys4[i], zs4[i]]).to_bits()
            );
        }
        assert_eq!(got[3].to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn interior_fast_path_is_bit_identical_to_clamped() {
        use crate::field::SupernovaField;
        let f = SupernovaField::new(99).variable(2);
        let v = Volume::from_field(&f, [11, 9, 13]);
        let dims = v.dims();
        // Dense probe lattice spanning interior, boundary, and outside.
        for iz in 0..20 {
            for iy in 0..20 {
                for ix in 0..20 {
                    let p = [
                        ix as f32 * 0.7 - 1.0,
                        iy as f32 * 0.55 - 1.0,
                        iz as f32 * 0.8 - 1.0,
                    ];
                    let fast = v.sample_trilinear(p);
                    let slow = v.sample_trilinear_clamped(p);
                    assert_eq!(
                        fast.to_bits(),
                        slow.to_bits(),
                        "p={p:?} dims={dims:?}: {fast} != {slow}"
                    );
                }
            }
        }
    }
}
