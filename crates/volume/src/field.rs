//! Procedural scalar fields, including the synthetic supernova.
//!
//! The paper renders time step 1530 of Blondin & Mezzacappa's VH-1
//! core-collapse supernova run — 1120³, five variables, 27 GB per step —
//! which we cannot obtain. [`SupernovaField`] is the substitution: an
//! analytic field with the same gross structure (a perturbed standing
//! accretion-shock shell around a dense core, with a turbulent interior)
//! exposing the same five variables. Because it is analytic it can be
//! sampled at *any* resolution, which also substitutes for the paper's
//! upsampled 2240³ / 4480³ steps without materializing hundreds of
//! gigabytes.

/// A scalar field over the unit cube.
pub trait ScalarField {
    /// Sample at `(x, y, z) ∈ [0, 1]³`.
    fn sample(&self, x: f32, y: f32, z: f32) -> f32;
}

impl<F: Fn(f32, f32, f32) -> f32> ScalarField for F {
    fn sample(&self, x: f32, y: f32, z: f32) -> f32 {
        self(x, y, z)
    }
}

/// Names of the five VH-1 variables, in file order.
pub const VAR_NAMES: [&str; 5] = [
    "pressure",
    "density",
    "velocity-x",
    "velocity-y",
    "velocity-z",
];

/// Deterministic lattice value noise with fractal Brownian motion.
///
/// Hash-based (no tables, no global state), so fields are reproducible
/// across runs and threads — a requirement for comparing images between
/// compositing algorithms bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub struct FbmNoise {
    seed: u64,
    octaves: u32,
    lacunarity: f32,
    gain: f32,
}

impl FbmNoise {
    pub fn new(seed: u64) -> Self {
        FbmNoise {
            seed,
            octaves: 4,
            lacunarity: 2.0,
            gain: 0.5,
        }
    }

    pub fn with_octaves(mut self, octaves: u32) -> Self {
        self.octaves = octaves.max(1);
        self
    }

    #[inline]
    fn hash(&self, x: i32, y: i32, z: i32) -> f32 {
        // SplitMix64-style integer hash of the lattice point.
        let mut h = self
            .seed
            .wrapping_add(x as u64 & 0xffff_ffff)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((y as u64 & 0xffff_ffff) << 1)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9)
            .wrapping_add((z as u64 & 0xffff_ffff) << 2);
        h ^= h >> 30;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        // Map the top 24 bits to [-1, 1).
        (h >> 40) as f32 / (1u64 << 24) as f32 * 2.0 - 1.0
    }

    /// Single octave of trilinear value noise at lattice scale 1.
    fn value(&self, x: f32, y: f32, z: f32) -> f32 {
        let (x0, y0, z0) = (x.floor(), y.floor(), z.floor());
        let (fx, fy, fz) = (x - x0, y - y0, z - z0);
        // Smoothstep fade for C1 continuity.
        let fade = |t: f32| t * t * (3.0 - 2.0 * t);
        let (ux, uy, uz) = (fade(fx), fade(fy), fade(fz));
        let (ix, iy, iz) = (x0 as i32, y0 as i32, z0 as i32);
        let lerp = |a: f32, b: f32, t: f32| a + (b - a) * t;
        let c00 = lerp(self.hash(ix, iy, iz), self.hash(ix + 1, iy, iz), ux);
        let c10 = lerp(self.hash(ix, iy + 1, iz), self.hash(ix + 1, iy + 1, iz), ux);
        let c01 = lerp(self.hash(ix, iy, iz + 1), self.hash(ix + 1, iy, iz + 1), ux);
        let c11 = lerp(
            self.hash(ix, iy + 1, iz + 1),
            self.hash(ix + 1, iy + 1, iz + 1),
            ux,
        );
        lerp(lerp(c00, c10, uy), lerp(c01, c11, uy), uz)
    }

    /// Fractal sum of octaves; output roughly in [-1, 1].
    pub fn fbm(&self, x: f32, y: f32, z: f32, base_freq: f32) -> f32 {
        let mut sum = 0.0;
        let mut amp = 0.5;
        let mut freq = base_freq;
        for _ in 0..self.octaves {
            sum += amp * self.value(x * freq, y * freq, z * freq);
            amp *= self.gain;
            freq *= self.lacunarity;
        }
        sum
    }
}

impl ScalarField for FbmNoise {
    fn sample(&self, x: f32, y: f32, z: f32) -> f32 {
        self.fbm(x, y, z, 8.0)
    }
}

/// Synthetic core-collapse supernova: five variables over the unit
/// cube. Variable indices follow [`VAR_NAMES`].
///
/// Structure: a dense core at the center, a standing accretion shock —
/// a spherical shell whose radius is perturbed by low-frequency noise
/// (the SASI instability that VH-1 models) — and turbulent velocity
/// inside the shell. All variables are normalized to roughly [-1, 1]
/// (velocities) or [0, 1] (pressure, density).
#[derive(Debug, Clone, Copy)]
pub struct SupernovaField {
    noise: FbmNoise,
    wobble: FbmNoise,
    /// Mean shock radius in unit-cube units.
    shock_radius: f32,
}

impl SupernovaField {
    pub fn new(seed: u64) -> Self {
        SupernovaField {
            noise: FbmNoise::new(seed).with_octaves(5),
            wobble: FbmNoise::new(seed ^ 0xdead_beef).with_octaves(3),
            shock_radius: 0.33,
        }
    }

    /// The field at a later evolution time: the accretion shock expands
    /// slowly and the turbulence decorrelates. `t` is in arbitrary
    /// time-step units (the paper renders successive VH-1 time steps;
    /// step 1530 is `t = 0`).
    pub fn at_time(seed: u64, t: f32) -> Self {
        let step = t.round() as i64;
        SupernovaField {
            noise: FbmNoise::new(seed.wrapping_add(step as u64)).with_octaves(5),
            wobble: FbmNoise::new((seed ^ 0xdead_beef).wrapping_add(step as u64 / 4))
                .with_octaves(3),
            shock_radius: (0.33 + 0.004 * t).clamp(0.1, 0.45),
        }
    }

    #[inline]
    fn geometry(&self, x: f32, y: f32, z: f32) -> (f32, f32, [f32; 3]) {
        let p = [x - 0.5, y - 0.5, z - 0.5];
        let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
        // Angular perturbation of the shock radius (SASI-like sloshing):
        // evaluate low-frequency noise on the unit direction.
        let inv_r = if r > 1e-6 { 1.0 / r } else { 0.0 };
        let dir = [p[0] * inv_r, p[1] * inv_r, p[2] * inv_r];
        let wob = self.wobble.fbm(dir[0], dir[1], dir[2], 2.0);
        let shock_r = self.shock_radius * (1.0 + 0.35 * wob);
        (r, shock_r, p)
    }

    /// Sample variable `var` (0..5) at a point of the unit cube.
    pub fn sample_var(&self, var: usize, x: f32, y: f32, z: f32) -> f32 {
        let (r, shock_r, p) = self.geometry(x, y, z);
        let inside = r < shock_r;
        // Shell proximity in [0, 1]: 1 on the shock surface.
        let shell = (-((r - shock_r) / 0.02).powi(2)).exp();
        let turb = if inside {
            self.noise.fbm(x, y, z, 10.0)
        } else {
            0.15 * self.noise.fbm(x, y, z, 6.0)
        };
        match var {
            // Pressure: high in the core, jump at the shock.
            0 => ((1.0 - r * 2.2).max(0.0).powi(2) + 0.6 * shell + 0.2 * turb).clamp(0.0, 1.0),
            // Density: steep core profile plus shell pile-up.
            1 => ((0.08 / (r + 0.05)).min(1.0) * 0.7 + 0.5 * shell + 0.15 * turb).clamp(0.0, 1.0),
            // Velocities: infall outside the shock (radial, negative),
            // turbulence inside; the X component is the paper's
            // rendered variable (Figure 1).
            2..=4 => {
                let axis = var - 2;
                // Infall is strongest just outside the shock and fades
                // with distance, so renderings highlight the shock
                // region rather than a uniformly colored far field.
                let radial = if inside {
                    0.0
                } else {
                    -0.8 * (shock_r / r.max(1e-3)).powf(2.5)
                };
                let v = radial * p[axis] / r.max(1e-3)
                    + if inside { 0.9 * turb } else { 0.1 * turb }
                    + 0.4 * shell * p[axis].signum() * self.noise.fbm(y, z, x, 5.0);
                v.clamp(-1.0, 1.0)
            }
            _ => panic!("variable index {var} out of range (0..5)"),
        }
    }

    /// View of one variable as a [`ScalarField`].
    pub fn variable(&self, var: usize) -> SupernovaVariable {
        assert!(var < 5);
        SupernovaVariable { field: *self, var }
    }
}

impl ScalarField for SupernovaField {
    /// Default variable: X velocity (the paper's Figure 1).
    fn sample(&self, x: f32, y: f32, z: f32) -> f32 {
        self.sample_var(2, x, y, z)
    }
}

/// One variable of a [`SupernovaField`] as a standalone field.
#[derive(Debug, Clone, Copy)]
pub struct SupernovaVariable {
    field: SupernovaField,
    var: usize,
}

impl ScalarField for SupernovaVariable {
    fn sample(&self, x: f32, y: f32, z: f32) -> f32 {
        self.field.sample_var(self.var, x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic() {
        let a = FbmNoise::new(42);
        let b = FbmNoise::new(42);
        for i in 0..50 {
            let t = i as f32 * 0.037;
            assert_eq!(a.fbm(t, 1.0 - t, t * t, 4.0), b.fbm(t, 1.0 - t, t * t, 4.0));
        }
    }

    #[test]
    fn noise_depends_on_seed() {
        let a = FbmNoise::new(1);
        let b = FbmNoise::new(2);
        let diff = (0..100)
            .map(|i| {
                let t = i as f32 * 0.031;
                (a.fbm(t, t, t, 4.0) - b.fbm(t, t, t, 4.0)).abs()
            })
            .sum::<f32>();
        assert!(diff > 0.5, "seeds produce near-identical noise");
    }

    #[test]
    fn noise_is_bounded() {
        let n = FbmNoise::new(7);
        for i in 0..500 {
            let t = i as f32 * 0.017;
            let v = n.fbm(t, 2.0 * t, 0.5 - t, 8.0);
            assert!(v.abs() <= 1.0, "fbm out of range: {v}");
        }
    }

    #[test]
    fn noise_is_continuous() {
        // Small steps produce small changes (C0 continuity smoke test).
        let n = FbmNoise::new(3);
        let mut prev = n.fbm(0.0, 0.3, 0.7, 8.0);
        for i in 1..1000 {
            let x = i as f32 * 1e-3;
            let v = n.fbm(x, 0.3, 0.7, 8.0);
            assert!((v - prev).abs() < 0.05, "jump at x={x}: {prev} -> {v}");
            prev = v;
        }
    }

    #[test]
    fn supernova_variables_are_in_range() {
        let f = SupernovaField::new(1530);
        for i in 0..1000 {
            let t = i as f32 / 1000.0;
            let (x, y, z) = (t, (t * 7.3).fract(), (t * 3.1).fract());
            for var in 0..5 {
                let v = f.sample_var(var, x, y, z);
                assert!(v.is_finite());
                if var < 2 {
                    assert!((0.0..=1.0).contains(&v), "var {var} = {v}");
                } else {
                    assert!((-1.0..=1.0).contains(&v), "var {var} = {v}");
                }
            }
        }
    }

    #[test]
    fn supernova_has_shell_structure() {
        let f = SupernovaField::new(1530);
        // Density at the mean shock radius is higher than far outside.
        let at_shell = f.sample_var(1, 0.5 + 0.33, 0.5, 0.5);
        let outside = f.sample_var(1, 0.99, 0.99, 0.99);
        assert!(at_shell > outside, "shell {at_shell} outside {outside}");
        // Pressure peaks at the core.
        let core = f.sample_var(0, 0.5, 0.5, 0.5);
        assert!(core > 0.8, "core pressure {core}");
    }

    #[test]
    fn infall_velocity_points_inward_outside_shock() {
        let f = SupernovaField::new(1530);
        // On the +x axis outside the shock, vx should be negative
        // (matter falling toward the core) for most probes.
        let mut neg = 0;
        for i in 0..20 {
            let x = 0.5 + 0.45 - i as f32 * 0.002;
            if f.sample_var(2, x, 0.5, 0.5) < 0.0 {
                neg += 1;
            }
        }
        assert!(neg > 12, "only {neg}/20 infall probes negative");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_variable_panics() {
        SupernovaField::new(0).sample_var(5, 0.5, 0.5, 0.5);
    }

    #[test]
    fn time_evolution_expands_the_shock() {
        let t0 = SupernovaField::at_time(1530, 0.0);
        let t20 = SupernovaField::at_time(1530, 20.0);
        // Density peak (the shock shell) moves outward: probe along +x.
        let shell_density = |f: &SupernovaField, r: f32| f.sample_var(1, 0.5 + r, 0.5, 0.5);
        // At the old shell radius, the late field is weaker than the new.
        assert!(shell_density(&t20, 0.41) > shell_density(&t0, 0.41) - 0.3);
        // Radius parameter itself moved.
        let probe0 = SupernovaField::at_time(7, 0.0);
        let probe1 = SupernovaField::at_time(7, 25.0);
        assert!(probe1.shock_radius > probe0.shock_radius);
    }

    #[test]
    fn time_zero_matches_new() {
        let a = SupernovaField::new(1530);
        let b = SupernovaField::at_time(1530, 0.0);
        for i in 0..50 {
            let t = i as f32 / 50.0;
            assert_eq!(a.sample_var(2, t, 0.4, 0.6), b.sample_var(2, t, 0.4, 0.6));
        }
    }

    #[test]
    fn closure_fields_work() {
        let f = |x: f32, _y: f32, _z: f32| x * 2.0;
        assert_eq!(f.sample(0.25, 0.0, 0.0), 0.5);
    }
}
