//! Sort-last domain decomposition into regular blocks.
//!
//! The paper's renderer "divides the data space into regular blocks and
//! statically allocates a small number of blocks to each process". We
//! factorize the process count into a near-cubic 3D arrangement matched
//! to the grid aspect and assign block `i` to rank `i` (round-robin when
//! there are more blocks than ranks).

use pvr_formats::Subvolume;

/// One block of the decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    pub id: usize,
    /// Grid coordinates of the block in the block lattice.
    pub coords: [usize; 3],
    /// The owned region of the global grid (no ghost).
    pub sub: Subvolume,
}

/// A regular decomposition of `grid` into `counts[0] x counts[1] x
/// counts[2]` blocks.
#[derive(Debug, Clone)]
pub struct BlockDecomposition {
    grid: [usize; 3],
    counts: [usize; 3],
}

impl BlockDecomposition {
    /// Decompose `grid` into exactly `nblocks` regular blocks, choosing
    /// per-axis counts that keep blocks near-cubic. `nblocks` must
    /// factorize into counts that do not exceed the grid dimensions.
    pub fn new(grid: [usize; 3], nblocks: usize) -> Self {
        assert!(nblocks >= 1);
        let counts = Self::factorize(grid, nblocks);
        BlockDecomposition { grid, counts }
    }

    /// Choose near-cubic block counts: repeatedly split the axis whose
    /// per-block extent is largest.
    fn factorize(grid: [usize; 3], nblocks: usize) -> [usize; 3] {
        let mut counts = [1usize, 1, 1];
        let mut remaining = nblocks;
        // Split by prime factors, largest-extent axis first.
        let mut factors = Vec::new();
        let mut n = remaining;
        let mut p = 2;
        while p * p <= n {
            while n.is_multiple_of(p) {
                factors.push(p);
                n /= p;
            }
            p += 1;
        }
        if n > 1 {
            factors.push(n);
        }
        factors.sort_unstable_by(|a, b| b.cmp(a));
        for f in factors {
            // Pick the axis with the largest per-block extent that can
            // still be split.
            let mut best = usize::MAX;
            let mut best_extent = 0.0f64;
            for a in 0..3 {
                let extent = grid[a] as f64 / counts[a] as f64;
                if counts[a] * f <= grid[a] && extent > best_extent {
                    best = a;
                    best_extent = extent;
                }
            }
            assert!(
                best != usize::MAX,
                "cannot decompose grid {grid:?} into {nblocks} blocks"
            );
            counts[best] *= f;
        }
        remaining = 1; // consumed
        let _ = remaining;
        counts
    }

    pub fn grid(&self) -> [usize; 3] {
        self.grid
    }

    /// Blocks per axis.
    pub fn counts(&self) -> [usize; 3] {
        self.counts
    }

    pub fn num_blocks(&self) -> usize {
        self.counts[0] * self.counts[1] * self.counts[2]
    }

    /// The block with dense id `i` (x-fastest in the block lattice).
    pub fn block(&self, id: usize) -> Block {
        assert!(id < self.num_blocks());
        let bx = id % self.counts[0];
        let by = (id / self.counts[0]) % self.counts[1];
        let bz = id / (self.counts[0] * self.counts[1]);
        let coords = [bx, by, bz];
        let mut offset = [0usize; 3];
        let mut shape = [0usize; 3];
        for a in 0..3 {
            // Even split with the remainder spread over the first blocks.
            let base = self.grid[a] / self.counts[a];
            let rem = self.grid[a] % self.counts[a];
            let c = coords[a];
            offset[a] = c * base + c.min(rem);
            shape[a] = base + usize::from(c < rem);
        }
        Block {
            id,
            coords,
            sub: Subvolume::new(offset, shape),
        }
    }

    /// All blocks in id order.
    pub fn blocks(&self) -> Vec<Block> {
        (0..self.num_blocks()).map(|i| self.block(i)).collect()
    }

    /// Block ids assigned to `rank` out of `nranks` (round-robin; with
    /// `nblocks == nranks`, rank *i* owns exactly block *i*).
    pub fn blocks_for_rank(&self, rank: usize, nranks: usize) -> Vec<usize> {
        (0..self.num_blocks())
            .filter(|b| b % nranks == rank)
            .collect()
    }

    /// The block's subvolume extended by `ghost` voxels on every side,
    /// clamped to the grid — the region a rank actually reads so that
    /// boundary samples interpolate correctly.
    pub fn with_ghost(&self, b: &Block, ghost: usize) -> Subvolume {
        let mut offset = [0usize; 3];
        let mut shape = [0usize; 3];
        for a in 0..3 {
            let lo = b.sub.offset[a].saturating_sub(ghost);
            let hi = (b.sub.offset[a] + b.sub.shape[a] + ghost).min(self.grid[a]);
            offset[a] = lo;
            shape[a] = hi - lo;
        }
        Subvolume::new(offset, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorization_matches_block_count() {
        for n in [1usize, 2, 3, 4, 8, 12, 64, 100, 128, 1000, 2048] {
            let d = BlockDecomposition::new([512, 512, 512], n);
            assert_eq!(d.num_blocks(), n, "n={n} counts={:?}", d.counts());
        }
    }

    #[test]
    fn near_cubic_for_cubic_grids() {
        let d = BlockDecomposition::new([1120, 1120, 1120], 4096);
        let c = d.counts();
        assert_eq!(c[0] * c[1] * c[2], 4096);
        let max = *c.iter().max().unwrap();
        let min = *c.iter().min().unwrap();
        assert!(max / min <= 2, "skewed counts {c:?}");
    }

    #[test]
    fn blocks_partition_the_grid() {
        let d = BlockDecomposition::new([37, 23, 11], 24);
        let mut seen = vec![false; 37 * 23 * 11];
        for b in d.blocks() {
            let e = b.sub.end();
            for z in b.sub.offset[2]..e[2] {
                for y in b.sub.offset[1]..e[1] {
                    for x in b.sub.offset[0]..e[0] {
                        let i = (z * 23 + y) * 37 + x;
                        assert!(!seen[i], "voxel ({x},{y},{z}) covered twice");
                        seen[i] = true;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "some voxels uncovered");
    }

    #[test]
    fn round_robin_assignment_covers_all_blocks() {
        let d = BlockDecomposition::new([64, 64, 64], 12);
        let nranks = 5;
        let mut all: Vec<usize> = (0..nranks)
            .flat_map(|r| d.blocks_for_rank(r, nranks))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
        // One block per rank when counts match.
        let d1 = BlockDecomposition::new([64, 64, 64], 8);
        for r in 0..8 {
            assert_eq!(d1.blocks_for_rank(r, 8), vec![r]);
        }
    }

    #[test]
    fn ghost_clamps_at_domain_edges() {
        let d = BlockDecomposition::new([16, 16, 16], 8);
        let b = d.block(0);
        let g = d.with_ghost(&b, 1);
        assert_eq!(g.offset, [0, 0, 0]);
        assert_eq!(g.shape, [9, 9, 9]);
        let b7 = d.block(7);
        let g7 = d.with_ghost(&b7, 1);
        assert_eq!(g7.offset, [7, 7, 7]);
        assert_eq!(g7.end(), [16, 16, 16]);
    }

    #[test]
    fn anisotropic_grids_split_long_axis_first() {
        let d = BlockDecomposition::new([1000, 10, 10], 8);
        assert_eq!(d.counts(), [8, 1, 1]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn decomposition_partitions_exactly(
            // Grid dims at least as large as any prime factor of n, so
            // the factorization precondition always holds.
            gx in 64usize..128, gy in 64usize..128, gz in 64usize..128,
            n in 1usize..64,
        ) {
            let d = BlockDecomposition::new([gx, gy, gz], n);
            prop_assert_eq!(d.num_blocks(), n);
            let total: usize = d.blocks().iter().map(|b| b.sub.num_elements()).sum();
            prop_assert_eq!(total, gx * gy * gz);
            for b in d.blocks() {
                prop_assert!(b.sub.fits([gx, gy, gz]));
                prop_assert!(b.sub.num_elements() > 0);
            }
        }
    }
}
