//! # pvr-volume — volume data, decomposition, and synthetic datasets
//!
//! The data substrate of the renderer:
//!
//! * [`grid`] — an in-memory structured-grid volume with trilinear
//!   sampling (the unit every rank holds: its block plus ghost layer).
//! * [`blocks`] — the sort-last domain decomposition: the grid is split
//!   into regular blocks, statically assigned one (or a few) per
//!   process, exactly as the paper's renderer does.
//! * [`field`] — procedural scalar fields: infinite-resolution analytic
//!   functions that stand in for datasets we cannot have. The
//!   [`field::SupernovaField`] mimics the paper's core-collapse
//!   supernova time step (accretion-shock shell plus turbulent
//!   interior, five variables: pressure, density, and X/Y/Z velocity).
//!   Procedural fields play the role of the paper's *upsampled* 2240³
//!   and 4480³ steps: any resolution can be sampled without
//!   materializing hundreds of gigabytes.
//!
//! The five-variable field drives both the renderer (through sampled
//! [`grid::Volume`]s) and the I/O study (through `pvr-formats` writers).

// The one unsafe block in this crate (the interior trilinear fetch in
// `grid`) must spell out its own safety argument even inside an
// already-unsafe context; the miri CI job runs the grid tests to check
// the argument holds under the strictest aliasing/bounds model.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod blocks;
pub mod field;
pub mod grid;
pub mod macrocell;

pub use blocks::{Block, BlockDecomposition};
pub use field::{FbmNoise, ScalarField, SupernovaField, VAR_NAMES};
pub use grid::Volume;
pub use macrocell::{MacrocellGrid, MACROCELL_SIZE, REFINED_SIZE};
