//! Min/max macrocells for conservative empty-space skipping.
//!
//! A [`MacrocellGrid`] summarizes a volume at two granularities: one
//! `(min, max)` pair per 8³-voxel macrocell, and one per 2³-voxel
//! *refined* cell. Built once per block (O(voxels), like `min_max`), it
//! is reusable across frames and views: the renderer consults the
//! macrocell ranges per sample (scalar kernel) to prove that a
//! trilinear fetch *must* land in a value range the transfer function
//! maps to exactly zero opacity, and skips the fetch, classification,
//! and shading for that sample. The refined ranges serve the ray-packet
//! kernel's shared skip field, whose dilation by the packet's lane
//! spread would be drowned out by 8-voxel quantization.
//!
//! Conservativeness: trilinear interpolation is a convex combination of
//! the eight corner voxels, so the result lies in `[min, max]` of the
//! corners. Each cell's range is taken over the *inclusive* voxel range
//! `[s·c, min(s·c + s, n-1)]` per axis (`s` = cell size) — one voxel of
//! overlap with the next cell — so that for any sample position `p`
//! with `floor(clamp(p)) = x0` inside the cell, both corners `x0` and
//! `x1 = min(x0+1, n-1)` are covered. Clamped out-of-volume positions
//! resolve to boundary voxels, which boundary cells cover.

use crate::grid::Volume;

/// Edge length of a macrocell in voxels.
pub const MACROCELL_SIZE: usize = 8;

/// Edge length of a refined summary cell in voxels. Divides
/// [`MACROCELL_SIZE`], so every macrocell is exactly a 4³ block of
/// refined cells.
pub const REFINED_SIZE: usize = 2;

/// Two-level per-cell min/max summary of a [`Volume`].
#[derive(Debug, Clone)]
pub struct MacrocellGrid {
    cells: [usize; 3],
    /// Row-major (x fastest) `(min, max)` per macrocell.
    minmax: Vec<(f32, f32)>,
    refined_cells: [usize; 3],
    /// Row-major (x fastest) `(min, max)` per refined cell.
    refined: Vec<(f32, f32)>,
}

impl MacrocellGrid {
    /// Build both summaries in one pass over the volume: the refined
    /// ranges directly, the macrocell ranges by folding the refined
    /// cells they tile. The fold covers exactly the macrocell's
    /// inclusive voxel range (the chained one-voxel overlaps line up),
    /// and min/max is insensitive to the repeated boundary voxels, so
    /// the macrocell ranges are bitwise identical to a direct pass.
    pub fn build(vol: &Volume) -> Self {
        let dims = vol.dims();
        let cells = [
            Self::cells_along(dims[0]),
            Self::cells_along(dims[1]),
            Self::cells_along(dims[2]),
        ];
        let refined_cells = [
            Self::cells_along_size(dims[0], REFINED_SIZE),
            Self::cells_along_size(dims[1], REFINED_SIZE),
            Self::cells_along_size(dims[2], REFINED_SIZE),
        ];
        let mut refined = vec![
            (f32::INFINITY, f32::NEG_INFINITY);
            refined_cells[0] * refined_cells[1] * refined_cells[2]
        ];
        for cz in 0..refined_cells[2] {
            let (z0, z1) = Self::voxel_range_size(cz, dims[2], REFINED_SIZE);
            for cy in 0..refined_cells[1] {
                let (y0, y1) = Self::voxel_range_size(cy, dims[1], REFINED_SIZE);
                for cx in 0..refined_cells[0] {
                    let (x0, x1) = Self::voxel_range_size(cx, dims[0], REFINED_SIZE);
                    let mut lo = f32::INFINITY;
                    let mut hi = f32::NEG_INFINITY;
                    for z in z0..=z1 {
                        for y in y0..=y1 {
                            let row = vol.index(x0, y, z);
                            for &v in &vol.data()[row..row + (x1 - x0 + 1)] {
                                lo = lo.min(v);
                                hi = hi.max(v);
                            }
                        }
                    }
                    refined[(cz * refined_cells[1] + cy) * refined_cells[0] + cx] = (lo, hi);
                }
            }
        }
        let fold = MACROCELL_SIZE / REFINED_SIZE;
        let mut minmax = vec![(f32::INFINITY, f32::NEG_INFINITY); cells[0] * cells[1] * cells[2]];
        for cz in 0..cells[2] {
            for cy in 0..cells[1] {
                for cx in 0..cells[0] {
                    let mut lo = f32::INFINITY;
                    let mut hi = f32::NEG_INFINITY;
                    for rz in (cz * fold)..((cz * fold + fold).min(refined_cells[2])) {
                        for ry in (cy * fold)..((cy * fold + fold).min(refined_cells[1])) {
                            let row = (rz * refined_cells[1] + ry) * refined_cells[0];
                            let rx0 = cx * fold;
                            let rx1 = (rx0 + fold).min(refined_cells[0]);
                            for &(rlo, rhi) in &refined[row + rx0..row + rx1] {
                                lo = lo.min(rlo);
                                hi = hi.max(rhi);
                            }
                        }
                    }
                    minmax[(cz * cells[1] + cy) * cells[0] + cx] = (lo, hi);
                }
            }
        }
        MacrocellGrid {
            cells,
            minmax,
            refined_cells,
            refined,
        }
    }

    fn cells_along(n: usize) -> usize {
        Self::cells_along_size(n, MACROCELL_SIZE)
    }

    fn cells_along_size(n: usize, size: usize) -> usize {
        // Cells must cover voxel indices 0..=n-1.
        (n.max(1) - 1) / size + 1
    }

    /// Inclusive voxel range summarized by cell `c` along an axis of `n`
    /// voxels: `[8c, min(8c + 8, n-1)]` (one voxel of overlap).
    #[cfg(test)]
    fn voxel_range(c: usize, n: usize) -> (usize, usize) {
        Self::voxel_range_size(c, n, MACROCELL_SIZE)
    }

    /// Inclusive voxel range summarized by a size-`size` cell `c`:
    /// `[size·c, min(size·c + size, n-1)]` (one voxel of overlap).
    fn voxel_range_size(c: usize, n: usize, size: usize) -> (usize, usize) {
        let lo = c * size;
        let hi = (lo + size).min(n - 1);
        (lo, hi.max(lo))
    }

    /// Cell counts per axis.
    pub fn cells(&self) -> [usize; 3] {
        self.cells
    }

    pub fn num_cells(&self) -> usize {
        self.minmax.len()
    }

    /// Cell coordinates of the cell holding voxel `(x, y, z)` — the
    /// cell whose range covers the trilinear support of any sample
    /// position that floors (after clamping) to that voxel.
    #[inline]
    pub fn cell_of_voxel(&self, x: usize, y: usize, z: usize) -> [usize; 3] {
        [
            (x / MACROCELL_SIZE).min(self.cells[0] - 1),
            (y / MACROCELL_SIZE).min(self.cells[1] - 1),
            (z / MACROCELL_SIZE).min(self.cells[2] - 1),
        ]
    }

    /// Row-major index of cell `c` (x fastest).
    #[inline]
    pub fn index_of_cell(&self, c: [usize; 3]) -> usize {
        (c[2] * self.cells[1] + c[1]) * self.cells[0] + c[0]
    }

    /// Index of the cell holding voxel `(x, y, z)`; see
    /// [`MacrocellGrid::cell_of_voxel`].
    #[inline]
    pub fn cell_index_of_voxel(&self, x: usize, y: usize, z: usize) -> usize {
        self.index_of_cell(self.cell_of_voxel(x, y, z))
    }

    /// `(min, max)` of cell `i` (row-major, x fastest).
    #[inline]
    pub fn min_max(&self, i: usize) -> (f32, f32) {
        self.minmax[i]
    }

    /// All per-cell ranges (row-major, x fastest) — used to precompute
    /// per-cell verdicts against a transfer function once per render.
    pub fn ranges(&self) -> &[(f32, f32)] {
        &self.minmax
    }

    /// Refined (2³-voxel) cell counts per axis.
    pub fn refined_cells(&self) -> [usize; 3] {
        self.refined_cells
    }

    /// All refined per-cell ranges (row-major, x fastest). Same
    /// conservativeness contract as [`MacrocellGrid::ranges`], at
    /// [`REFINED_SIZE`] granularity.
    pub fn refined_ranges(&self) -> &[(f32, f32)] {
        &self.refined
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(dims: [usize; 3]) -> Volume {
        let mut v = Volume::zeros(dims);
        for z in 0..dims[2] {
            for y in 0..dims[1] {
                for x in 0..dims[0] {
                    v.set(x, y, z, (x + 10 * y + 100 * z) as f32);
                }
            }
        }
        v
    }

    #[test]
    fn cell_counts_cover_all_voxels() {
        for n in [1usize, 7, 8, 9, 16, 17, 24, 128] {
            let cells = MacrocellGrid::cells_along(n);
            // Last voxel index n-1 maps into the last cell.
            assert!((n - 1) / MACROCELL_SIZE < cells, "n={n}");
            // No empty trailing cell.
            assert!((cells - 1) * MACROCELL_SIZE < n, "n={n}");
        }
    }

    #[test]
    fn ranges_overlap_by_one_voxel() {
        let v = ramp([17, 9, 9]);
        let g = MacrocellGrid::build(&v);
        assert_eq!(g.cells(), [3, 2, 2]);
        // Cell 0 along x covers voxels 0..=8 (values 0..=8).
        let (lo, hi) = g.min_max(g.cell_index_of_voxel(0, 0, 0));
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 8.0 + 10.0 * 8.0 + 100.0 * 8.0);
    }

    #[test]
    fn every_trilinear_sample_is_inside_its_cell_range() {
        let v = ramp([13, 11, 10]);
        let g = MacrocellGrid::build(&v);
        let dims = v.dims();
        // Probe a lattice of positions, including out-of-volume ones.
        let probe = |t: f32, n: usize| -> f32 { t * (n as f32 + 2.0) - 1.5 };
        for iz in 0..8 {
            for iy in 0..8 {
                for ix in 0..8 {
                    let p = [
                        probe(ix as f32 / 7.0, dims[0]),
                        probe(iy as f32 / 7.0, dims[1]),
                        probe(iz as f32 / 7.0, dims[2]),
                    ];
                    let s = v.sample_trilinear(p);
                    let vx = (p[0].clamp(0.0, (dims[0] - 1) as f32)) as usize;
                    let vy = (p[1].clamp(0.0, (dims[1] - 1) as f32)) as usize;
                    let vz = (p[2].clamp(0.0, (dims[2] - 1) as f32)) as usize;
                    let (lo, hi) = g.min_max(g.cell_index_of_voxel(vx, vy, vz));
                    assert!(s >= lo && s <= hi, "p={p:?} s={s} range=({lo},{hi})");
                }
            }
        }
    }

    #[test]
    fn refined_ranges_cover_trilinear_support() {
        let v = ramp([13, 11, 10]);
        let g = MacrocellGrid::build(&v);
        let dims = v.dims();
        let probe = |t: f32, n: usize| -> f32 { t * (n as f32 + 2.0) - 1.5 };
        let rc = g.refined_cells();
        for iz in 0..8 {
            for iy in 0..8 {
                for ix in 0..8 {
                    let p = [
                        probe(ix as f32 / 7.0, dims[0]),
                        probe(iy as f32 / 7.0, dims[1]),
                        probe(iz as f32 / 7.0, dims[2]),
                    ];
                    let s = v.sample_trilinear(p);
                    let cell = |c: f32, n: usize, rc_n: usize| -> usize {
                        ((c.clamp(0.0, (n - 1) as f32) as usize) / REFINED_SIZE).min(rc_n - 1)
                    };
                    let cx = cell(p[0], dims[0], rc[0]);
                    let cy = cell(p[1], dims[1], rc[1]);
                    let cz = cell(p[2], dims[2], rc[2]);
                    let (lo, hi) = g.refined_ranges()[(cz * rc[1] + cy) * rc[0] + cx];
                    assert!(s >= lo && s <= hi, "p={p:?} s={s} range=({lo},{hi})");
                }
            }
        }
    }

    #[test]
    fn macrocell_ranges_match_direct_fold() {
        // The macrocell ranges folded from refined cells must equal a
        // direct min/max over the macrocell's inclusive voxel range.
        let v = ramp([17, 9, 9]);
        let g = MacrocellGrid::build(&v);
        let dims = v.dims();
        let cells = g.cells();
        for cz in 0..cells[2] {
            let (z0, z1) = MacrocellGrid::voxel_range(cz, dims[2]);
            for cy in 0..cells[1] {
                let (y0, y1) = MacrocellGrid::voxel_range(cy, dims[1]);
                for cx in 0..cells[0] {
                    let (x0, x1) = MacrocellGrid::voxel_range(cx, dims[0]);
                    let mut lo = f32::INFINITY;
                    let mut hi = f32::NEG_INFINITY;
                    for z in z0..=z1 {
                        for y in y0..=y1 {
                            for x in x0..=x1 {
                                lo = lo.min(v.get(x, y, z));
                                hi = hi.max(v.get(x, y, z));
                            }
                        }
                    }
                    let got = g.min_max((cz * cells[1] + cy) * cells[0] + cx);
                    assert_eq!(got, (lo, hi), "cell ({cx},{cy},{cz})");
                }
            }
        }
    }

    #[test]
    fn single_voxel_volume() {
        let v = Volume::from_data([1, 1, 1], vec![4.5]);
        let g = MacrocellGrid::build(&v);
        assert_eq!(g.num_cells(), 1);
        assert_eq!(g.min_max(0), (4.5, 4.5));
    }
}
