//! Min/max macrocells for conservative empty-space skipping.
//!
//! A [`MacrocellGrid`] summarizes a volume as one `(min, max)` pair per
//! 8³-voxel cell. Built once per block (O(voxels), like `min_max`), it
//! is reusable across frames and views: the renderer consults it per
//! sample to prove that a trilinear fetch *must* land in a value range
//! the transfer function maps to exactly zero opacity, and skips the
//! fetch, classification, and shading for that sample.
//!
//! Conservativeness: trilinear interpolation is a convex combination of
//! the eight corner voxels, so the result lies in `[min, max]` of the
//! corners. Each cell's range is taken over the *inclusive* voxel range
//! `[8c, min(8c + 8, n-1)]` per axis — one voxel of overlap with the
//! next cell — so that for any sample position `p` with
//! `floor(clamp(p)) = x0` inside the cell, both corners `x0` and
//! `x1 = min(x0+1, n-1)` are covered. Clamped out-of-volume positions
//! resolve to boundary voxels, which boundary cells cover.

use crate::grid::Volume;

/// Edge length of a macrocell in voxels.
pub const MACROCELL_SIZE: usize = 8;

/// Per-cell min/max summary of a [`Volume`].
#[derive(Debug, Clone)]
pub struct MacrocellGrid {
    cells: [usize; 3],
    /// Row-major (x fastest) `(min, max)` per cell.
    minmax: Vec<(f32, f32)>,
}

impl MacrocellGrid {
    /// Build the summary by one pass over the volume.
    pub fn build(vol: &Volume) -> Self {
        let dims = vol.dims();
        let cells = [
            Self::cells_along(dims[0]),
            Self::cells_along(dims[1]),
            Self::cells_along(dims[2]),
        ];
        let mut minmax = vec![(f32::INFINITY, f32::NEG_INFINITY); cells[0] * cells[1] * cells[2]];
        for cz in 0..cells[2] {
            let (z0, z1) = Self::voxel_range(cz, dims[2]);
            for cy in 0..cells[1] {
                let (y0, y1) = Self::voxel_range(cy, dims[1]);
                for cx in 0..cells[0] {
                    let (x0, x1) = Self::voxel_range(cx, dims[0]);
                    let mut lo = f32::INFINITY;
                    let mut hi = f32::NEG_INFINITY;
                    for z in z0..=z1 {
                        for y in y0..=y1 {
                            let row = vol.index(x0, y, z);
                            for &v in &vol.data()[row..row + (x1 - x0 + 1)] {
                                lo = lo.min(v);
                                hi = hi.max(v);
                            }
                        }
                    }
                    minmax[(cz * cells[1] + cy) * cells[0] + cx] = (lo, hi);
                }
            }
        }
        MacrocellGrid { cells, minmax }
    }

    fn cells_along(n: usize) -> usize {
        // Cells must cover voxel indices 0..=n-1.
        (n.max(1) - 1) / MACROCELL_SIZE + 1
    }

    /// Inclusive voxel range summarized by cell `c` along an axis of `n`
    /// voxels: `[8c, min(8c + 8, n-1)]` (one voxel of overlap).
    fn voxel_range(c: usize, n: usize) -> (usize, usize) {
        let lo = c * MACROCELL_SIZE;
        let hi = (lo + MACROCELL_SIZE).min(n - 1);
        (lo, hi.max(lo))
    }

    /// Cell counts per axis.
    pub fn cells(&self) -> [usize; 3] {
        self.cells
    }

    pub fn num_cells(&self) -> usize {
        self.minmax.len()
    }

    /// Cell coordinates of the cell holding voxel `(x, y, z)` — the
    /// cell whose range covers the trilinear support of any sample
    /// position that floors (after clamping) to that voxel.
    #[inline]
    pub fn cell_of_voxel(&self, x: usize, y: usize, z: usize) -> [usize; 3] {
        [
            (x / MACROCELL_SIZE).min(self.cells[0] - 1),
            (y / MACROCELL_SIZE).min(self.cells[1] - 1),
            (z / MACROCELL_SIZE).min(self.cells[2] - 1),
        ]
    }

    /// Row-major index of cell `c` (x fastest).
    #[inline]
    pub fn index_of_cell(&self, c: [usize; 3]) -> usize {
        (c[2] * self.cells[1] + c[1]) * self.cells[0] + c[0]
    }

    /// Index of the cell holding voxel `(x, y, z)`; see
    /// [`MacrocellGrid::cell_of_voxel`].
    #[inline]
    pub fn cell_index_of_voxel(&self, x: usize, y: usize, z: usize) -> usize {
        self.index_of_cell(self.cell_of_voxel(x, y, z))
    }

    /// `(min, max)` of cell `i` (row-major, x fastest).
    #[inline]
    pub fn min_max(&self, i: usize) -> (f32, f32) {
        self.minmax[i]
    }

    /// All per-cell ranges (row-major, x fastest) — used to precompute
    /// per-cell verdicts against a transfer function once per render.
    pub fn ranges(&self) -> &[(f32, f32)] {
        &self.minmax
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(dims: [usize; 3]) -> Volume {
        let mut v = Volume::zeros(dims);
        for z in 0..dims[2] {
            for y in 0..dims[1] {
                for x in 0..dims[0] {
                    v.set(x, y, z, (x + 10 * y + 100 * z) as f32);
                }
            }
        }
        v
    }

    #[test]
    fn cell_counts_cover_all_voxels() {
        for n in [1usize, 7, 8, 9, 16, 17, 24, 128] {
            let cells = MacrocellGrid::cells_along(n);
            // Last voxel index n-1 maps into the last cell.
            assert!((n - 1) / MACROCELL_SIZE < cells, "n={n}");
            // No empty trailing cell.
            assert!((cells - 1) * MACROCELL_SIZE < n, "n={n}");
        }
    }

    #[test]
    fn ranges_overlap_by_one_voxel() {
        let v = ramp([17, 9, 9]);
        let g = MacrocellGrid::build(&v);
        assert_eq!(g.cells(), [3, 2, 2]);
        // Cell 0 along x covers voxels 0..=8 (values 0..=8).
        let (lo, hi) = g.min_max(g.cell_index_of_voxel(0, 0, 0));
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 8.0 + 10.0 * 8.0 + 100.0 * 8.0);
    }

    #[test]
    fn every_trilinear_sample_is_inside_its_cell_range() {
        let v = ramp([13, 11, 10]);
        let g = MacrocellGrid::build(&v);
        let dims = v.dims();
        // Probe a lattice of positions, including out-of-volume ones.
        let probe = |t: f32, n: usize| -> f32 { t * (n as f32 + 2.0) - 1.5 };
        for iz in 0..8 {
            for iy in 0..8 {
                for ix in 0..8 {
                    let p = [
                        probe(ix as f32 / 7.0, dims[0]),
                        probe(iy as f32 / 7.0, dims[1]),
                        probe(iz as f32 / 7.0, dims[2]),
                    ];
                    let s = v.sample_trilinear(p);
                    let vx = (p[0].clamp(0.0, (dims[0] - 1) as f32)) as usize;
                    let vy = (p[1].clamp(0.0, (dims[1] - 1) as f32)) as usize;
                    let vz = (p[2].clamp(0.0, (dims[2] - 1) as f32)) as usize;
                    let (lo, hi) = g.min_max(g.cell_index_of_voxel(vx, vy, vz));
                    assert!(s >= lo && s <= hi, "p={p:?} s={s} range=({lo},{hi})");
                }
            }
        }
    }

    #[test]
    fn single_voxel_volume() {
        let v = Volume::from_data([1, 1, 1], vec![4.5]);
        let g = MacrocellGrid::build(&v);
        assert_eq!(g.num_cells(), 1);
        assert_eq!(g.min_max(0), (4.5, 4.5));
    }
}
