//! Double-buffered I/O prefetch for time-step pipelining.
//!
//! The paper's end-to-end finding is that I/O dominates the frame at
//! scale (≥95%, Table II); its future-work section points at
//! overlapping stages across time steps. This module supplies the two
//! building blocks the animation driver needs:
//!
//! * [`Prefetch`] — a background reader: one spawned OS thread that
//!   performs *file reads only* (no communication, so it composes with
//!   both executors) and hands the bytes back on [`Prefetch::join`].
//!   Double buffering with one in-flight prefetch bounds extra memory
//!   at one additional time step's subvolumes.
//! * [`IoThrottle`] — a bandwidth floor that pads short laptop-scale
//!   reads up to `bytes / bytes_per_sec` wall time, so an experiment
//!   can honestly reproduce the paper's I/O-dominated regime (the
//!   padding applies equally to sequential and prefetched reads — it
//!   models a slow store, not a biased benchmark).

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::time::{Duration, Instant};

use pvr_formats::extent::Extent;

/// A minimum-read-time model of a slow storage system: reading `b`
/// bytes takes at least `b / bytes_per_sec` seconds of wall time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoThrottle {
    pub bytes_per_sec: f64,
}

impl IoThrottle {
    pub fn new(bytes_per_sec: f64) -> IoThrottle {
        IoThrottle { bytes_per_sec }
    }

    /// How much pad a read of `bytes` that already took `elapsed`
    /// still owes — the read itself counts toward the floor, so a
    /// genuinely slow store is never padded twice. Simulated ranks
    /// spend this as virtual time (`Comm::sleep`); real threads sleep
    /// it off via [`IoThrottle::pad`].
    pub fn remaining(&self, bytes: u64, elapsed: Duration) -> Duration {
        if self.bytes_per_sec <= 0.0 {
            return Duration::ZERO;
        }
        let floor = Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec);
        floor.saturating_sub(elapsed)
    }

    /// Sleep until at least `bytes / bytes_per_sec` seconds have
    /// elapsed since `started`.
    pub fn pad(&self, bytes: u64, started: Instant) {
        let rem = self.remaining(bytes, started.elapsed());
        if rem > Duration::ZERO {
            std::thread::sleep(rem);
        }
    }
}

/// Read a list of byte extents from a file, one buffer per extent, with
/// an optional bandwidth floor over the total. This is the whole work
/// of an aggregator's window phase, shared by the live read path and
/// the prefetch thread.
pub fn read_extents(
    path: &Path,
    extents: &[Extent],
    throttle: Option<IoThrottle>,
) -> std::io::Result<Vec<Vec<u8>>> {
    let started = Instant::now();
    let mut file = File::open(path)?;
    let mut out = Vec::with_capacity(extents.len());
    let mut total = 0u64;
    for e in extents {
        let mut buf = vec![0u8; e.len as usize];
        file.seek(SeekFrom::Start(e.offset))?;
        file.read_exact(&mut buf)?;
        total += e.len;
        out.push(buf);
    }
    if let Some(t) = throttle {
        t.pad(total, started);
    }
    Ok(out)
}

/// One in-flight background read. The closure runs on a dedicated OS
/// thread; `join` blocks until it finishes and returns its result.
#[derive(Debug)]
pub struct Prefetch<T> {
    handle: std::thread::JoinHandle<std::io::Result<T>>,
}

impl<T: Send + 'static> Prefetch<T> {
    /// Start a background read. The closure must only touch the
    /// filesystem — it runs outside any rank context.
    pub fn spawn<F>(f: F) -> Prefetch<T>
    where
        F: FnOnce() -> std::io::Result<T> + Send + 'static,
    {
        Prefetch {
            handle: std::thread::spawn(f),
        }
    }

    /// Wait for the read and take its result.
    pub fn join(self) -> std::io::Result<T> {
        match self.handle.join() {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// Whether the background read has already completed (join will
    /// not block).
    pub fn is_done(&self) -> bool {
        self.handle.is_finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("pvr-prefetch-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    #[test]
    fn read_extents_returns_the_requested_bytes() {
        let p = tmp("extents.bin");
        let data: Vec<u8> = (0u32..1024).map(|i| (i % 251) as u8).collect();
        std::fs::File::create(&p).unwrap().write_all(&data).unwrap();
        let ext = [Extent::new(16, 32), Extent::new(512, 100)];
        let got = read_extents(&p, &ext, None).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], &data[16..48]);
        assert_eq!(got[1], &data[512..612]);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn throttle_enforces_a_bandwidth_floor() {
        let p = tmp("slow.bin");
        std::fs::File::create(&p)
            .unwrap()
            .write_all(&[7u8; 4096])
            .unwrap();
        // 4096 bytes at 200 KB/s → at least ~20 ms.
        let t = IoThrottle::new(200_000.0);
        let started = Instant::now();
        let got = read_extents(&p, &[Extent::new(0, 4096)], Some(t)).unwrap();
        assert!(started.elapsed() >= Duration::from_millis(18));
        assert_eq!(got[0].len(), 4096);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn prefetch_overlaps_and_joins() {
        let p = tmp("bg.bin");
        std::fs::File::create(&p)
            .unwrap()
            .write_all(&[42u8; 256])
            .unwrap();
        let path = p.clone();
        let pf = Prefetch::spawn(move || read_extents(&path, &[Extent::new(0, 256)], None));
        let got = pf.join().unwrap();
        assert_eq!(got[0], vec![42u8; 256]);
        std::fs::remove_file(&p).ok();
    }
}
