//! Storage-side fault model and recovery accounting.
//!
//! The paper's I/O study ran against a GPFS installation the authors
//! called "unstable during this time" (Section V): servers dropped out,
//! bandwidth sagged, request latencies spiked. This module makes those
//! failure modes first-class for the [`StripedStore`] simulation and the
//! real [`twophase`](crate::twophase) byte path:
//!
//! * [`ServerFaults`] — per-server state: down, degraded streaming
//!   bandwidth, elevated per-request overhead.
//! * [`IoRecovery`] — the client-side policy: per-request retries with
//!   exponential backoff, then stripe-replica failover (read the replica
//!   server when the primary stays down), with the extra traffic
//!   accounted rather than hidden.
//! * [`window_fault_audit`] — the shared per-window verdict both the
//!   priced path ([`StripedStore::service_faulty`]) and the executing
//!   path (`two_phase_execute_ft`) derive their behaviour from, so the
//!   model and the byte path cannot drift apart.
//!
//! Everything here advances a *virtual* clock (seconds in the returned
//! accounting); nothing sleeps.

use pvr_formats::extent::{coalesce, Extent};

use crate::server::{StoreReport, StripedStore};

/// Per-server fault state for a [`StripedStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerFaults {
    /// Server is unreachable (requests time out).
    pub down: Vec<bool>,
    /// Multiplier on the server's streaming bandwidth (1.0 = healthy).
    pub bw_factor: Vec<f64>,
    /// Additional per-request overhead, seconds (0.0 = healthy).
    pub extra_overhead: Vec<f64>,
}

impl ServerFaults {
    /// All `n` servers healthy.
    pub fn none(n: usize) -> Self {
        ServerFaults {
            down: vec![false; n],
            bw_factor: vec![1.0; n],
            extra_overhead: vec![0.0; n],
        }
    }

    /// Any server down or degraded?
    pub fn any(&self) -> bool {
        self.down.iter().any(|&d| d)
            || self.bw_factor.iter().any(|&f| f < 1.0)
            || self.extra_overhead.iter().any(|&o| o > 0.0)
    }

    pub fn is_down(&self, server: usize) -> bool {
        self.down.get(server).copied().unwrap_or(false)
    }

    /// Mark one server down (extends the vectors if needed).
    pub fn set_down(&mut self, server: usize) {
        if server >= self.down.len() {
            let n = server + 1;
            self.down.resize(n, false);
            self.bw_factor.resize(n, 1.0);
            self.extra_overhead.resize(n, 0.0);
        }
        self.down[server] = true;
    }
}

/// Client-side I/O recovery policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoRecovery {
    /// Read the stripe replica when the primary server stays down.
    pub failover: bool,
    /// The replica of stripe data on server `s` lives on
    /// `(s + replica_offset) % servers` (PVFS-style declustered copy).
    pub replica_offset: usize,
    /// Retries against the primary before giving up / failing over.
    pub max_retries: u32,
    /// First retry delay, seconds; doubles per attempt.
    pub backoff_s: f64,
}

impl Default for IoRecovery {
    fn default() -> Self {
        IoRecovery {
            failover: true,
            replica_offset: 1,
            max_retries: 4,
            backoff_s: 1e-3,
        }
    }
}

impl IoRecovery {
    /// No retries, no failover: a down server's bytes are simply lost.
    pub fn none() -> Self {
        IoRecovery {
            failover: false,
            replica_offset: 1,
            max_retries: 0,
            backoff_s: 0.0,
        }
    }

    /// Total serial backoff delay of a full (failed) retry ladder.
    pub fn ladder_delay(&self) -> f64 {
        // backoff * (1 + 2 + 4 + ...) over max_retries attempts.
        self.backoff_s * ((1u64 << self.max_retries.min(62)) - 1) as f64
    }
}

/// The replica server of `server` under `rec`.
pub fn replica_of(store: &StripedStore, server: usize, rec: &IoRecovery) -> usize {
    (server + rec.replica_offset) % store.servers
}

/// Verdict for one collective-buffer window against a faulted store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowAudit {
    /// Byte ranges no retry or replica could serve (coalesced).
    pub unrecoverable: Vec<Extent>,
    /// Retry attempts spent against down primaries.
    pub retries: u64,
    /// Stripe pieces redirected to a replica.
    pub failovers: u64,
    /// Bytes read from replicas instead of primaries.
    pub failover_bytes: u64,
    /// Serial retry/backoff delay charged to the reading client,
    /// seconds (virtual).
    pub delay_s: f64,
}

impl WindowAudit {
    pub fn merge(&mut self, other: &WindowAudit) {
        self.unrecoverable
            .extend(other.unrecoverable.iter().copied());
        coalesce(&mut self.unrecoverable);
        self.retries += other.retries;
        self.failovers += other.failovers;
        self.failover_bytes += other.failover_bytes;
        self.delay_s += other.delay_s;
    }

    pub fn unrecovered_bytes(&self) -> u64 {
        self.unrecoverable.iter().map(|e| e.len).sum()
    }
}

/// Audit one window read against the fault state: which stripe pieces
/// hit a down primary, which of those a replica rescues, and which
/// bytes stay unrecoverable. Both the priced store and the executing
/// two-phase path consult this, so their verdicts agree by
/// construction.
pub fn window_fault_audit(
    store: &StripedStore,
    faults: &ServerFaults,
    rec: &IoRecovery,
    window: Extent,
) -> WindowAudit {
    let mut audit = WindowAudit::default();
    if window.is_empty() || !faults.any() {
        return audit;
    }
    let first = window.offset / store.stripe_unit;
    let last = (window.end() - 1) / store.stripe_unit;
    for stripe in first..=last {
        let srv = (stripe % store.servers as u64) as usize;
        if !faults.is_down(srv) {
            continue;
        }
        let s_lo = stripe * store.stripe_unit;
        let lo = window.offset.max(s_lo);
        let hi = window.end().min(s_lo + store.stripe_unit);
        let piece = Extent::new(lo, hi - lo);
        // The primary never answers: burn the retry ladder...
        audit.retries += u64::from(rec.max_retries);
        audit.delay_s += rec.ladder_delay();
        // ...then fail over, if allowed and the replica is alive.
        let replica = replica_of(store, srv, rec);
        if rec.failover && !faults.is_down(replica) {
            audit.failovers += 1;
            audit.failover_bytes += piece.len;
        } else {
            audit.unrecoverable.push(piece);
        }
    }
    coalesce(&mut audit.unrecoverable);
    audit
}

/// [`StoreReport`] of a degraded service run, plus the recovery
/// accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyStoreReport {
    /// The per-server load report with failover traffic in place (a
    /// replica's bytes count against the replica server).
    pub base: StoreReport,
    pub retries: u64,
    pub failover_requests: u64,
    pub failover_bytes: u64,
    /// Bytes neither retries nor replicas could serve.
    pub unserved_bytes: u64,
    /// Serial retry/backoff delay included in the makespan, seconds.
    pub retry_delay_s: f64,
}

impl StripedStore {
    /// Service an access list against a faulted store under a recovery
    /// policy. Down primaries cost the retry ladder, then their pieces
    /// either move to the replica server (whose degraded bandwidth and
    /// overhead then price them) or go unserved. Degraded servers
    /// (`bw_factor`, `extra_overhead`) serve their load slower.
    pub fn service_faulty(
        &self,
        accesses: &[Extent],
        faults: &ServerFaults,
        rec: &IoRecovery,
    ) -> FaultyStoreReport {
        let mut server_bytes = vec![0u64; self.servers];
        let mut server_requests = vec![0usize; self.servers];
        let mut retries = 0u64;
        let mut failover_requests = 0u64;
        let mut failover_bytes = 0u64;
        let mut unserved_bytes = 0u64;
        let mut retry_delay_s = 0.0f64;

        for &e in accesses {
            if e.is_empty() {
                continue;
            }
            let audit = window_fault_audit(self, faults, rec, e);
            retries += audit.retries;
            retry_delay_s += audit.delay_s;
            failover_requests += audit.failovers;
            failover_bytes += audit.failover_bytes;
            unserved_bytes += audit.unrecovered_bytes();

            // Distribute the access stripe-by-stripe to the server that
            // actually serves each piece (primary, replica, or nobody).
            let first = e.offset / self.stripe_unit;
            let last = (e.end() - 1) / self.stripe_unit;
            let mut touched = vec![false; self.servers];
            for stripe in first..=last {
                let primary = (stripe % self.servers as u64) as usize;
                let s_lo = stripe * self.stripe_unit;
                let lo = e.offset.max(s_lo);
                let hi = e.end().min(s_lo + self.stripe_unit);
                let srv = if !faults.is_down(primary) {
                    primary
                } else {
                    let replica = replica_of(self, primary, rec);
                    if rec.failover && !faults.is_down(replica) {
                        replica
                    } else {
                        continue; // unserved; already accounted
                    }
                };
                server_bytes[srv] += hi - lo;
                if !touched[srv] {
                    touched[srv] = true;
                    server_requests[srv] += 1;
                }
            }
        }

        let total_bytes: u64 = server_bytes.iter().sum();
        let makespan = server_bytes
            .iter()
            .zip(&server_requests)
            .enumerate()
            .map(|(s, (&b, &r))| {
                let bw = self.server_bw * faults.bw_factor.get(s).copied().unwrap_or(1.0).max(1e-6);
                let ov =
                    self.request_overhead + faults.extra_overhead.get(s).copied().unwrap_or(0.0);
                b as f64 / bw + r as f64 * ov
            })
            .fold(0.0f64, f64::max)
            + retry_delay_s;
        FaultyStoreReport {
            base: StoreReport {
                makespan,
                server_bytes,
                server_requests,
                total_bytes,
            },
            retries,
            failover_requests,
            failover_bytes,
            unserved_bytes,
            retry_delay_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(servers: usize, stripe: u64) -> StripedStore {
        StripedStore {
            servers,
            stripe_unit: stripe,
            server_bw: 100.0e6,
            request_overhead: 1e-3,
        }
    }

    #[test]
    fn healthy_store_matches_plain_service() {
        let s = store(4, 1000);
        let accesses: Vec<Extent> = (0..6).map(|i| Extent::new(i * 1500, 900)).collect();
        let plain = s.service(&accesses);
        let ft = s.service_faulty(&accesses, &ServerFaults::none(4), &IoRecovery::default());
        assert_eq!(ft.base, plain);
        assert_eq!(ft.retries, 0);
        assert_eq!(ft.unserved_bytes, 0);
    }

    #[test]
    fn down_server_fails_over_to_replica() {
        let s = store(4, 1000);
        let mut faults = ServerFaults::none(4);
        faults.set_down(0);
        let rec = IoRecovery::default();
        // One full-stride access touches every server once.
        let ft = s.service_faulty(&[Extent::new(0, 4000)], &faults, &rec);
        assert_eq!(ft.unserved_bytes, 0);
        assert_eq!(ft.failover_bytes, 1000);
        assert!(ft.retries >= u64::from(rec.max_retries));
        // Server 0's stripe landed on server 1 (its replica).
        assert_eq!(ft.base.server_bytes[0], 0);
        assert_eq!(ft.base.server_bytes[1], 2000);
        assert!(ft.base.makespan > s.service(&[Extent::new(0, 4000)]).makespan);
    }

    #[test]
    fn no_failover_loses_the_down_servers_bytes() {
        let s = store(4, 1000);
        let mut faults = ServerFaults::none(4);
        faults.set_down(2);
        let ft = s.service_faulty(&[Extent::new(0, 8000)], &faults, &IoRecovery::none());
        assert_eq!(ft.unserved_bytes, 2000);
        assert_eq!(ft.failover_bytes, 0);
        assert_eq!(ft.base.total_bytes, 6000);
    }

    #[test]
    fn down_replica_too_means_unrecoverable() {
        let s = store(4, 1000);
        let mut faults = ServerFaults::none(4);
        faults.set_down(1);
        faults.set_down(2); // replica of 1 at offset 1
        let rec = IoRecovery::default();
        let ft = s.service_faulty(&[Extent::new(0, 4000)], &faults, &rec);
        assert_eq!(ft.unserved_bytes, 1000);
        // Server 2's own stripe still failed over to 3.
        assert_eq!(ft.failover_bytes, 1000);
    }

    #[test]
    fn degraded_bandwidth_slows_the_makespan() {
        let s = store(4, 1000);
        let mut faults = ServerFaults::none(4);
        faults.bw_factor[3] = 0.1;
        faults.extra_overhead[3] = 5e-3;
        let healthy = s.service(&[Extent::new(0, 8000)]).makespan;
        let ft = s.service_faulty(&[Extent::new(0, 8000)], &faults, &IoRecovery::default());
        assert!(ft.base.makespan > healthy * 2.0);
        assert_eq!(ft.unserved_bytes, 0);
    }

    #[test]
    fn audit_is_deterministic_and_coalesced() {
        let s = store(4, 1000);
        let mut faults = ServerFaults::none(4);
        faults.set_down(0);
        let rec = IoRecovery::none();
        // A window spanning two turns of the round-robin hits server 0
        // twice; the two lost pieces stay distinct ranges.
        let a = window_fault_audit(&s, &faults, &rec, Extent::new(0, 8000));
        let b = window_fault_audit(&s, &faults, &rec, Extent::new(0, 8000));
        assert_eq!(a, b);
        assert_eq!(a.unrecovered_bytes(), 2000);
        assert_eq!(a.unrecoverable.len(), 2);
    }

    #[test]
    fn ladder_delay_is_exponential() {
        let rec = IoRecovery {
            max_retries: 3,
            backoff_s: 1.0,
            ..IoRecovery::default()
        };
        assert!((rec.ladder_delay() - 7.0).abs() < 1e-12); // 1 + 2 + 4
        assert_eq!(IoRecovery::none().ladder_delay(), 0.0);
    }
}
