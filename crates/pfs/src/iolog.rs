//! Access logging and Figure-9-style access-pattern maps.
//!
//! The paper visualizes its I/O logs as a grid of file blocks, dark
//! where the block was physically read and light where it was untouched.
//! [`AccessMap`] reproduces that: the file is bucketed into cells, each
//! access marks the cells it covers, and the map renders as ASCII art or
//! a binary PGM image.

use pvr_formats::extent::Extent;

/// Aggregate statistics over a set of physical accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoStats {
    pub accesses: usize,
    pub physical_bytes: u64,
    pub useful_bytes: u64,
    pub mean_access_bytes: f64,
}

impl IoStats {
    pub fn from_accesses(accesses: &[Extent], useful_bytes: u64) -> Self {
        let physical: u64 = accesses.iter().map(|e| e.len).sum();
        IoStats {
            accesses: accesses.len(),
            physical_bytes: physical,
            useful_bytes,
            mean_access_bytes: if accesses.is_empty() {
                0.0
            } else {
                physical as f64 / accesses.len() as f64
            },
        }
    }

    /// The paper's data density: useful / physical.
    pub fn data_density(&self) -> f64 {
        if self.physical_bytes == 0 {
            1.0
        } else {
            self.useful_bytes as f64 / self.physical_bytes as f64
        }
    }
}

/// A 2D map of which file regions were physically read.
#[derive(Debug, Clone)]
pub struct AccessMap {
    width: usize,
    height: usize,
    file_size: u64,
    /// Fraction of each cell's bytes that were read (0.0 – 1.0; reads
    /// of the same byte by different accesses saturate at 1.0).
    cells: Vec<f32>,
}

impl AccessMap {
    /// Create a `width x height` map of a file of `file_size` bytes.
    pub fn new(width: usize, height: usize, file_size: u64) -> Self {
        assert!(width > 0 && height > 0 && file_size > 0);
        AccessMap {
            width,
            height,
            file_size,
            cells: vec![0.0; width * height],
        }
    }

    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    fn cell_bytes(&self) -> f64 {
        self.file_size as f64 / (self.width * self.height) as f64
    }

    /// Mark an access. Cells are filled proportionally to the bytes of
    /// the access they contain.
    pub fn mark(&mut self, e: Extent) {
        if e.is_empty() {
            return;
        }
        let cb = self.cell_bytes();
        let first = ((e.offset as f64) / cb).floor() as usize;
        let last = (((e.end() - 1) as f64) / cb).floor() as usize;
        let last = last.min(self.cells.len() - 1);
        for c in first..=last {
            let c_lo = c as f64 * cb;
            let c_hi = c_lo + cb;
            let lo = (e.offset as f64).max(c_lo);
            let hi = (e.end() as f64).min(c_hi);
            let frac = ((hi - lo) / cb) as f32;
            self.cells[c] = (self.cells[c] + frac).min(1.0);
        }
    }

    pub fn mark_all(&mut self, accesses: &[Extent]) {
        for e in accesses {
            self.mark(*e);
        }
    }

    /// Fraction of the file (by cells, weighted by coverage) read.
    pub fn coverage(&self) -> f64 {
        self.cells.iter().map(|&c| c as f64).sum::<f64>() / self.cells.len() as f64
    }

    /// Render as ASCII art rows: '#' for ≥ 2/3 covered cells, '+' for
    /// partially covered, '.' for untouched — the dark/light blocks of
    /// Figure 9.
    pub fn to_ascii(&self) -> String {
        let mut s = String::with_capacity((self.width + 1) * self.height);
        for row in 0..self.height {
            for col in 0..self.width {
                let c = self.cells[row * self.width + col];
                s.push(if c >= 0.67 {
                    '#'
                } else if c > 0.05 {
                    '+'
                } else {
                    '.'
                });
            }
            s.push('\n');
        }
        s
    }

    /// Render as a binary PGM (P5) image, dark = read (as in the paper).
    pub fn to_pgm(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend(self.cells.iter().map(|&c| (255.0 * (1.0 - c)) as u8));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_density() {
        let acc = vec![Extent::new(0, 100), Extent::new(200, 300)];
        let s = IoStats::from_accesses(&acc, 200);
        assert_eq!(s.accesses, 2);
        assert_eq!(s.physical_bytes, 400);
        assert!((s.data_density() - 0.5).abs() < 1e-12);
        assert!((s.mean_access_bytes - 200.0).abs() < 1e-12);
    }

    #[test]
    fn full_read_gives_full_coverage() {
        let mut m = AccessMap::new(8, 4, 1 << 20);
        m.mark(Extent::new(0, 1 << 20));
        assert!((m.coverage() - 1.0).abs() < 1e-6);
        assert!(m.to_ascii().chars().filter(|&c| c == '#').count() == 32);
    }

    #[test]
    fn partial_read_covers_proportionally() {
        let mut m = AccessMap::new(10, 1, 1000);
        m.mark(Extent::new(0, 250)); // 2.5 cells
        assert!((m.coverage() - 0.25).abs() < 1e-6);
        let a = m.to_ascii();
        assert!(a.starts_with("##+"));
        assert!(a.contains('.'));
    }

    #[test]
    fn overlapping_marks_saturate() {
        let mut m = AccessMap::new(4, 1, 400);
        m.mark(Extent::new(0, 100));
        m.mark(Extent::new(0, 100));
        assert!((m.coverage() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn pgm_is_well_formed() {
        let mut m = AccessMap::new(16, 8, 4096);
        m.mark(Extent::new(0, 2048));
        let pgm = m.to_pgm();
        assert!(pgm.starts_with(b"P5\n16 8\n255\n"));
        assert_eq!(pgm.len(), b"P5\n16 8\n255\n".len() + 128);
        // First half dark (0), second half light (255).
        let pix = &pgm[b"P5\n16 8\n255\n".len()..];
        assert_eq!(pix[0], 0);
        assert_eq!(pix[127], 255);
    }

    #[test]
    fn mark_past_eof_is_clamped() {
        let mut m = AccessMap::new(4, 1, 400);
        m.mark(Extent::new(350, 500));
        assert!(m.coverage() > 0.0);
    }
}
