//! Calibrated storage timing model.
//!
//! The paper's I/O wall-clock comes from the ANL storage fabric: 17 SAN
//! racks (~50 GB/s peak) reached through one I/O node per 64 compute
//! nodes, at application-level rates of 0.3–1.6 GB/s for this access
//! pattern. We reproduce those rates with a three-term model:
//!
//! ```text
//! BW = min( C0 * io_nodes^a * (bytes/ref)^b,   # fabric + locality scaling
//!           io_nodes * tree_link_bw,           # compute-side bridges
//!           aggregators * torus_link_bw,       # client injection
//!           SAN peak )
//! time = open + bytes/BW + per-access overhead (parallel over aggregators)
//! ```
//!
//! `C0`, `a`, `b` are fit to the six read-bandwidth cells of the paper's
//! Table II (0.87/1.02/1.26 GB/s for the 2240³ step at 8K/16K/32K cores
//! and 1.13/1.30/1.63 GB/s for 4480³), giving `C0 = 284 MB/s`,
//! `a = 0.27`, `b = 0.12`. The same constants then *predict* the 1120³
//! behaviour of Figures 3 and 7 — they are not re-fit per figure.

use pvr_bgp::consts;

/// Storage fabric model with calibrated constants (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct StorageModel {
    /// Base application-level bandwidth at one I/O node for a
    /// reference-sized read, bytes/s.
    pub base_bw: f64,
    /// Scaling exponent with I/O-node count.
    pub io_scaling_exp: f64,
    /// Reference transfer size for the size-locality term, bytes.
    pub size_ref: f64,
    /// Scaling exponent with transfer size.
    pub size_exp: f64,
    /// Compute-side bandwidth of one I/O-node bridge (tree link).
    pub io_node_bw: f64,
    /// Client injection bandwidth per aggregator (torus link).
    pub client_bw: f64,
    /// Aggregate SAN peak (the paper's ~50 GB/s ceiling).
    pub san_peak: f64,
    /// Collective file-open cost, seconds.
    pub open_cost: f64,
    /// Per-access server overhead, seconds (paid serially per
    /// aggregator, in parallel across aggregators).
    pub access_overhead: f64,
}

impl Default for StorageModel {
    fn default() -> Self {
        StorageModel {
            base_bw: 284.5e6,
            io_scaling_exp: 0.27,
            size_ref: 10.0e9,
            size_exp: 0.121,
            io_node_bw: consts::TREE_LINK_BW,
            client_bw: consts::TORUS_LINK_BW,
            san_peak: 50.0e9,
            open_cost: 15e-3,
            access_overhead: 0.4e-3,
        }
    }
}

impl StorageModel {
    /// Application-level aggregate bandwidth for a read of
    /// `physical_bytes` through `io_nodes` bridges with `aggregators`
    /// reading clients.
    pub fn aggregate_bandwidth(
        &self,
        physical_bytes: u64,
        io_nodes: usize,
        aggregators: usize,
    ) -> f64 {
        let io = io_nodes.max(1) as f64;
        let na = aggregators.max(1) as f64;
        let size_term = ((physical_bytes.max(1) as f64) / self.size_ref)
            .powf(self.size_exp)
            .clamp(0.25, 4.0);
        let fabric = self.base_bw * io.powf(self.io_scaling_exp) * size_term;
        fabric
            .min(io * self.io_node_bw)
            .min(na * self.client_bw)
            .min(self.san_peak)
    }

    /// Wall-clock seconds to complete a read phase that physically moves
    /// `physical_bytes` in `accesses` requests issued by `aggregators`
    /// clients through `io_nodes` bridges.
    pub fn read_time(
        &self,
        physical_bytes: u64,
        accesses: usize,
        io_nodes: usize,
        aggregators: usize,
    ) -> f64 {
        if physical_bytes == 0 {
            return self.open_cost;
        }
        let bw = self.aggregate_bandwidth(physical_bytes, io_nodes, aggregators);
        let per_aggr_accesses = accesses.div_ceil(aggregators.max(1));
        self.open_cost
            + physical_bytes as f64 / bw
            + per_aggr_accesses as f64 * self.access_overhead
    }

    /// [`StorageModel::read_time`] against a degraded fabric: only
    /// `avail_frac` of the storage servers are healthy (the aggregate
    /// bandwidth scales with the surviving fraction) and recovery spent
    /// `extra_delay` seconds of serial retry/backoff on the critical
    /// path. `avail_frac = 1.0, extra_delay = 0.0` reproduces
    /// `read_time` exactly.
    pub fn read_time_degraded(
        &self,
        physical_bytes: u64,
        accesses: usize,
        io_nodes: usize,
        aggregators: usize,
        avail_frac: f64,
        extra_delay: f64,
    ) -> f64 {
        if physical_bytes == 0 {
            return self.open_cost + extra_delay;
        }
        let bw = self.aggregate_bandwidth(physical_bytes, io_nodes, aggregators)
            * avail_frac.clamp(1e-3, 1.0);
        let per_aggr_accesses = accesses.div_ceil(aggregators.max(1));
        self.open_cost
            + physical_bytes as f64 / bw
            + per_aggr_accesses as f64 * self.access_overhead
            + extra_delay
    }

    /// Seconds for the exchange phase that redistributes `bytes` from
    /// aggregators to the ranks that own them. The traffic is spread
    /// over the partition's torus; at the paper's scales it is a small
    /// fraction of the read phase.
    pub fn exchange_time(&self, bytes: u64, nodes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        // Each node can drain roughly half a link of exchange traffic
        // under DOR contention.
        let bw = nodes.max(1) as f64 * self.client_bw * 0.5;
        bytes as f64 / bw + consts::TORUS_MAX_LATENCY
    }

    /// BG/P-style default aggregator count: eight per pset, capped at
    /// the rank count.
    pub fn default_aggregators(ranks: usize, io_nodes: usize) -> usize {
        (8 * io_nodes.max(1)).min(ranks.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9;

    /// The model must reproduce the six Table II read-bandwidth cells
    /// within ~20% — the calibration targets.
    #[test]
    fn table2_bandwidths_within_tolerance() {
        let m = StorageModel::default();
        // (grid bytes, cores, paper GB/s)
        let cases = [
            (44.9e9, 8192usize, 0.87),
            (44.9e9, 16384, 1.02),
            (44.9e9, 32768, 1.26),
            (359.0e9, 8192, 1.13),
            (359.0e9, 16384, 1.30),
            (359.0e9, 32768, 1.63),
        ];
        for (bytes, cores, paper) in cases {
            let io_nodes = cores / 4 / 64;
            let naggr = StorageModel::default_aggregators(cores, io_nodes);
            let bw = m.aggregate_bandwidth(bytes as u64, io_nodes, naggr) / GB;
            let err = (bw - paper).abs() / paper;
            assert!(
                err < 0.20,
                "{bytes}B @ {cores}: model {bw:.2} vs paper {paper} ({err:.0}%)"
            );
        }
    }

    #[test]
    fn bandwidth_grows_with_io_nodes() {
        let m = StorageModel::default();
        let b1 = m.aggregate_bandwidth(5 << 30, 1, 8);
        let b8 = m.aggregate_bandwidth(5 << 30, 8, 64);
        let b128 = m.aggregate_bandwidth(5 << 30, 128, 1024);
        assert!(b1 < b8 && b8 < b128);
        assert!(b128 < m.san_peak);
    }

    #[test]
    fn single_io_node_is_tree_limited_for_huge_reads() {
        // Pretend the fabric is infinitely fast.
        let m = StorageModel {
            base_bw: 10e9,
            ..Default::default()
        };
        let bw = m.aggregate_bandwidth(1 << 40, 1, 64);
        assert!(bw <= m.io_node_bw + 1.0);
    }

    #[test]
    fn read_time_includes_access_overhead() {
        let m = StorageModel::default();
        let fast = m.read_time(1 << 30, 10, 8, 8);
        let slow = m.read_time(1 << 30, 100_000, 8, 8);
        assert!(slow > fast + 1.0, "fast {fast} slow {slow}");
    }

    #[test]
    fn degraded_read_time_reduces_to_plain_when_healthy() {
        let m = StorageModel::default();
        let plain = m.read_time(1 << 30, 500, 16, 128);
        let healthy = m.read_time_degraded(1 << 30, 500, 16, 128, 1.0, 0.0);
        assert!((plain - healthy).abs() < 1e-12);
        let degraded = m.read_time_degraded(1 << 30, 500, 16, 128, 0.5, 0.25);
        assert!(degraded > plain + 0.25);
    }

    #[test]
    fn exchange_is_small_versus_read_at_scale() {
        let m = StorageModel::default();
        let read = m.read_time(5_368_709_120, 3000, 64, 512);
        let exch = m.exchange_time(5_368_709_120, 4096);
        assert!(exch < read / 20.0, "read {read} exchange {exch}");
    }

    #[test]
    fn frame_level_sanity_1120_at_16k() {
        // The paper's best frame: 1120^3 raw read in ~5.3 s at 16K cores.
        let m = StorageModel::default();
        let bytes = 1120u64.pow(3) * 4;
        let io_nodes = 16384 / 4 / 64;
        let naggr = StorageModel::default_aggregators(16384, io_nodes);
        let accesses = (bytes / (16 << 20)) as usize + naggr; // ~16 MiB windows
        let t = m.read_time(bytes, accesses, io_nodes, naggr);
        assert!(t > 4.0 && t < 8.5, "I/O time {t}");
    }
}
