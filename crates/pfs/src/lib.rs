//! # pvr-pfs — parallel file system and collective I/O
//!
//! The substrate behind the paper's I/O study (Section V). Three layers:
//!
//! * [`twophase`] — a ROMIO-style **two-phase collective read**: a
//!   subset of ranks act as *aggregators*, the aggregate byte request is
//!   partitioned into contiguous *file domains*, and each aggregator
//!   walks its domain in `cb_buffer_size` windows, reading any window
//!   that contains needed bytes **in full** (this whole-window behaviour
//!   is what ROMIO's `read_and_exch` does, and it is the mechanism
//!   behind the paper's untuned-netCDF pathology: when the collective
//!   buffer is larger than the netCDF record stride, the windows swallow
//!   the gaps between the wanted variable's records and most of the file
//!   is read). The engine runs in two modes: *plan* (pure, any scale —
//!   produces the access list and statistics) and *execute* (actually
//!   reads a local file and scatters bytes to per-rank buffers).
//! * [`sieve`] — independent (non-collective) reads with data sieving,
//!   used for the HDF5-like chunked path, which in that era fell back to
//!   per-process chunk fetches.
//! * [`iolog`] + [`model`] — access logging (counts, sizes, data
//!   density, Figure-9-style access maps) and the calibrated storage
//!   timing model (SAN servers behind per-pset I/O nodes).
//!
//! "Data density" follows the paper's definition: the physical size of
//! the desired data divided by the number of bytes actually read by the
//! underlying I/O machinery.

pub mod fault;
pub mod iolog;
pub mod model;
pub mod prefetch;
pub mod server;
pub mod sieve;
pub mod twophase;

pub use fault::{window_fault_audit, FaultyStoreReport, IoRecovery, ServerFaults, WindowAudit};
pub use iolog::{AccessMap, IoStats};
pub use model::StorageModel;
pub use prefetch::{read_extents, IoThrottle, Prefetch};
pub use server::{StoreReport, StripedStore};
pub use twophase::{
    two_phase_execute, two_phase_execute_ft, two_phase_plan, two_phase_write, CollectiveHints,
    FtExecResult, IoPlan, Piece, RankRequest, ScatterPlan,
};
