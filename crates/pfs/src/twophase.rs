//! ROMIO-style two-phase collective read.
//!
//! Phase 1 (read): aggregator ranks read contiguous windows of their
//! file domains into collective buffers. Phase 2 (exchange): each
//! aggregator scatters the bytes each rank asked for.
//!
//! The planner is pure and cheap — it needs only the *aggregate* extent
//! list, which coalesces to a handful of runs even for a 4480³ variable,
//! so full paper-scale access patterns can be computed on a laptop.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};

use pvr_formats::extent::{clip, coalesce, total_bytes, union_bytes, Extent};
use pvr_formats::layout::PlacedRun;
use pvr_formats::ELEM_SIZE;

/// MPI-IO hints controlling the collective read — the paper's tuning
/// knobs ("adjusting such parameters as internal buffer sizes and number
/// of I/O aggregators").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveHints {
    /// `cb_buffer_size`: bytes of the collective buffer each aggregator
    /// reads per window. ROMIO's default is 16 MiB; the paper's tuned
    /// runs set it to the netCDF record size.
    pub cb_buffer_size: u64,
    /// `cb_nodes`: number of aggregator ranks. `None` selects the
    /// BG/P-style default chosen by the caller (typically a few per
    /// pset).
    pub cb_nodes: Option<usize>,
}

impl Default for CollectiveHints {
    fn default() -> Self {
        CollectiveHints {
            cb_buffer_size: 16 << 20,
            cb_nodes: None,
        }
    }
}

impl CollectiveHints {
    /// The paper's tuned configuration: collective buffer matched to the
    /// netCDF record size.
    pub fn tuned(record_bytes: u64) -> Self {
        CollectiveHints {
            cb_buffer_size: record_bytes,
            cb_nodes: None,
        }
    }
}

/// One physical read access performed by an aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Index of the aggregator (0..num_aggregators).
    pub aggregator: usize,
    /// Byte range read.
    pub extent: Extent,
}

/// The complete plan of a collective read: every physical access plus
/// summary statistics.
#[derive(Debug, Clone)]
pub struct IoPlan {
    pub accesses: Vec<Access>,
    /// Bytes the application asked for.
    pub useful_bytes: u64,
    /// Bytes physically read (sum over accesses; re-reads counted).
    pub physical_bytes: u64,
    /// Unique file bytes touched (union of accesses).
    pub unique_bytes: u64,
    pub num_aggregators: usize,
    pub cb_buffer_size: u64,
}

impl IoPlan {
    /// The paper's data density: useful bytes / physically read bytes.
    pub fn data_density(&self) -> f64 {
        if self.physical_bytes == 0 {
            1.0
        } else {
            self.useful_bytes as f64 / self.physical_bytes as f64
        }
    }

    pub fn mean_access_bytes(&self) -> f64 {
        if self.accesses.is_empty() {
            0.0
        } else {
            self.physical_bytes as f64 / self.accesses.len() as f64
        }
    }
}

/// Partition the aggregate request span into contiguous per-aggregator
/// file domains, ROMIO-style (equal spans of `[start, end)`).
pub fn file_domains(aggregate: &[Extent], num_aggregators: usize) -> Vec<Extent> {
    assert!(num_aggregators > 0);
    if aggregate.is_empty() {
        return vec![Extent::new(0, 0); num_aggregators];
    }
    let start = aggregate[0].offset;
    let end = aggregate.last().unwrap().end();
    let span = end - start;
    (0..num_aggregators as u64)
        .map(|j| {
            let lo = start + span * j / num_aggregators as u64;
            let hi = start + span * (j + 1) / num_aggregators as u64;
            Extent::new(lo, hi - lo)
        })
        .collect()
}

/// Compute the physical access plan for a collective read of the given
/// aggregate extents (sorted, disjoint — as produced by
/// `FileLayout::extents`).
///
/// Each aggregator walks its domain from the first to the last needed
/// byte in `cb_buffer_size` steps and reads **the full window** whenever
/// any needed byte falls inside it — the behaviour of ROMIO's
/// `read_and_exch` loop, and the source of the untuned-netCDF
/// over-read.
///
/// ```
/// use pvr_formats::Extent;
/// use pvr_pfs::twophase::{two_phase_plan, CollectiveHints};
///
/// // One variable's records: 1 MB runs every 5 MB (4 variables of gap).
/// let runs: Vec<Extent> =
///     (0..8).map(|z| Extent::new(z * 5_000_000, 1_000_000)).collect();
///
/// // A 16 MiB collective buffer swallows the gaps (the paper's
/// // untuned pathology)...
/// let untuned = two_phase_plan(&runs, 4, &CollectiveHints::default());
/// assert!(untuned.data_density() < 0.35);
///
/// // ...while a record-sized buffer reads mostly useful bytes.
/// let tuned = two_phase_plan(&runs, 4, &CollectiveHints::tuned(1_000_000));
/// assert!(tuned.data_density() > 0.8);
/// ```
pub fn two_phase_plan(
    aggregate: &[Extent],
    num_aggregators: usize,
    hints: &CollectiveHints,
) -> IoPlan {
    let cb = hints.cb_buffer_size.max(1);
    let useful = total_bytes(aggregate);
    let mut accesses = Vec::new();

    for (j, dom) in file_domains(aggregate, num_aggregators).iter().enumerate() {
        if dom.is_empty() {
            continue;
        }
        let needed = clip(aggregate, *dom);
        if needed.is_empty() {
            continue;
        }
        let st = needed[0].offset;
        let end = needed.last().unwrap().end();
        let mut pos = st;
        let mut ni = 0usize; // index of first needed extent not fully before pos
        while pos < end {
            let size = cb.min(end - pos);
            let window = Extent::new(pos, size);
            // Does any needed byte fall in this window?
            while ni < needed.len() && needed[ni].end() <= window.offset {
                ni += 1;
            }
            let flagged = ni < needed.len() && needed[ni].offset < window.end();
            if flagged {
                accesses.push(Access {
                    aggregator: j,
                    extent: window,
                });
            }
            pos += size;
        }
    }

    let physical: u64 = accesses.iter().map(|a| a.extent.len).sum();
    let unique = union_bytes(&accesses.iter().map(|a| a.extent).collect::<Vec<_>>());
    IoPlan {
        accesses,
        useful_bytes: useful,
        physical_bytes: physical,
        unique_bytes: unique,
        num_aggregators,
        cb_buffer_size: cb,
    }
}

/// One rank's read request: the placed runs of its subvolume (from
/// `FileLayout::placed_runs`) and the element count of its output
/// buffer.
#[derive(Debug, Clone, Default)]
pub struct RankRequest {
    pub runs: Vec<PlacedRun>,
    pub out_elems: usize,
}

impl RankRequest {
    pub fn useful_bytes(&self) -> u64 {
        self.runs.iter().map(|r| r.elems as u64 * ELEM_SIZE).sum()
    }
}

/// One window∩run overlap of the exchange phase: the bytes aggregator
/// `j` hands to `rank` out of one window read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Piece {
    /// Destination rank.
    pub rank: usize,
    /// Byte offset inside the destination rank's output buffer.
    pub out_byte: usize,
    /// Byte range inside the window's buffer.
    pub src_lo: usize,
    pub src_hi: usize,
    /// Absolute file byte range of the piece.
    pub file_lo: u64,
    pub file_hi: u64,
}

impl Piece {
    pub fn len(&self) -> usize {
        self.src_hi - self.src_lo
    }

    pub fn is_empty(&self) -> bool {
        self.src_hi == self.src_lo
    }
}

/// The shared scatter geometry of a collective read, derived
/// identically by every participant from the request list alone: the
/// window access plan, all ranks' placed runs sorted by file offset,
/// and the fault-independent per-rank piece expectations of the
/// exchange phase.
///
/// Every real executor — the in-process scatter below, the
/// message-passing scatter in `pvr-core`'s frame scheduler (plain and
/// fault-tolerant link modes), and the per-rank prefetch of the
/// animation driver — builds on this one computation, so their expected
/// message sets can never drift apart.
#[derive(Debug, Clone)]
pub struct ScatterPlan {
    pub plan: IoPlan,
    /// `(file_offset, len_bytes, rank, out_byte)` of every placed run,
    /// sorted by file offset.
    pub runs: Vec<(u64, usize, usize, usize)>,
    /// Exchange-phase pieces each rank will receive.
    pub piece_counts: Vec<usize>,
    /// Bytes of those pieces, per rank.
    pub piece_bytes: Vec<u64>,
}

impl ScatterPlan {
    /// Plan the scatter of a collective read: aggregate and coalesce
    /// the extents, lay the window accesses, and precompute each
    /// rank's expected piece count and bytes.
    pub fn build(
        requests: &[RankRequest],
        num_aggregators: usize,
        hints: &CollectiveHints,
    ) -> ScatterPlan {
        let nranks = requests.len();
        let naggr = num_aggregators.clamp(1, nranks.max(1));

        let mut aggregate: Vec<Extent> = requests
            .iter()
            .flat_map(|rq| {
                rq.runs
                    .iter()
                    .map(|r| Extent::new(r.file_offset, r.elems as u64 * ELEM_SIZE))
            })
            .collect();
        coalesce(&mut aggregate);
        let plan = two_phase_plan(&aggregate, naggr, hints);

        let mut runs: Vec<(u64, usize, usize, usize)> = Vec::new();
        for (rank, rq) in requests.iter().enumerate() {
            for r in &rq.runs {
                runs.push((
                    r.file_offset,
                    r.elems * ELEM_SIZE as usize,
                    rank,
                    r.out_start * ELEM_SIZE as usize,
                ));
            }
        }
        runs.sort_unstable_by_key(|t| t.0);

        let mut piece_counts = vec![0usize; nranks];
        let mut piece_bytes = vec![0u64; nranks];
        let sp = ScatterPlan {
            plan,
            runs,
            piece_counts: Vec::new(),
            piece_bytes: Vec::new(),
        };
        for a in &sp.plan.accesses {
            for p in sp.pieces_in(a.extent) {
                piece_counts[p.rank] += 1;
                piece_bytes[p.rank] += p.len() as u64;
            }
        }
        ScatterPlan {
            piece_counts,
            piece_bytes,
            ..sp
        }
    }

    /// Which of `nranks` ranks hosts aggregator `j` (evenly spread, the
    /// BG/P placement both executors use).
    pub fn aggregator_rank(&self, j: usize, nranks: usize) -> usize {
        j * nranks / self.plan.num_aggregators
    }

    /// The window accesses hosted by `rank` (of `nranks`), in plan
    /// order.
    pub fn accesses_of(&self, rank: usize, nranks: usize) -> impl Iterator<Item = &Access> {
        self.plan
            .accesses
            .iter()
            .filter(move |a| self.aggregator_rank(a.aggregator, nranks) == rank)
    }

    /// The exchange pieces of one window, in ascending-run order — the
    /// fan-out every scatter implementation walks. Runs can span
    /// adjacent windows, so each piece is the (nonempty) window∩run
    /// overlap.
    pub fn pieces_in(&self, w: Extent) -> impl Iterator<Item = Piece> + '_ {
        let start = self
            .runs
            .partition_point(move |t| t.0 + t.1 as u64 <= w.offset);
        self.runs[start..]
            .iter()
            .take_while(move |t| t.0 < w.end())
            .filter_map(move |&(off, len, rank, out_byte)| {
                let lo = off.max(w.offset);
                let hi = (off + len as u64).min(w.end());
                if lo >= hi {
                    return None;
                }
                Some(Piece {
                    rank,
                    out_byte: out_byte + (lo - off) as usize,
                    src_lo: (lo - w.offset) as usize,
                    src_hi: (hi - w.offset) as usize,
                    file_lo: lo,
                    file_hi: hi,
                })
            })
    }
}

/// Result of executing a collective read for real.
#[derive(Debug)]
pub struct ExecResult {
    /// Raw on-disk bytes of each rank's request, in placed-run order.
    pub rank_bytes: Vec<Vec<u8>>,
    pub plan: IoPlan,
    /// Bytes moved aggregator → non-self rank in the exchange phase.
    pub exchange_bytes: u64,
}

/// Execute a two-phase collective read against a real local file.
///
/// `requests[r]` is rank `r`'s request; aggregators are the evenly
/// spaced ranks `j * nranks / naggr`. Returns each rank's bytes (still
/// in on-disk byte order — decode with the layout's endianness) plus the
/// realized plan.
pub fn two_phase_execute(
    file: &mut File,
    requests: &[RankRequest],
    num_aggregators: usize,
    hints: &CollectiveHints,
) -> std::io::Result<ExecResult> {
    two_phase_execute_traced(
        file,
        requests,
        num_aggregators,
        hints,
        &pvr_obs::Tracer::disabled(),
    )
}

/// [`two_phase_execute`] with span tracing: each physical window access
/// becomes an `io.window` span on the track of the aggregator rank that
/// issues it (args: file offset and bytes read), so the per-access
/// signature of the collective read — the paper's Figure 9 — shows up
/// directly on the timeline. A disabled tracer makes this identical to
/// the plain call.
pub fn two_phase_execute_traced(
    file: &mut File,
    requests: &[RankRequest],
    num_aggregators: usize,
    hints: &CollectiveHints,
    tracer: &pvr_obs::Tracer,
) -> std::io::Result<ExecResult> {
    let nranks = requests.len();
    let sp = ScatterPlan::build(requests, num_aggregators, hints);

    let mut rank_bytes: Vec<Vec<u8>> = requests
        .iter()
        .map(|rq| vec![0u8; rq.out_elems * ELEM_SIZE as usize])
        .collect();

    let mut exchange_bytes = 0u64;
    let mut buf: Vec<u8> = Vec::new();
    for a in &sp.plan.accesses {
        let w = a.extent;
        let host = sp.aggregator_rank(a.aggregator, nranks);
        let _span = tracer.span_args(
            host as pvr_obs::span::TrackId,
            "io.window",
            pvr_obs::Args::two("offset", w.offset, "bytes", w.len),
        );
        buf.resize(w.len as usize, 0);
        file.seek(SeekFrom::Start(w.offset))?;
        file.read_exact(&mut buf)?;
        // Scatter the window to every run overlapping it.
        for p in sp.pieces_in(w) {
            rank_bytes[p.rank][p.out_byte..p.out_byte + p.len()]
                .copy_from_slice(&buf[p.src_lo..p.src_hi]);
            if p.rank != host {
                exchange_bytes += p.len() as u64;
            }
        }
    }

    Ok(ExecResult {
        rank_bytes,
        plan: sp.plan,
        exchange_bytes,
    })
}

/// Result of a fault-tolerant collective read (see
/// [`two_phase_execute_ft`]).
#[derive(Debug)]
pub struct FtExecResult {
    /// The plain execution result; bytes a down server could not serve
    /// read as zero in `rank_bytes`.
    pub exec: ExecResult,
    /// Merged recovery accounting over all windows: retries, failovers,
    /// failover bytes, unrecoverable ranges, virtual backoff delay.
    pub audit: crate::fault::WindowAudit,
    /// Per-rank bytes that stayed unrecoverable (overlap of the rank's
    /// runs with the lost ranges).
    pub rank_unrecovered: Vec<u64>,
}

impl FtExecResult {
    /// Fraction of each rank's useful bytes that were actually served.
    pub fn rank_quality(&self, requests: &[RankRequest]) -> Vec<f64> {
        requests
            .iter()
            .zip(&self.rank_unrecovered)
            .map(|(rq, &lost)| {
                let useful = rq.useful_bytes();
                if useful == 0 {
                    1.0
                } else {
                    1.0 - lost as f64 / useful as f64
                }
            })
            .collect()
    }
}

/// [`two_phase_execute`] against a faulted [`StripedStore`]: every
/// window is audited with [`crate::fault::window_fault_audit`]; pieces
/// a down primary holds are retried, then read from the stripe replica
/// (the replica holds the same bytes, so the data still comes from the
/// local file — failover shows up in the *accounting*), and pieces with
/// no live replica are zero-filled and reported per rank. The plain
/// path is `two_phase_execute_ft` with healthy faults: same plan, same
/// bytes, empty audit.
pub fn two_phase_execute_ft(
    file: &mut File,
    requests: &[RankRequest],
    num_aggregators: usize,
    hints: &CollectiveHints,
    store: &crate::server::StripedStore,
    faults: &crate::fault::ServerFaults,
    rec: &crate::fault::IoRecovery,
) -> std::io::Result<FtExecResult> {
    use crate::fault::{window_fault_audit, WindowAudit};

    let nranks = requests.len();
    let sp = ScatterPlan::build(requests, num_aggregators, hints);

    let mut rank_bytes: Vec<Vec<u8>> = requests
        .iter()
        .map(|rq| vec![0u8; rq.out_elems * ELEM_SIZE as usize])
        .collect();

    let mut audit = WindowAudit::default();
    let mut rank_unrecovered = vec![0u64; nranks];
    let mut exchange_bytes = 0u64;
    let mut buf: Vec<u8> = Vec::new();
    for a in &sp.plan.accesses {
        let w = a.extent;
        let host = sp.aggregator_rank(a.aggregator, nranks);
        let wa = window_fault_audit(store, faults, rec, w);
        buf.resize(w.len as usize, 0);
        file.seek(SeekFrom::Start(w.offset))?;
        file.read_exact(&mut buf)?;
        // Bytes with no live replica never arrive: zero-fill them.
        for lost in &wa.unrecoverable {
            let lo = (lost.offset - w.offset) as usize;
            let hi = lo + lost.len as usize;
            buf[lo..hi].fill(0);
        }
        for p in sp.pieces_in(w) {
            rank_bytes[p.rank][p.out_byte..p.out_byte + p.len()]
                .copy_from_slice(&buf[p.src_lo..p.src_hi]);
            if p.rank != host {
                exchange_bytes += p.len() as u64;
            }
            let piece = Extent::new(p.file_lo, p.file_hi - p.file_lo);
            for lost in &wa.unrecoverable {
                if let Some(x) = lost.intersect(&piece) {
                    rank_unrecovered[p.rank] += x.len;
                }
            }
        }
        audit.merge(&wa);
    }

    Ok(FtExecResult {
        exec: ExecResult {
            rank_bytes,
            plan: sp.plan,
            exchange_bytes,
        },
        audit,
        rank_unrecovered,
    })
}

/// Result of executing a collective write.
#[derive(Debug)]
pub struct WriteResult {
    pub plan: IoPlan,
    /// Windows that required read-modify-write because the aggregate
    /// request left holes inside them (ROMIO's write-side behaviour).
    pub rmw_windows: usize,
    /// Bytes moved rank → non-self aggregator in the exchange phase.
    pub exchange_bytes: u64,
}

/// Execute a two-phase collective **write** against a real local file —
/// the path the paper used to produce its upsampled 2240³/4480³ time
/// steps ("the upsampling was performed efficiently, in parallel, with
/// the same BG/P architecture and collective I/O").
///
/// `requests[r]` describes where rank `r`'s bytes land in the file
/// (placed runs) and `rank_data[r]` holds those bytes in run order.
/// Aggregators assemble their windows from the ranks' pieces and issue
/// one contiguous write per window; windows containing holes (bytes no
/// rank supplies) are read-modify-written so existing file content
/// survives, exactly like ROMIO.
pub fn two_phase_write(
    file: &mut File,
    requests: &[RankRequest],
    rank_data: &[Vec<u8>],
    num_aggregators: usize,
    hints: &CollectiveHints,
) -> std::io::Result<WriteResult> {
    use std::io::Write;
    assert_eq!(requests.len(), rank_data.len());
    let nranks = requests.len();
    let naggr = num_aggregators.clamp(1, nranks.max(1));

    let mut aggregate: Vec<Extent> = requests
        .iter()
        .flat_map(|rq| {
            rq.runs
                .iter()
                .map(|r| Extent::new(r.file_offset, r.elems as u64 * ELEM_SIZE))
        })
        .collect();
    coalesce(&mut aggregate);
    let plan = two_phase_plan(&aggregate, naggr, hints);

    // (offset, len_bytes, rank, src_byte) sorted by file offset.
    let mut sorted_runs: Vec<(u64, usize, usize, usize)> = Vec::new();
    for (rank, rq) in requests.iter().enumerate() {
        for r in &rq.runs {
            sorted_runs.push((
                r.file_offset,
                r.elems * ELEM_SIZE as usize,
                rank,
                r.out_start * ELEM_SIZE as usize,
            ));
        }
    }
    sorted_runs.sort_unstable_by_key(|t| t.0);

    let aggr_rank = |j: usize| j * nranks / naggr;
    let mut rmw_windows = 0usize;
    let mut exchange_bytes = 0u64;
    let mut buf: Vec<u8> = Vec::new();
    for a in &plan.accesses {
        let w = a.extent;
        buf.resize(w.len as usize, 0);
        // Hole detection: do the runs cover the whole window?
        let covered: u64 = clip(&aggregate, w).iter().map(|e| e.len).sum();
        if covered < w.len {
            // Read-modify-write to preserve unwritten bytes.
            rmw_windows += 1;
            file.seek(SeekFrom::Start(w.offset))?;
            file.read_exact(&mut buf)?;
        }
        // Gather the ranks' pieces into the window buffer.
        let start_idx = sorted_runs.partition_point(|t| t.0 + t.1 as u64 <= w.offset);
        for t in &sorted_runs[start_idx..] {
            let (off, len, rank, src_byte) = *t;
            if off >= w.end() {
                break;
            }
            let lo = off.max(w.offset);
            let hi = (off + len as u64).min(w.end());
            if lo >= hi {
                continue;
            }
            let n = (hi - lo) as usize;
            let dst = (lo - w.offset) as usize;
            let src = src_byte + (lo - off) as usize;
            buf[dst..dst + n].copy_from_slice(&rank_data[rank][src..src + n]);
            if rank != aggr_rank(a.aggregator) {
                exchange_bytes += n as u64;
            }
        }
        file.seek(SeekFrom::Start(w.offset))?;
        file.write_all(&buf)?;
    }
    file.flush()?;
    Ok(WriteResult {
        plan,
        rmw_windows,
        exchange_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(o: u64, l: u64) -> Extent {
        Extent::new(o, l)
    }

    #[test]
    fn contiguous_request_reads_exactly_once() {
        // Raw-mode analogue: one contiguous extent, default hints.
        let agg = vec![ext(0, 100 << 20)];
        let plan = two_phase_plan(&agg, 4, &CollectiveHints::default());
        assert_eq!(plan.physical_bytes, 100 << 20);
        assert_eq!(plan.unique_bytes, 100 << 20);
        assert!((plan.data_density() - 1.0).abs() < 1e-9);
        // 100 MiB / 16 MiB windows, split over 4 domains of 25 MiB:
        // 2 windows each (16 + 9).
        assert_eq!(plan.accesses.len(), 8);
    }

    #[test]
    fn big_windows_swallow_record_gaps() {
        // netCDF-record analogue: 5 MB runs every 25 MB, windows 16 MiB.
        let run = 5_000_000u64;
        let stride = 25_000_000u64;
        let agg: Vec<Extent> = (0..40).map(|z| ext(512 + z * stride, run)).collect();
        let plan = two_phase_plan(&agg, 4, &CollectiveHints::default());
        // Most of the span gets read: density well below the 0.2 the
        // interleaving implies is useful.
        let density = plan.data_density();
        assert!(density < 0.35, "density {density}");
        // Mean access is the full window ("roughly 15 MB" in the paper).
        assert!(
            plan.mean_access_bytes() > 10e6,
            "mean {}",
            plan.mean_access_bytes()
        );
    }

    #[test]
    fn record_sized_windows_double_read_misaligned_records() {
        // Tuned case: window == record size, but file-domain boundaries
        // misalign the window grid, so most records straddle 2 windows.
        let run = 5_000_000u64;
        let stride = 25_000_000u64;
        let agg: Vec<Extent> = (0..40).map(|z| ext(512 + z * stride, run)).collect();
        let hints = CollectiveHints::tuned(run);
        let plan = two_phase_plan(&agg, 7, &hints);
        let density = plan.data_density();
        // ~0.45–1.0 depending on alignment; must beat the untuned case.
        let untuned = two_phase_plan(&agg, 7, &CollectiveHints::default());
        assert!(
            density > untuned.data_density(),
            "tuned {density} untuned {}",
            untuned.data_density()
        );
        assert!(plan.physical_bytes <= 3 * plan.useful_bytes);
    }

    #[test]
    fn domains_partition_the_span() {
        let agg = vec![ext(100, 50), ext(1000, 500)];
        let doms = file_domains(&agg, 3);
        assert_eq!(doms[0].offset, 100);
        assert_eq!(doms.last().unwrap().end(), 1500);
        let total: u64 = doms.iter().map(|d| d.len).sum();
        assert_eq!(total, 1400);
        for w in doms.windows(2) {
            assert_eq!(w[0].end(), w[1].offset);
        }
    }

    #[test]
    fn empty_aggregate_produces_no_accesses() {
        let plan = two_phase_plan(&[], 8, &CollectiveHints::default());
        assert_eq!(plan.accesses.len(), 0);
        assert_eq!(plan.useful_bytes, 0);
        assert!((plan.data_density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_aggregators_never_lose_bytes() {
        let agg: Vec<Extent> = (0..20).map(|i| ext(i * 1000, 300)).collect();
        for naggr in [1, 2, 3, 5, 8, 16] {
            let plan = two_phase_plan(
                &agg,
                naggr,
                &CollectiveHints {
                    cb_buffer_size: 4096,
                    cb_nodes: None,
                },
            );
            // Every useful byte is inside some access.
            let acc: Vec<Extent> = plan.accesses.iter().map(|a| a.extent).collect();
            for e in &agg {
                let covered: u64 = acc
                    .iter()
                    .filter_map(|a| a.intersect(e))
                    .map(|x| x.len)
                    .sum();
                assert!(
                    covered >= e.len,
                    "naggr={naggr}: extent {e:?} covered {covered}"
                );
            }
        }
    }

    #[test]
    fn execute_reads_correct_bytes_and_counts_exchange() {
        // Build a real file of 64 KiB with a known pattern.
        let dir = std::env::temp_dir().join(format!("pvr-pfs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("twophase.bin");
        let data: Vec<u8> = (0..65536u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &data).unwrap();

        // 4 ranks, each asking for two fragments (expressed as runs of
        // 4-byte elements).
        let mk = |off: u64, elems: usize, out: usize| PlacedRun {
            file_offset: off,
            elems,
            out_start: out,
        };
        let requests = vec![
            RankRequest {
                runs: vec![mk(0, 8, 0), mk(1024, 8, 8)],
                out_elems: 16,
            },
            RankRequest {
                runs: vec![mk(4096, 16, 0)],
                out_elems: 16,
            },
            RankRequest {
                runs: vec![mk(60000, 4, 0), mk(32000, 4, 4)],
                out_elems: 8,
            },
            RankRequest {
                runs: vec![mk(100, 25, 0)],
                out_elems: 25,
            },
        ];
        let mut f = File::open(&path).unwrap();
        let res = two_phase_execute(
            &mut f,
            &requests,
            2,
            &CollectiveHints {
                cb_buffer_size: 8192,
                cb_nodes: None,
            },
        )
        .unwrap();

        for (r, rq) in requests.iter().enumerate() {
            for run in &rq.runs {
                let nbytes = run.elems * 4;
                let got = &res.rank_bytes[r][run.out_start * 4..run.out_start * 4 + nbytes];
                let want = &data[run.file_offset as usize..run.file_offset as usize + nbytes];
                assert_eq!(got, want, "rank {r} run {run:?}");
            }
        }
        assert!(res.exchange_bytes > 0);
        assert!(res.plan.physical_bytes >= res.plan.useful_bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn collective_write_round_trips() {
        let dir = std::env::temp_dir().join(format!("pvr-pfs-w-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("write.bin");
        // Pre-existing content that holes must preserve.
        std::fs::write(&path, vec![0xEEu8; 65536]).unwrap();

        let mk = |off: u64, elems: usize, out: usize| PlacedRun {
            file_offset: off,
            elems,
            out_start: out,
        };
        let requests = vec![
            RankRequest {
                runs: vec![mk(0, 8, 0), mk(1024, 8, 8)],
                out_elems: 16,
            },
            RankRequest {
                runs: vec![mk(4096, 16, 0)],
                out_elems: 16,
            },
            RankRequest {
                runs: vec![mk(60000, 4, 0)],
                out_elems: 4,
            },
        ];
        let rank_data: Vec<Vec<u8>> = requests
            .iter()
            .enumerate()
            .map(|(r, rq)| {
                (0..rq.out_elems * 4)
                    .map(|i| (r * 50 + i % 40) as u8)
                    .collect()
            })
            .collect();

        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        let res = two_phase_write(
            &mut f,
            &requests,
            &rank_data,
            2,
            &CollectiveHints {
                cb_buffer_size: 8192,
                cb_nodes: None,
            },
        )
        .unwrap();
        drop(f);

        let file = std::fs::read(&path).unwrap();
        // Every run's bytes landed where its placed run says.
        for (r, rq) in requests.iter().enumerate() {
            for run in &rq.runs {
                let nb = run.elems * 4;
                assert_eq!(
                    &file[run.file_offset as usize..run.file_offset as usize + nb],
                    &rank_data[r][run.out_start * 4..run.out_start * 4 + nb],
                    "rank {r}"
                );
            }
        }
        // A hole byte inside a written window survived via RMW.
        assert!(res.rmw_windows > 0);
        assert_eq!(file[100], 0xEE, "hole clobbered");
        assert_eq!(file[5000], 0xEE, "hole clobbered past run");
        assert!(res.exchange_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn contiguous_collective_write_needs_no_rmw() {
        let dir = std::env::temp_dir().join(format!("pvr-pfs-w2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("contig.bin");
        std::fs::write(&path, vec![0u8; 4096]).unwrap();
        // Two ranks covering [0, 4096) exactly.
        let requests = vec![
            RankRequest {
                runs: vec![PlacedRun {
                    file_offset: 0,
                    elems: 512,
                    out_start: 0,
                }],
                out_elems: 512,
            },
            RankRequest {
                runs: vec![PlacedRun {
                    file_offset: 2048,
                    elems: 512,
                    out_start: 0,
                }],
                out_elems: 512,
            },
        ];
        let rank_data = vec![vec![7u8; 2048], vec![9u8; 2048]];
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        let res = two_phase_write(
            &mut f,
            &requests,
            &rank_data,
            2,
            &CollectiveHints {
                cb_buffer_size: 1024,
                cb_nodes: None,
            },
        )
        .unwrap();
        assert_eq!(res.rmw_windows, 0);
        drop(f);
        let file = std::fs::read(&path).unwrap();
        assert!(file[..2048].iter().all(|&b| b == 7));
        assert!(file[2048..].iter().all(|&b| b == 9));
    }

    #[test]
    fn ft_execute_matches_plain_on_healthy_store_and_degrades_cleanly() {
        use crate::fault::{IoRecovery, ServerFaults};
        use crate::server::StripedStore;

        let dir = std::env::temp_dir().join(format!("pvr-pfs-ft-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ft.bin");
        let data: Vec<u8> = (0..65536u32).map(|i| (i % 251).max(1) as u8).collect();
        std::fs::write(&path, &data).unwrap();

        let mk = |off: u64, elems: usize, out: usize| PlacedRun {
            file_offset: off,
            elems,
            out_start: out,
        };
        let requests = vec![
            RankRequest {
                runs: vec![mk(0, 1024, 0)],
                out_elems: 1024,
            },
            RankRequest {
                runs: vec![mk(8192, 1024, 0)],
                out_elems: 1024,
            },
        ];
        let hints = CollectiveHints {
            cb_buffer_size: 4096,
            cb_nodes: None,
        };
        let store = StripedStore {
            servers: 4,
            stripe_unit: 1024,
            server_bw: 100e6,
            request_overhead: 1e-3,
        };

        // Healthy: byte-for-byte the plain path, empty audit.
        let mut f = File::open(&path).unwrap();
        let plain = two_phase_execute(&mut f, &requests, 2, &hints).unwrap();
        let mut f = File::open(&path).unwrap();
        let healthy = two_phase_execute_ft(
            &mut f,
            &requests,
            2,
            &hints,
            &store,
            &ServerFaults::none(4),
            &IoRecovery::default(),
        )
        .unwrap();
        assert_eq!(healthy.exec.rank_bytes, plain.rank_bytes);
        assert_eq!(healthy.audit.retries, 0);
        assert_eq!(healthy.rank_unrecovered, vec![0, 0]);

        // Server 0 down, failover on: replica serves the same bytes.
        let mut faults = ServerFaults::none(4);
        faults.set_down(0);
        let mut f = File::open(&path).unwrap();
        let failed_over = two_phase_execute_ft(
            &mut f,
            &requests,
            2,
            &hints,
            &store,
            &faults,
            &IoRecovery::default(),
        )
        .unwrap();
        assert_eq!(failed_over.exec.rank_bytes, plain.rank_bytes);
        assert!(failed_over.audit.failover_bytes > 0);
        assert!(failed_over.audit.retries > 0);
        assert_eq!(failed_over.rank_unrecovered, vec![0, 0]);

        // Server 0 down, no recovery: its stripes read as zero and the
        // loss is attributed to the requesting ranks.
        let mut f = File::open(&path).unwrap();
        let lost = two_phase_execute_ft(
            &mut f,
            &requests,
            2,
            &hints,
            &store,
            &faults,
            &IoRecovery::none(),
        )
        .unwrap();
        assert!(lost.audit.unrecovered_bytes() > 0);
        let q = lost.rank_quality(&requests);
        assert!(q.iter().any(|&x| x < 1.0));
        // Rank 0's first stripe (offsets [0, 1024)) lives on server 0.
        assert!(lost.exec.rank_bytes[0][..1024].iter().all(|&b| b == 0));
        assert_eq!(lost.rank_unrecovered[0] % 1024, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn traced_execute_emits_one_window_span_per_access() {
        let dir = std::env::temp_dir().join(format!("pvr-pfs-tr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traced.bin");
        std::fs::write(&path, vec![3u8; 65536]).unwrap();
        let requests = vec![
            RankRequest {
                runs: vec![PlacedRun {
                    file_offset: 0,
                    elems: 1024,
                    out_start: 0,
                }],
                out_elems: 1024,
            },
            RankRequest {
                runs: vec![PlacedRun {
                    file_offset: 16384,
                    elems: 1024,
                    out_start: 0,
                }],
                out_elems: 1024,
            },
        ];
        let tracer = pvr_obs::Tracer::wall();
        let mut f = File::open(&path).unwrap();
        let res = two_phase_execute_traced(
            &mut f,
            &requests,
            2,
            &CollectiveHints {
                cb_buffer_size: 4096,
                cb_nodes: None,
            },
            &tracer,
        )
        .unwrap();
        let profile = tracer.finish();
        let begins = profile
            .events
            .iter()
            .filter(|e| e.name == "io.window" && e.kind == pvr_obs::span::EventKind::Begin)
            .count();
        assert_eq!(begins, res.plan.accesses.len());
        // Every span carries the window's byte count.
        let total: u64 = profile
            .events
            .iter()
            .filter(|e| e.name == "io.window" && e.kind == pvr_obs::span::EventKind::Begin)
            .map(|e| e.args.iter().find(|(k, _)| *k == "bytes").unwrap().1)
            .sum();
        assert_eq!(total, res.plan.physical_bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn runs_spanning_window_boundaries_are_scattered_fully() {
        let dir = std::env::temp_dir().join(format!("pvr-pfs-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("span.bin");
        let data: Vec<u8> = (0..32768u32).map(|i| (i % 199) as u8).collect();
        std::fs::write(&path, &data).unwrap();

        // One rank requesting one run that crosses several 1 KiB windows.
        let requests = vec![RankRequest {
            runs: vec![PlacedRun {
                file_offset: 500,
                elems: 2000,
                out_start: 0,
            }],
            out_elems: 2000,
        }];
        let mut f = File::open(&path).unwrap();
        let res = two_phase_execute(
            &mut f,
            &requests,
            3,
            &CollectiveHints {
                cb_buffer_size: 1024,
                cb_nodes: None,
            },
        )
        .unwrap();
        assert_eq!(&res.rank_bytes[0][..], &data[500..500 + 8000]);
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The plan's accesses always cover every useful byte, for any
        /// extent pattern, aggregator count and buffer size.
        #[test]
        fn plan_covers_request(
            starts in proptest::collection::vec((0u64..200_000, 1u64..5_000), 1..40),
            naggr in 1usize..16,
            cb in 1u64..40_000,
        ) {
            let mut agg: Vec<Extent> = starts.into_iter().map(|(o, l)| Extent::new(o, l)).collect();
            pvr_formats::extent::coalesce(&mut agg);
            let plan = two_phase_plan(&agg, naggr, &CollectiveHints { cb_buffer_size: cb, cb_nodes: None });
            let acc: Vec<Extent> = plan.accesses.iter().map(|a| a.extent).collect();
            for e in &agg {
                let covered: u64 = acc.iter().filter_map(|a| a.intersect(e)).map(|x| x.len).sum();
                prop_assert!(covered >= e.len);
            }
            // Physical I/O is never smaller than useful I/O.
            prop_assert!(plan.physical_bytes >= plan.useful_bytes);
            prop_assert!(plan.unique_bytes <= plan.physical_bytes);
            // No access exceeds the collective buffer.
            for a in &plan.accesses {
                prop_assert!(a.extent.len <= cb);
            }
        }
    }
}
