//! Striped file-server storage simulation.
//!
//! The closed-form [`crate::model::StorageModel`] prices I/O with
//! calibrated constants; this module is its first-principles
//! counterpart: the ANL storage fabric as an explicit set of file
//! servers (the paper: 17 SAN racks x 8 servers = 136 servers, 4.3 PB),
//! a PVFS-style round-robin stripe distribution, and per-server FIFO
//! service (seek/request overhead + streaming). An access list maps to
//! per-server byte loads; the phase completes when the busiest server
//! drains.
//!
//! Used by the ablation benches to ask the questions the paper's
//! Section VI raises ("we are continuing to study the I/O signature,
//! that is, the striping pattern across I/O servers"): how performance
//! moves with stripe size, server count, and access pattern.

use pvr_formats::extent::Extent;

/// A PVFS-like striped store.
#[derive(Debug, Clone, Copy)]
pub struct StripedStore {
    /// Number of file servers (ANL BG/P: 17 SANs x 8 = 136).
    pub servers: usize,
    /// Stripe unit in bytes (PVFS default 64 KiB; ANL ran larger).
    pub stripe_unit: u64,
    /// Per-server streaming bandwidth, bytes/s.
    pub server_bw: f64,
    /// Per-request overhead at a server (positioning + request
    /// processing), seconds.
    pub request_overhead: f64,
}

impl Default for StripedStore {
    fn default() -> Self {
        StripedStore {
            servers: 136,
            stripe_unit: 4 << 20,
            // 136 servers x ~370 MB/s streaming ~ the paper's measured
            // ~50 GB/s aggregate peak.
            server_bw: 370.0e6,
            request_overhead: 0.5e-3,
        }
    }
}

/// Per-phase result of servicing an access list.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreReport {
    /// Seconds until the busiest server finishes.
    pub makespan: f64,
    /// Bytes serviced by each server.
    pub server_bytes: Vec<u64>,
    /// Requests serviced by each server.
    pub server_requests: Vec<usize>,
    /// Total bytes.
    pub total_bytes: u64,
}

impl StoreReport {
    /// Load imbalance: busiest server's bytes over the mean.
    pub fn imbalance(&self) -> f64 {
        let max = self.server_bytes.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.total_bytes as f64 / self.server_bytes.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Servers that saw any traffic.
    pub fn servers_touched(&self) -> usize {
        self.server_bytes.iter().filter(|&&b| b > 0).count()
    }

    /// Aggregate delivered bandwidth.
    pub fn bandwidth(&self) -> f64 {
        if self.makespan <= 0.0 {
            f64::INFINITY
        } else {
            self.total_bytes as f64 / self.makespan
        }
    }
}

impl StripedStore {
    /// The server holding a byte offset (round-robin by stripe).
    pub fn server_of(&self, offset: u64) -> usize {
        ((offset / self.stripe_unit) % self.servers as u64) as usize
    }

    /// Split one access into its per-server (server, bytes, requests)
    /// pieces. Contiguous stripes on the same server within one access
    /// count as one request (PVFS coalesces a client's contiguous
    /// stripe set into one request per server).
    fn distribute(&self, e: Extent, bytes: &mut [u64], requests: &mut [usize]) {
        if e.is_empty() {
            return;
        }
        let first = e.offset / self.stripe_unit;
        let last = (e.end() - 1) / self.stripe_unit;
        let mut touched = vec![false; self.servers];
        for stripe in first..=last {
            let s_lo = stripe * self.stripe_unit;
            let s_hi = s_lo + self.stripe_unit;
            let lo = e.offset.max(s_lo);
            let hi = e.end().min(s_hi);
            let srv = (stripe % self.servers as u64) as usize;
            bytes[srv] += hi - lo;
            if !touched[srv] {
                touched[srv] = true;
                requests[srv] += 1;
            }
        }
    }

    /// Service a whole access list.
    pub fn service(&self, accesses: &[Extent]) -> StoreReport {
        let mut server_bytes = vec![0u64; self.servers];
        let mut server_requests = vec![0usize; self.servers];
        for &e in accesses {
            self.distribute(e, &mut server_bytes, &mut server_requests);
        }
        let total_bytes: u64 = server_bytes.iter().sum();
        let makespan = server_bytes
            .iter()
            .zip(&server_requests)
            .map(|(&b, &r)| b as f64 / self.server_bw + r as f64 * self.request_overhead)
            .fold(0.0f64, f64::max);
        StoreReport {
            makespan,
            server_bytes,
            server_requests,
            total_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(servers: usize, stripe: u64) -> StripedStore {
        StripedStore {
            servers,
            stripe_unit: stripe,
            server_bw: 100.0e6,
            request_overhead: 1e-3,
        }
    }

    #[test]
    fn round_robin_placement() {
        let s = store(4, 1000);
        assert_eq!(s.server_of(0), 0);
        assert_eq!(s.server_of(999), 0);
        assert_eq!(s.server_of(1000), 1);
        assert_eq!(s.server_of(4000), 0);
    }

    #[test]
    fn large_access_spreads_evenly() {
        let s = store(4, 1000);
        let r = s.service(&[Extent::new(0, 8000)]);
        assert_eq!(r.server_bytes, vec![2000; 4]);
        assert_eq!(r.servers_touched(), 4);
        assert!((r.imbalance() - 1.0).abs() < 1e-9);
        // One coalesced request per server.
        assert_eq!(r.server_requests, vec![1; 4]);
    }

    #[test]
    fn misaligned_access_splits_at_stripe_boundaries() {
        let s = store(4, 1000);
        let r = s.service(&[Extent::new(500, 1000)]);
        assert_eq!(r.server_bytes[0], 500);
        assert_eq!(r.server_bytes[1], 500);
        assert_eq!(r.total_bytes, 1000);
    }

    #[test]
    fn strided_pattern_can_hammer_one_server() {
        // Accesses that stride by servers*stripe all land on server 0 —
        // the pathological "I/O signature" the paper studies.
        let s = store(4, 1000);
        let accesses: Vec<Extent> = (0..8).map(|i| Extent::new(i * 4000, 500)).collect();
        let r = s.service(&accesses);
        assert_eq!(r.servers_touched(), 1);
        assert!(r.imbalance() >= 4.0 - 1e-9);
        // Same bytes, spread pattern: 4x faster.
        let spread: Vec<Extent> = (0..8).map(|i| Extent::new(i * 1000, 500)).collect();
        let r2 = s.service(&spread);
        assert!(r2.makespan < r.makespan / 2.0);
    }

    #[test]
    fn makespan_includes_request_overhead() {
        let s = store(2, 1 << 20);
        // 1000 tiny requests to server 0: overhead dominates.
        let accesses: Vec<Extent> = (0..1000)
            .map(|i| Extent::new(i * 2 * (1 << 20), 64))
            .collect();
        let r = s.service(&accesses);
        assert!(r.makespan >= 1.0, "makespan {}", r.makespan);
    }

    #[test]
    fn default_store_matches_paper_aggregate_peak() {
        let s = StripedStore::default();
        let peak = s.servers as f64 * s.server_bw;
        assert!((peak - 50.3e9).abs() < 1e9, "aggregate {peak}");
    }

    #[test]
    fn empty_access_list() {
        let r = StripedStore::default().service(&[]);
        assert_eq!(r.total_bytes, 0);
        assert_eq!(r.makespan, 0.0);
    }

    /// Cross-validation with the calibrated closed-form model: at the
    /// paper's operating point the *servers* are never the binding
    /// constraint — the application reaches ~1 GB/s against a ~50 GB/s
    /// fabric (the paper attributes the gap to using 23% of the machine
    /// and noncontiguous access). The striped-store service time must
    /// therefore come out well below the closed-form app-level time.
    #[test]
    fn servers_are_not_the_binding_constraint() {
        use crate::model::StorageModel;
        let store = StripedStore::default();
        // The 1120^3 raw read as ~16 MiB collective windows.
        let bytes = 1120u64 * 1120 * 1120 * 4;
        let window = 16u64 << 20;
        let accesses: Vec<Extent> = (0..bytes / window)
            .map(|i| Extent::new(i * window, window))
            .collect();
        let server_side = store.service(&accesses);
        let model = StorageModel::default();
        let app_side = model.read_time(bytes, accesses.len(), 16, 128);
        assert!(
            server_side.makespan < app_side / 5.0,
            "server {:.2}s vs app-level {:.2}s",
            server_side.makespan,
            app_side
        );
        // And the striped store spreads this pattern over every server.
        assert_eq!(server_side.servers_touched(), store.servers);
    }
}
