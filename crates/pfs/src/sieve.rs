//! Independent (non-collective) reads with data sieving.
//!
//! ROMIO's independent path reads a strided request by sliding a
//! sieving buffer over the request span: within each buffer window it
//! issues one contiguous read from the first to the last needed byte,
//! accepting the holes in between. Used here for the HDF5-like chunked
//! path, where each process fetches the chunks its block overlaps
//! without inter-process coordination.

use pvr_formats::extent::{clip, total_bytes, union_bytes, Extent};

/// Plan the physical reads for one process's extent list (sorted,
/// disjoint) under data sieving with the given buffer size.
///
/// Unlike the collective two-phase engine, sieving reads only from the
/// first to the last needed byte within each window — but the holes
/// between needed extents inside a window are still read.
pub fn sieve_plan(extents: &[Extent], buffer_size: u64) -> Vec<Extent> {
    let buf = buffer_size.max(1);
    let mut out = Vec::new();
    if extents.is_empty() {
        return out;
    }
    let st = extents[0].offset;
    let end = extents.last().unwrap().end();
    let mut pos = st;
    while pos < end {
        let size = buf.min(end - pos);
        let window = Extent::new(pos, size);
        let needed = clip(extents, window);
        if let (Some(first), Some(last)) = (needed.first(), needed.last()) {
            out.push(Extent::new(first.offset, last.end() - first.offset));
        }
        pos += size;
    }
    out
}

/// Summary of an independent sieved read.
#[derive(Debug, Clone)]
pub struct SievePlan {
    pub accesses: Vec<Extent>,
    pub useful_bytes: u64,
    pub physical_bytes: u64,
}

impl SievePlan {
    pub fn data_density(&self) -> f64 {
        if self.physical_bytes == 0 {
            1.0
        } else {
            self.useful_bytes as f64 / self.physical_bytes as f64
        }
    }
}

/// Plan the reads for a set of independent processes, each with its own
/// extent list. Physical bytes are summed across processes (re-reads of
/// shared chunks by neighbouring processes are counted, as they are in
/// the paper's logs).
pub fn independent_plan(per_process: &[Vec<Extent>], buffer_size: u64) -> SievePlan {
    let mut accesses = Vec::new();
    let mut useful = 0u64;
    for exts in per_process {
        useful += total_bytes(exts);
        accesses.extend(sieve_plan(exts, buffer_size));
    }
    let physical = accesses.iter().map(|e| e.len).sum();
    SievePlan {
        accesses,
        useful_bytes: useful,
        physical_bytes: physical,
    }
}

/// Unique bytes touched by a sieve plan (for access-map rendering).
pub fn unique_bytes(plan: &SievePlan) -> u64 {
    union_bytes(&plan.accesses)
}

/// One access per (already coalesced) extent, no sieving — the HDF5
/// chunked-read behaviour: the library fetches each chunk run
/// individually and never reads the gaps between chunk rows.
/// `useful_bytes` is set to the physical total; callers that know the
/// logically requested bytes compute density themselves.
pub fn per_extent_plan(per_process: &[Vec<Extent>]) -> SievePlan {
    let mut accesses = Vec::new();
    for exts in per_process {
        accesses.extend(exts.iter().copied());
    }
    let physical: u64 = accesses.iter().map(|e| e.len).sum();
    SievePlan {
        accesses,
        useful_bytes: physical,
        physical_bytes: physical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(o: u64, l: u64) -> Extent {
        Extent::new(o, l)
    }

    #[test]
    fn contiguous_extent_single_access_per_window() {
        let plan = sieve_plan(&[ext(100, 10_000)], 4096);
        assert_eq!(plan.len(), 3);
        let phys: u64 = plan.iter().map(|e| e.len).sum();
        assert_eq!(phys, 10_000);
    }

    #[test]
    fn holes_inside_window_are_read() {
        // Two 100-byte extents 800 bytes apart, window big enough for both.
        let plan = sieve_plan(&[ext(0, 100), ext(900, 100)], 4096);
        assert_eq!(plan, vec![ext(0, 1000)]);
    }

    #[test]
    fn holes_across_windows_are_skipped() {
        // Same extents, tiny window: two separate reads, no hole read.
        let plan = sieve_plan(&[ext(0, 100), ext(900, 100)], 128);
        let phys: u64 = plan.iter().map(|e| e.len).sum();
        assert_eq!(phys, 200);
    }

    #[test]
    fn independent_plan_counts_shared_rereads() {
        // Two processes both read the same chunk: physical counts it twice.
        let p = independent_plan(&[vec![ext(0, 1000)], vec![ext(0, 1000)]], 4096);
        assert_eq!(p.useful_bytes, 2000);
        assert_eq!(p.physical_bytes, 2000);
        assert_eq!(unique_bytes(&p), 1000);
    }

    #[test]
    fn density_at_most_one_for_disjoint_requests() {
        let p = independent_plan(&[vec![ext(0, 500), ext(2000, 500)]], 8192);
        assert!(p.data_density() < 1.0); // hole between them was read
        let p2 = independent_plan(&[vec![ext(0, 500), ext(2000, 500)]], 256);
        assert!((p2.data_density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_request() {
        let p = independent_plan(&[vec![]], 4096);
        assert_eq!(p.physical_bytes, 0);
        assert!((p.data_density() - 1.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn sieve_covers_request(
            starts in proptest::collection::vec((0u64..100_000, 1u64..2_000), 1..32),
            buf in 1u64..20_000,
        ) {
            let mut exts: Vec<Extent> = starts.into_iter().map(|(o, l)| Extent::new(o, l)).collect();
            pvr_formats::extent::coalesce(&mut exts);
            let plan = sieve_plan(&exts, buf);
            for e in &exts {
                let covered: u64 = plan.iter().filter_map(|a| a.intersect(e)).map(|x| x.len).sum();
                prop_assert!(covered >= e.len, "extent {:?} not covered", e);
            }
            // Accesses never start before the request or end after it.
            prop_assert!(plan[0].offset >= exts[0].offset);
            prop_assert!(plan.last().unwrap().end() <= exts.last().unwrap().end());
        }
    }
}
